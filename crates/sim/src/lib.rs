//! Execution substrate for self-stabilizing wireless protocols.
//!
//! The paper describes its algorithms as **guarded assignments** over
//! **shared variables** (Section 4): each node infinitely re-evaluates
//! guards `G → S`; shared variables are propagated to neighbors by
//! periodic local broadcast with randomized timing (the discipline of
//! Herman & Tixeuil \[11\]); neighbors keep *cached copies* of each
//! other's shared variables.
//!
//! This crate turns that model into a layered, scenario-driven
//! simulator:
//!
//! * [`Scenario`] — the fluent builder every experiment goes through:
//!   protocol, medium, topology, seed, scripted [`FaultPlan`]s and
//!   mobility dynamics, with typed [`SimError`]s instead of panics.
//! * [`Network`] — the synchronous **round driver**. One round is the
//!   paper's Δ(τ) "step" (Section 5). Step counts measured here are
//!   directly comparable to the paper's Tables 2, 3 and 5.
//! * [`EventDriver`] — the **continuous-time driver**: randomized
//!   beacons, frames with duration, and either receiver-side
//!   collisions or medium-decided frame fates — the execution model of
//!   the paper's "expected constant time" claims.
//! * [`ActorDriver`] — the **actor driver**: every node a real
//!   message-passing process multiplexed over a worker-thread pool,
//!   exchanging serialized beacon frames ([`WireBeacon`]) under a
//!   virtual-time token governor — genuine concurrency validating that
//!   the simulated drivers' claims survive real interleaving.
//!
//! Both drivers run on one shared activity core (the private `engine`
//! module): columnar per-node state, dirty-set scheduling, beacon
//! epochs, per-(tick, node) derived randomness and a common worker
//! pool — so silent stabilized regions cost (near) zero work under
//! either clock, gated execution is byte-identical to eager execution,
//! and the round driver's per-step active pass can be sharded across
//! threads without changing a single byte of output.
//! * [`StopWhen`] / [`RunReport`] — first-class stop conditions
//!   (stability streaks, step budgets, predicates, combinators) and
//!   structured run outcomes, replacing per-call-site projection
//!   closures and magic numbers. Protocols expose their canonical
//!   projection through [`Observable`].
//! * [`Sweep`] — the parallel seed/parameter fan-out behind every
//!   1000-run experiment average, with deterministic, schedule-independent
//!   results.
//!
//! Self-stabilization is exercised through [`Corruptible`]: a protocol
//! that can have its state arbitrarily corrupted, after which the
//! drivers verify re-convergence (convergence) and that legitimate
//! configurations persist (closure).
//!
//! # Examples
//!
//! A tiny flooding protocol that stabilizes to the maximum node id:
//!
//! ```
//! use mwn_graph::{builders, NodeId};
//! use mwn_sim::{Observable, Protocol, Scenario, StopWhen};
//! use rand::rngs::StdRng;
//!
//! struct MaxFlood;
//! impl Protocol for MaxFlood {
//!     type State = u32;
//!     type Beacon = u32;
//!     fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 { node.value() }
//!     fn beacon(&self, _node: NodeId, state: &u32) -> u32 { *state }
//!     fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
//!         *state = (*state).max(*beacon);
//!     }
//!     fn update(&self, _node: NodeId, _state: &mut u32, _now: u64, _rng: &mut StdRng) {}
//! }
//! impl Observable for MaxFlood {
//!     type Output = u32;
//!     fn output(&self, _node: NodeId, state: &u32) -> u32 { *state }
//! }
//!
//! let mut net = Scenario::new(MaxFlood)
//!     .topology(builders::line(5))
//!     .seed(7)
//!     .build()
//!     .expect("valid scenario");
//! let report = net.run_to(&StopWhen::stable_for(1).within(50));
//! assert!(net.states().iter().all(|&s| s == 4));
//! assert_eq!(report.expect_stable("flood stabilizes"), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod convergence;
mod engine;
mod error;
mod events;
mod faults;
mod network;
mod observable;
mod protocol;
mod rng;
mod scenario;
mod stop;
mod sweep;
mod trace;
mod wire;

pub use actor::ActorDriver;
pub use convergence::StabilityTracker;
pub use engine::kernels;
pub use engine::run_pooled;
pub use error::SimError;
pub use events::{EventConfig, EventDriver};
pub use faults::{Fault, FaultPlan, Lie, Region};
pub use network::{Network, StepActivity};
pub use observable::Observable;
pub use protocol::{Activity, Corruptible, Protocol};
pub use rng::{derive_seed, derive_seed3, node_streams, split_rng};
pub use scenario::{Scenario, TopologyDynamics};
pub use stop::{RunReport, StopWhen};
pub use sweep::{Convergence, Sweep};
pub use trace::Trace;
pub use wire::{put_u32, put_u64, take_u32, take_u64, WireBeacon};
