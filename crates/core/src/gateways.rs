//! Border and gateway analysis of a clustering.
//!
//! Hierarchical routing (Section 1's motivation) forwards inter-cluster
//! traffic through **border nodes** — members with a radio link into a
//! neighboring cluster. The number of disjoint gateway links between
//! two clusters bounds how robust inter-cluster connectivity is to
//! node failures, and the fraction of border nodes measures how
//! "fringy" a clustering is; both are standard quality measures for
//! clustering schemes.

use std::collections::BTreeMap;

use mwn_graph::{NodeId, Topology};
use serde::{Deserialize, Serialize};

use crate::Clustering;

/// Border/gateway summary of one clustering.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GatewayReport {
    /// Per node: `true` when it has a link into another cluster.
    pub is_border: Vec<bool>,
    /// For each unordered head pair with at least one connecting link:
    /// the number of links between their clusters.
    pub links_between: BTreeMap<(NodeId, NodeId), usize>,
}

impl GatewayReport {
    /// Number of border nodes.
    pub fn border_count(&self) -> usize {
        self.is_border.iter().filter(|&&b| b).count()
    }

    /// Fraction of nodes that are border nodes (0 for empty networks).
    pub fn border_fraction(&self) -> f64 {
        if self.is_border.is_empty() {
            0.0
        } else {
            self.border_count() as f64 / self.is_border.len() as f64
        }
    }

    /// Number of adjacent cluster pairs.
    pub fn adjacent_cluster_pairs(&self) -> usize {
        self.links_between.len()
    }

    /// Mean number of gateway links per adjacent cluster pair (`None`
    /// when there are no adjacent pairs).
    pub fn mean_links_per_pair(&self) -> Option<f64> {
        if self.links_between.is_empty() {
            return None;
        }
        let total: usize = self.links_between.values().sum();
        Some(total as f64 / self.links_between.len() as f64)
    }
}

/// Computes the border/gateway structure of `clustering` over `topo`.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{gateway_report, oracle, OracleConfig};
/// use mwn_graph::builders;
///
/// let topo = builders::fig1_example();
/// let clustering = oracle(&topo, &OracleConfig::default());
/// let report = gateway_report(&topo, &clustering);
/// // The two clusters of the paper's example touch through g–i.
/// assert_eq!(report.adjacent_cluster_pairs(), 1);
/// assert!(report.border_count() >= 2);
/// ```
pub fn gateway_report(topo: &Topology, clustering: &Clustering) -> GatewayReport {
    let mut report = GatewayReport {
        is_border: vec![false; topo.len()],
        links_between: BTreeMap::new(),
    };
    for (u, v) in topo.edges() {
        let hu = clustering.head(u);
        let hv = clustering.head(v);
        if hu != hv {
            report.is_border[u.index()] = true;
            report.is_border[v.index()] = true;
            let key = if hu < hv { (hu, hv) } else { (hv, hu) };
            *report.links_between.entry(key).or_insert(0) += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{oracle, OracleConfig};
    use mwn_graph::builders;
    use rand::SeedableRng;

    #[test]
    fn single_cluster_has_no_borders() {
        let topo = builders::complete(6);
        let clustering = oracle(&topo, &OracleConfig::default());
        let report = gateway_report(&topo, &clustering);
        assert_eq!(report.border_count(), 0);
        assert_eq!(report.adjacent_cluster_pairs(), 0);
        assert_eq!(report.mean_links_per_pair(), None);
        assert_eq!(report.border_fraction(), 0.0);
    }

    #[test]
    fn paper_example_gateways() {
        let topo = builders::fig1_example();
        let clustering = oracle(&topo, &OracleConfig::default());
        let report = gateway_report(&topo, &clustering);
        // Clusters h (7) and j (5) touch via the single edge g–i.
        assert_eq!(report.adjacent_cluster_pairs(), 1);
        assert_eq!(
            report.links_between.get(&(NodeId::new(5), NodeId::new(7))),
            Some(&1)
        );
        // g and i are the border nodes.
        let g = NodeId::new(6);
        let i = NodeId::new(8);
        assert!(report.is_border[g.index()]);
        assert!(report.is_border[i.index()]);
        assert_eq!(report.border_count(), 2);
    }

    #[test]
    fn every_adjacent_pair_is_reported() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let topo = builders::uniform(200, 0.12, &mut rng);
        let clustering = oracle(&topo, &OracleConfig::default());
        let report = gateway_report(&topo, &clustering);
        // Cross-check against a direct edge scan.
        for (u, v) in topo.edges() {
            let hu = clustering.head(u);
            let hv = clustering.head(v);
            if hu != hv {
                let key = if hu < hv { (hu, hv) } else { (hv, hu) };
                assert!(report.links_between.contains_key(&key));
            }
        }
        // Link totals are consistent.
        let cross_edges = topo
            .edges()
            .filter(|&(u, v)| clustering.head(u) != clustering.head(v))
            .count();
        assert_eq!(report.links_between.values().sum::<usize>(), cross_edges);
        assert!(report.border_fraction() > 0.0 && report.border_fraction() < 1.0);
    }

    #[test]
    fn fusion_reduces_border_fraction() {
        // Bigger clusters mean proportionally fewer frontier nodes.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let topo = builders::uniform(300, 0.1, &mut rng);
        let basic = gateway_report(&topo, &oracle(&topo, &OracleConfig::default()));
        let fusion = gateway_report(
            &topo,
            &oracle(
                &topo,
                &OracleConfig {
                    rule: crate::HeadRule::Fusion,
                    ..OracleConfig::default()
                },
            ),
        );
        assert!(
            fusion.border_fraction() <= basic.border_fraction() + 0.05,
            "fusion {:.2} vs basic {:.2}",
            fusion.border_fraction(),
            basic.border_fraction()
        );
    }
}
