//! **selfstab** — self-stabilizing density-driven clustering for
//! multihop wireless networks.
//!
//! A complete, tested reproduction of
//!
//! > N. Mitton, E. Fleury, I. Guérin Lassous, S. Tixeuil.
//! > *Self-stabilization in self-organized multihop wireless networks.*
//! > ICDCS 2005 / INRIA RR-5426.
//!
//! This facade re-exports the workspace crates under stable module
//! names:
//!
//! * [`graph`] — topologies, deployments, neighborhoods;
//! * [`radio`] — wireless media (perfect / Bernoulli-τ / slotted CSMA);
//! * [`sim`] — the `Scenario` builder, guarded-command drivers
//!   (synchronous steps, events, message-passing actors), `StopWhen`
//!   stop conditions and the parallel `Sweep` runner;
//! * [`mobility`] — random-waypoint / random-direction movement;
//! * [`cluster`] — the paper's protocol, DAG renaming, oracle, metrics;
//! * [`baselines`] — lowest-id, highest-degree, max-min d-cluster;
//! * [`metrics`] — statistics and experiment tables;
//! * [`traffic`] — the data plane: flow workloads forwarded over the
//!   stabilized overlay, with loss accounting under churn;
//! * [`chaos`] — randomized adversary campaigns and the stabilization
//!   certifier (closure, convergence, gated-liveness audit);
//! * [`viz`] — SVG / ASCII rendering of clusterings.
//!
//! # Quickstart
//!
//! ```
//! use selfstab::prelude::*;
//! use rand::SeedableRng;
//!
//! // Deploy a 1000-intensity Poisson field with 100 m radio range
//! // (the paper's Section 5 setting) …
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let topo = builders::poisson(1000.0, 0.1, &mut rng);
//!
//! // … describe the run as a scenario over a perfect medium …
//! let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
//!     .topology(topo)
//!     .seed(1)
//!     .build()
//!     .expect("valid scenario");
//!
//! // … run until the election output is stable …
//! let report = net.run_to(&StopWhen::stable_for(3).within(500));
//! assert!(report.is_stable(), "the protocol stabilizes (Lemma 2)");
//!
//! // … and read off the clusters.
//! let clustering = extract_clustering(net.states()).expect("stable");
//! assert!(clustering.head_count() > 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mwn_baselines as baselines;
pub use mwn_chaos as chaos;
pub use mwn_cluster as cluster;
pub use mwn_graph as graph;
pub use mwn_metrics as metrics;
pub use mwn_mobility as mobility;
pub use mwn_radio as radio;
pub use mwn_sim as sim;
pub use mwn_traffic as traffic;
pub use mwn_viz as viz;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use mwn_chaos::{
        certify, liveness_audit, CampaignSpec, Certificate, CertifyConfig, ChaosHarness, FaultKind,
    };
    pub use mwn_cluster::{
        build_hierarchy, check_legitimate, density_of, energy_aware_clustering, extract_clustering,
        extract_dag_ids, oracle, simulate_rotation, ClusterConfig, ClusterState, ClusterView,
        Clustering, ClusteringStats, DagConfig, DagProtocol, DagVariant, Density, DensityCluster,
        EnergyModel, FlatRoutes, FreshnessPolicy, HeadRule, HierarchicalRoutes, Hierarchy,
        MetricKind, NameSpace, OracleConfig, OrderKind, RoutingView,
    };
    pub use mwn_graph::{builders, NodeId, Point2, Topology};
    pub use mwn_metrics::{wilson_overlap, RunningStats, Table};
    pub use mwn_mobility::{
        meters_per_second, MobileScenario, MobilityDynamics, RandomDirection, RandomWaypoint,
    };
    pub use mwn_radio::{
        measure_tau, BernoulliLoss, CaptureCsma, ContentionStreams, DistanceFading, FullOccupancy,
        Medium, Occupancy, OccupancyView, PerfectMedium, SlottedCsma, Thinned,
    };
    pub use mwn_sim::{
        ActorDriver, Corruptible, EventConfig, EventDriver, Fault, FaultPlan, Lie, Network,
        Observable, Protocol, Region, RunReport, Scenario, SimError, StopWhen, Sweep,
        TopologyDynamics, Trace, WireBeacon,
    };
    pub use mwn_traffic::{
        run_events, run_rounds, DemandModel, FlowSpec, TrafficConfig, TrafficPlane, TrafficReport,
    };
    pub use mwn_viz::{ascii_grid_clustering, svg_clustering, write_svg_clustering};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let topo = builders::line(3);
        let c = oracle(&topo, &OracleConfig::default());
        assert!(c.head_count() >= 1);
    }
}
