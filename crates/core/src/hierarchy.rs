//! Hierarchical clustering — the first extension named in the paper's
//! conclusion ("we also plan to study hierarchical self-stabilization
//! algorithms").
//!
//! The construction is the natural recursive one: cluster the network
//! with the density heuristic, build the **overlay graph** whose nodes
//! are the cluster-heads (two heads linked when their clusters touch —
//! some member of one has a radio link to some member of the other),
//! and cluster that overlay with the same heuristic, recursively. Each
//! level's election is the same self-stabilizing machinery, so the
//! stack inherits the stabilization argument level by level (each
//! level's input stabilizes once the level below has).

use mwn_graph::{NodeId, Topology};
use serde::{Deserialize, Serialize};

use crate::{oracle, Clustering, OracleConfig};

/// One level of the hierarchy: which underlay nodes participate, the
/// (overlay) topology they form, and the clustering elected on it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HierarchyLevel {
    /// The participating nodes, in overlay-id order: `members[i]` is
    /// the underlay [`NodeId`] of this level's node `i`.
    pub members: Vec<NodeId>,
    /// The topology this level's election ran on (level 0: the
    /// physical network; level k > 0: the head overlay of level k−1).
    pub topology: Topology,
    /// The clustering elected on [`HierarchyLevel::topology`].
    pub clustering: Clustering,
}

impl HierarchyLevel {
    /// The underlay ids of this level's cluster-heads.
    pub fn head_members(&self) -> Vec<NodeId> {
        self.clustering
            .heads()
            .into_iter()
            .map(|h| self.members[h.index()])
            .collect()
    }
}

/// A multi-level cluster hierarchy over one underlay topology.
///
/// Level 0 clusters the physical network; level `k + 1` clusters the
/// overlay of level-`k` cluster-heads. Construction stops when a level
/// has one head per connected component (no further merging possible)
/// or the level cap is reached.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{build_hierarchy, OracleConfig};
/// use mwn_graph::builders;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let topo = builders::uniform(300, 0.08, &mut rng);
/// let h = build_hierarchy(&topo, &OracleConfig::default(), 5);
/// assert!(h.depth() >= 1);
/// // Heads thin out as we go up.
/// for w in h.levels().windows(2) {
///     assert!(w[1].members.len() <= w[0].clustering.head_count());
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hierarchy {
    levels: Vec<HierarchyLevel>,
}

impl Hierarchy {
    /// The levels, bottom (physical) first.
    pub fn levels(&self) -> &[HierarchyLevel] {
        &self.levels
    }

    /// Number of levels built.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The top level's cluster-heads, as underlay node ids — the roots
    /// of the whole hierarchy.
    pub fn top_heads(&self) -> Vec<NodeId> {
        self.levels
            .last()
            .map(HierarchyLevel::head_members)
            .unwrap_or_default()
    }

    /// The level-`k` cluster-head responsible for underlay node `p`
    /// (`k = 0` is the physical clustering). `None` if `k` is out of
    /// range.
    ///
    /// Walks up: `p`'s level-0 head, that head's level-1 head, and so
    /// on — the address a hierarchical routing scheme would use.
    pub fn head_of(&self, p: NodeId, k: usize) -> Option<NodeId> {
        let mut current = p;
        for level in self.levels.get(..=k)? {
            let overlay_id = level.members.binary_search(&current).ok()?;
            let overlay_head = level.clustering.head(NodeId::new(overlay_id as u32));
            current = level.members[overlay_head.index()];
        }
        Some(current)
    }
}

/// Builds the overlay topology of a clustering: one node per head, an
/// edge between two heads when any member of one cluster has an
/// underlay link into the other cluster.
///
/// Returns the heads (sorted — the overlay id mapping) and the overlay.
pub fn head_overlay(topo: &Topology, clustering: &Clustering) -> (Vec<NodeId>, Topology) {
    let heads = clustering.heads();
    let overlay_id = |head: NodeId| -> u32 {
        heads
            .binary_search(&head)
            .expect("head claims resolve to heads in a stable clustering") as u32
    };
    let mut overlay = Topology::empty(heads.len());
    for (u, v) in topo.edges() {
        let hu = clustering.head(u);
        let hv = clustering.head(v);
        if hu != hv {
            overlay
                .add_edge(NodeId::new(overlay_id(hu)), NodeId::new(overlay_id(hv)))
                .expect("overlay ids are in range and distinct");
        }
    }
    // Carry positions so overlays remain renderable.
    if let Some(positions) = topo.positions() {
        let pts = heads.iter().map(|h| positions[h.index()]).collect();
        overlay = overlay.with_positions(pts);
    }
    (heads, overlay)
}

/// Builds a hierarchy of at most `max_levels` levels over `topo` using
/// `config` at every level (tie-break ids at level `k > 0` are the
/// overlay indices; `config.tiebreak`/`prev_heads` apply to level 0
/// only).
///
/// # Panics
///
/// Panics if `max_levels == 0`.
pub fn build_hierarchy(topo: &Topology, config: &OracleConfig, max_levels: usize) -> Hierarchy {
    assert!(max_levels > 0, "a hierarchy needs at least one level");
    let mut levels = Vec::new();
    let mut members: Vec<NodeId> = topo.nodes().collect();
    let mut current = topo.clone();
    let mut cfg = config.clone();
    for _ in 0..max_levels {
        let clustering = oracle(&current, &cfg);
        // Upper levels elect on the overlay's own structure.
        cfg = OracleConfig {
            metric: config.metric,
            order: config.order,
            rule: config.rule,
            tiebreak: None,
            prev_heads: None,
        };
        let done = clustering.head_count() == current.len()
            || clustering.head_count() <= 1
            || all_heads_isolated(&current, &clustering);
        let (heads, overlay) = head_overlay(&current, &clustering);
        levels.push(HierarchyLevel {
            members: members.clone(),
            topology: current.clone(),
            clustering,
        });
        if done {
            break;
        }
        members = heads.iter().map(|&h| members[h.index()]).collect();
        current = overlay;
    }
    Hierarchy { levels }
}

/// `true` when no further merging is possible: every head's overlay
/// node would be isolated.
fn all_heads_isolated(topo: &Topology, clustering: &Clustering) -> bool {
    let (_, overlay) = head_overlay(topo, clustering);
    overlay.edge_count() == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use rand::SeedableRng;

    fn field(seed: u64) -> Topology {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        builders::uniform(400, 0.07, &mut rng)
    }

    #[test]
    fn overlay_links_touching_clusters() {
        // Line of 6: two clusters (0..=2 head 0... depends on densities)
        // — use a hand case instead: two triangles joined by one edge.
        let topo =
            Topology::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let clustering = oracle(&topo, &OracleConfig::default());
        let (heads, overlay) = head_overlay(&topo, &clustering);
        assert_eq!(heads.len(), clustering.head_count());
        if heads.len() == 2 {
            assert_eq!(
                overlay.edge_count(),
                1,
                "the bridging edge links the clusters"
            );
        }
    }

    #[test]
    fn hierarchy_shrinks_per_level() {
        let topo = field(1);
        let h = build_hierarchy(&topo, &OracleConfig::default(), 8);
        assert!(h.depth() >= 2, "a 400-node sparse field has ≥ 2 levels");
        for w in h.levels().windows(2) {
            assert_eq!(
                w[1].members.len(),
                w[0].clustering.head_count(),
                "level k+1 participants are level k heads"
            );
            assert!(w[1].members.len() < w[0].members.len());
        }
    }

    #[test]
    fn top_level_is_fully_merged_per_component() {
        let topo = field(2);
        let h = build_hierarchy(&topo, &OracleConfig::default(), 16);
        let top = h.levels().last().unwrap();
        // At the top, no two heads are still linked in the overlay
        // (otherwise another level would merge them).
        let (_, overlay) = head_overlay(&top.topology, &top.clustering);
        assert_eq!(overlay.edge_count(), 0);
    }

    #[test]
    fn head_of_walks_up_consistently() {
        let topo = field(3);
        let h = build_hierarchy(&topo, &OracleConfig::default(), 8);
        for p in topo.nodes() {
            let h0 = h.head_of(p, 0).expect("level 0 exists");
            // The level-0 head must be this node's clustering head.
            assert_eq!(h0, h.levels()[0].clustering.head(p));
            if h.depth() > 1 {
                let h1 = h.head_of(p, 1).expect("level 1 exists");
                // h1 must be one of level 1's participants' heads.
                assert!(h.levels()[1].members.contains(&h1) || h1 == h0);
                // And walking from h0 gives the same answer.
                assert_eq!(h.head_of(h0, 1), Some(h1));
            }
        }
        assert_eq!(h.head_of(NodeId::new(0), 99), None);
    }

    #[test]
    fn top_heads_are_underlay_nodes() {
        let topo = field(4);
        let h = build_hierarchy(&topo, &OracleConfig::default(), 8);
        for head in h.top_heads() {
            assert!(head.index() < topo.len());
        }
        assert!(!h.top_heads().is_empty());
    }

    #[test]
    fn single_node_hierarchy() {
        let topo = Topology::empty(1);
        let h = build_hierarchy(&topo, &OracleConfig::default(), 4);
        assert_eq!(h.depth(), 1);
        assert_eq!(h.top_heads(), vec![NodeId::new(0)]);
    }

    #[test]
    fn complete_graph_is_one_level() {
        let topo = builders::complete(8);
        let h = build_hierarchy(&topo, &OracleConfig::default(), 4);
        assert_eq!(h.depth(), 1, "one cluster already — nothing to merge");
        assert_eq!(h.top_heads().len(), 1);
    }

    #[test]
    fn disconnected_components_keep_separate_roots() {
        let mut topo = builders::line(8);
        topo.remove_edge(NodeId::new(3), NodeId::new(4));
        let h = build_hierarchy(&topo, &OracleConfig::default(), 8);
        let roots = h.top_heads();
        assert!(roots.iter().any(|r| r.value() < 4));
        assert!(roots.iter().any(|r| r.value() >= 4));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_rejected() {
        let _ = build_hierarchy(&builders::line(3), &OracleConfig::default(), 0);
    }
}
