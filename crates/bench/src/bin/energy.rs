//! The energy extension: battery-aware head rotation vs the static
//! election.

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let result = mwn_bench::energy_exp::run(scale);
    println!("{}", mwn_bench::energy_exp::render(&result));
}
