//! Property-based tests for the extension modules: hierarchy, energy
//! rotation, routing and gateway analysis keep their invariants on any
//! topology.

use mwn_cluster::{
    build_hierarchy, energy_aware_clustering, gateway_report, mean_stretch, oracle, ClusterRouter,
    EnergyModel, OracleConfig,
};
use mwn_graph::{builders, traversal, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    (2usize..70, 8u32..30, 0u64..u64::MAX).prop_map(|(n, r, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        builders::uniform(n, f64::from(r) / 100.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hierarchies strictly shrink per level, keep one root per
    /// connected component at the top, and address every node.
    #[test]
    fn hierarchy_invariants(topo in topo_strategy()) {
        let h = build_hierarchy(&topo, &OracleConfig::default(), 16);
        prop_assert!(h.depth() >= 1);
        for w in h.levels().windows(2) {
            prop_assert!(w[1].members.len() < w[0].members.len());
            prop_assert_eq!(w[1].members.len(), w[0].clustering.head_count());
        }
        let components = traversal::connected_components(&topo);
        prop_assert_eq!(h.top_heads().len(), components.len());
        for p in topo.nodes() {
            let root = h.head_of(p, h.depth() - 1).expect("addressable");
            // The root lives in p's component.
            let d = traversal::bfs_distances(&topo, p);
            prop_assert!(d[root.index()].is_some(), "{} routed out of component", p);
        }
    }

    /// Energy-aware elections remain valid clusterings for arbitrary
    /// battery vectors, and nodes in the lowest band never beat a
    /// full-battery neighbor.
    #[test]
    fn energy_election_invariants(
        topo in topo_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        use rand::Rng;
        let model = EnergyModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let batteries: Vec<f64> = topo
            .nodes()
            .map(|_| rng.random_range(0.0..=model.initial))
            .collect();
        let c = energy_aware_clustering(&topo, &batteries, &model, &OracleConfig::default());
        for h in c.heads() {
            for &q in topo.neighbors(h) {
                prop_assert!(!c.is_head(q), "adjacent heads");
            }
        }
        for p in topo.nodes() {
            prop_assert!(c.is_head(c.head(p)));
            prop_assert!(c.depth_in_hops(&topo, p).is_some());
        }
        // A bottom-band head implies no higher-band neighbor exists.
        for h in c.heads() {
            if model.band_of(batteries[h.index()]) == 0 {
                for &q in topo.neighbors(h) {
                    prop_assert!(
                        model.band_of(batteries[q.index()]) == 0,
                        "empty head {} beat charged neighbor {}", h, q
                    );
                }
            }
        }
    }

    /// Every routable pair gets a real walk with stretch ≥ 1; pairs in
    /// different components are never routed.
    #[test]
    fn routing_invariants(topo in topo_strategy(), seed in 0u64..u64::MAX) {
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..30 {
            let src = NodeId::new(rng.random_range(0..topo.len() as u32));
            let dst = NodeId::new(rng.random_range(0..topo.len() as u32));
            let direct = traversal::bfs_distances(&topo, src)[dst.index()];
            match (router.route(src, dst), direct) {
                (Some(route), Some(d)) => {
                    prop_assert!(router.is_valid_route(&route));
                    prop_assert_eq!(route.first(), Some(&src));
                    prop_assert_eq!(route.last(), Some(&dst));
                    prop_assert!(route.len() as u32 > d, "shorter than shortest");
                }
                (None, None) => {}
                (Some(_), None) => prop_assert!(false, "routed across components"),
                (None, Some(_)) => {
                    prop_assert!(src != dst, "missed a reachable pair");
                    prop_assert!(false, "missed a reachable pair {src}→{dst}");
                }
            }
        }
        // Aggregate stretch, when defined, is finite and ≥ 1.
        if let Some(s) = mean_stretch(&topo, &clustering, 50, &mut rng) {
            prop_assert!(s >= 1.0 && s.is_finite());
        }
    }

    /// Gateway bookkeeping is exact: border flags and per-pair link
    /// counts match a direct edge scan.
    #[test]
    fn gateway_report_is_exact(topo in topo_strategy()) {
        let clustering = oracle(&topo, &OracleConfig::default());
        let report = gateway_report(&topo, &clustering);
        let mut expected_borders = vec![false; topo.len()];
        let mut cross = 0usize;
        for (u, v) in topo.edges() {
            if clustering.head(u) != clustering.head(v) {
                expected_borders[u.index()] = true;
                expected_borders[v.index()] = true;
                cross += 1;
            }
        }
        prop_assert_eq!(&report.is_border, &expected_borders);
        prop_assert_eq!(report.links_between.values().sum::<usize>(), cross);
        for (&(a, b), &count) in &report.links_between {
            prop_assert!(a < b);
            prop_assert!(clustering.is_head(a) && clustering.is_head(b));
            prop_assert!(count >= 1);
        }
    }
}
