use mwn_graph::NodeId;
use rand::rngs::StdRng;

/// How the round driver may schedule a protocol.
///
/// The paper's algorithms are *silent*: once the legitimate
/// configuration is reached, no shared variable changes any more. A
/// protocol that additionally satisfies the **silence contract** below
/// can declare [`Activity::Gated`], letting [`crate::Network`] skip
/// quiescent nodes entirely (dirty-set scheduling) while staying
/// byte-identical to running every guard every step.
///
/// The silence contract:
///
/// 1. [`Protocol::receive`] of a beacon whose content equals what the
///    receiver already incorporated from that sender is a state no-op;
/// 2. [`Protocol::update`] on a state it has already fixed (and with no
///    new receptions since) is a state no-op, *regardless of `now`* —
///    in particular no wall-clock cache expiry while the network is
///    silent;
/// 3. randomness is only consumed on state-changing transitions (the
///    driver's per-(step, node) derived streams make stray draws
///    harmless, but drawing must not be the only side effect).
///
/// **The contract spans both clocks.** Under the synchronous round
/// driver a gated node is skipped for a *step*; under the continuous
/// [`crate::EventDriver`] a gated node stops scheduling beacon events
/// altogether until something wakes it — so clause 2's
/// "regardless of `now`" matters doubly there: between a node's last
/// event and its wakeup, arbitrarily much simulated time passes without
/// a single `update` call. Protocols with wall-clock cache expiry
/// (TTL sweeps) must stay [`Activity::Eager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Activity {
    /// Run every node every step (the conservative default, always
    /// correct).
    #[default]
    Eager,
    /// The protocol satisfies the silence contract: the driver may use
    /// dirty-set scheduling and communication gating.
    Gated,
}

/// A distributed protocol in the paper's guarded-command,
/// shared-variable model (Section 4).
///
/// A protocol is the *program text* shared by every node; all per-node
/// data lives in [`Protocol::State`]. The division of labour mirrors
/// the paper's execution semantics:
///
/// * [`Protocol::beacon`] — the snapshot of the node's **shared
///   variables** that the timed discipline of Herman & Tixeuil
///   periodically broadcasts to 1-neighbors;
/// * [`Protocol::receive`] — the atomic event-guard executed "upon the
///   event of receiving a message": updating the **cached copies**
///   (`⌣Id_q`, `⌣d_q`, …) of the sender's shared variables;
/// * [`Protocol::update`] — one pass executing every enabled guarded
///   assignment (e.g. the paper's `N1`, `R1`, `R2`), in program order.
///
/// Protocol implementations must be deterministic given the RNG stream
/// they are handed, so whole-network runs are reproducible from a seed.
///
/// The `Sync` supertrait and the `Send + Sync` bounds on the associated
/// types exist for the sharded active-set pass: the round driver may
/// split one step's active nodes across worker threads (an
/// owner-computes partition with an ordered merge — byte-identical to
/// the serial pass), and the workers share the protocol and read the
/// frozen beacon columns. Protocols are plain data in practice, so the
/// bounds are auto-satisfied.
pub trait Protocol: Sync {
    /// Per-node state: shared variables plus neighbor caches.
    ///
    /// `PartialEq` is what lets the activity-driven driver detect "this
    /// node's execution was a no-op" and retire it from the dirty set.
    type State: Clone + std::fmt::Debug + PartialEq + Send + Sync;
    /// Snapshot of the shared variables carried by one frame.
    type Beacon: Clone + std::fmt::Debug + Send + Sync;

    /// Cold-start state for `node`. Self-stabilization must not depend
    /// on this being the actual initial state — see [`Corruptible`].
    fn init(&self, node: NodeId, rng: &mut StdRng) -> Self::State;

    /// The shared-variable snapshot `node` broadcasts.
    fn beacon(&self, node: NodeId, state: &Self::State) -> Self::Beacon;

    /// Recomputes `node`'s beacon **into** a pooled buffer.
    ///
    /// The engine refreshes beacons through this hook with a scratch
    /// beacon it keeps alive across refreshes, so protocols whose
    /// beacons own heap buffers (neighbor views, digests) can overwrite
    /// them in place and keep the converging-phase hot path
    /// allocation-free. The default just delegates to [`beacon`]
    /// (`Protocol::beacon`) and assigns — correct for any protocol,
    /// without the pooling benefit.
    fn beacon_into(&self, node: NodeId, state: &Self::State, out: &mut Self::Beacon) {
        *out = self.beacon(node, state);
    }

    /// Handles reception of `beacon` from 1-neighbor `from` at time
    /// `now` (round number or event-driver tick): refresh caches.
    fn receive(
        &self,
        node: NodeId,
        state: &mut Self::State,
        from: NodeId,
        beacon: &Self::Beacon,
        now: u64,
    );

    /// Executes every enabled guarded assignment of `node` once.
    fn update(&self, node: NodeId, state: &mut Self::State, now: u64, rng: &mut StdRng);

    /// Declares the scheduling contract this protocol supports; see
    /// [`Activity`]. Conservative default: [`Activity::Eager`] — every
    /// node runs every step, exactly the classic semantics.
    fn activity(&self) -> Activity {
        Activity::Eager
    }

    /// Whether a freshly computed beacon differs from the previous one.
    ///
    /// The activity-driven driver re-broadcasts a node's shared
    /// variables only when they changed; this hook is the change
    /// detector. The conservative default reports every beacon as
    /// changed (the node keeps broadcasting while scheduled — correct
    /// for any protocol, just without communication savings).
    /// Protocols whose beacon type is `PartialEq` typically implement
    /// this as `old != new`.
    fn beacon_changed(&self, old: &Self::Beacon, new: &Self::Beacon) -> bool {
        let _ = (old, new);
        true
    }

    /// Link-layer notification: the link between `node` and `peer`
    /// disappeared (mobility, isolation fault, or a scripted topology
    /// change that severed it). Default: no-op.
    ///
    /// Protocols that rely on beacon-timeout cache expiry to forget
    /// departed neighbors can evict here instead — the eviction path
    /// that stays available once gated scheduling silences the periodic
    /// beacons a TTL sweep would need.
    fn link_down(&self, node: NodeId, state: &mut Self::State, peer: NodeId) {
        let _ = (node, state, peer);
    }
}

/// A protocol whose state can be *arbitrarily* corrupted, for
/// self-stabilization testing.
///
/// Self-stabilization means: started from **any** state (not just
/// [`Protocol::init`]'s), the system reaches a legitimate configuration
/// and stays there. Implementations should generate genuinely hostile
/// states: ghost neighbors, stale density values, bogus cluster-head
/// claims, out-of-range DAG identifiers.
pub trait Corruptible: Protocol {
    /// Overwrites `state` with arbitrary (adversarial) content.
    fn corrupt(&self, node: NodeId, state: &mut Self::State, rng: &mut StdRng);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A protocol is usable as a trait object over its own types.
    #[test]
    fn protocol_trait_is_implementable() {
        struct Noop;
        impl Protocol for Noop {
            type State = ();
            type Beacon = ();
            fn init(&self, _: NodeId, _: &mut StdRng) {}
            fn beacon(&self, _: NodeId, _: &()) {}
            fn receive(&self, _: NodeId, _: &mut (), _: NodeId, _: &(), _: u64) {}
            fn update(&self, _: NodeId, _: &mut (), _: u64, _: &mut StdRng) {}
        }
        impl Corruptible for Noop {
            fn corrupt(&self, _: NodeId, _: &mut (), _: &mut StdRng) {}
        }
        // Nothing to assert beyond "it compiles and can be invoked".
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let p = Noop;
        #[allow(clippy::let_unit_value)]
        let mut s = p.init(NodeId::new(0), &mut rng);
        p.receive(NodeId::new(0), &mut s, NodeId::new(1), &(), 0);
        p.update(NodeId::new(0), &mut s, 0, &mut rng);
        p.corrupt(NodeId::new(0), &mut s, &mut rng);
    }
}
