use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::Corruptor;
use crate::rng::{derive_seed, node_streams, split_rng, streams};
use crate::{Corruptible, Fault, Protocol, StabilityTracker};

/// Parameters of the continuous-time execution model.
///
/// Nodes rebroadcast their shared variables at randomized intervals
/// (the timed discipline with "randomization to avoid collision" of
/// Herman & Tixeuil \[11\], which the paper adopts in Section 4). Frames
/// have a positive duration; two frames that overlap in time at a
/// receiver collide and are both lost there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventConfig {
    /// Mean time between two beacons of the same node.
    pub beacon_period: f64,
    /// Relative jitter: the next beacon fires after
    /// `beacon_period · U(1 − jitter, 1 + jitter)`.
    pub jitter: f64,
    /// Time a frame occupies the channel at a receiver.
    pub frame_time: f64,
    /// Additional independent per-copy loss probability (0 = none).
    pub extra_loss: f64,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            beacon_period: 1.0,
            jitter: 0.5,
            frame_time: 0.02,
            extra_loss: 0.0,
        }
    }
}

impl EventConfig {
    /// Checks every parameter's range.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint (non-positive
    /// period or frame time, jitter outside `[0, 1)`, loss outside
    /// `[0, 1)`).
    pub fn check(&self) -> Result<(), String> {
        if self.beacon_period <= 0.0 {
            return Err("beacon period must be positive".to_string());
        }
        if self.frame_time <= 0.0 {
            return Err("frame time must be positive".to_string());
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err("jitter must be in [0, 1)".to_string());
        }
        if !(0.0..1.0).contains(&self.extra_loss) {
            return Err("extra loss must be in [0, 1)".to_string());
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range; see
    /// [`EventConfig::check`] for the non-panicking form.
    pub fn validate(&self) {
        if let Err(why) = self.check() {
            panic!("{why}");
        }
    }
}

/// Totally ordered event-queue key: (time, sequence), min-first.
#[derive(Clone, Copy, Debug)]
struct EventKey {
    time: f64,
    seq: u64,
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum EventKind<B> {
    /// Node starts broadcasting its beacon.
    Tx(NodeId),
    /// A frame sent by `sender` at `tx_time` finishes arriving at
    /// `receiver`; decide collision and deliver.
    Rx {
        receiver: NodeId,
        sender: NodeId,
        tx_time: f64,
        beacon: B,
    },
}

struct Event<B> {
    key: EventKey,
    kind: EventKind<B>,
}

impl<B> PartialEq for Event<B> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<B> Eq for Event<B> {}
impl<B> PartialOrd for Event<B> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<B> Ord for Event<B> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// The continuous-time discrete-event driver.
///
/// This realizes the asynchronous execution model under which the
/// paper's expected-constant-time results (Theorem 1, Lemmas 1–2) are
/// stated: beacons at randomized intervals, frames with real duration,
/// receiver-side collisions (hidden terminals included) and half-duplex
/// radios. The per-frame success probability is some τ > 0 determined
/// by the configuration and local density — exactly the paper's
/// hypothesis — and can be read off [`EventDriver::measured_tau`].
///
/// # Examples
///
/// ```
/// use mwn_graph::builders;
/// use mwn_radio::PerfectMedium;
/// use mwn_sim::{EventConfig, EventDriver, Network, Protocol};
/// use mwn_graph::NodeId;
/// use rand::rngs::StdRng;
///
/// struct MaxFlood;
/// impl Protocol for MaxFlood {
///     type State = u32;
///     type Beacon = u32;
///     fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 { node.value() }
///     fn beacon(&self, _node: NodeId, state: &u32) -> u32 { *state }
///     fn receive(&self, _n: NodeId, state: &mut u32, _f: NodeId, beacon: &u32, _now: u64) {
///         *state = (*state).max(*beacon);
///     }
///     fn update(&self, _n: NodeId, _s: &mut u32, _now: u64, _rng: &mut StdRng) {}
/// }
///
/// let topo = builders::line(5);
/// let mut driver = EventDriver::new(MaxFlood, topo, EventConfig::default(), 3);
/// driver.run_until_time(30.0);
/// assert!(driver.states().iter().all(|&s| s == 4));
/// ```
pub struct EventDriver<P: Protocol> {
    protocol: P,
    topo: Topology,
    config: EventConfig,
    states: Vec<P::State>,
    node_rngs: Vec<StdRng>,
    loss_rng: StdRng,
    /// Dedicated stream for scripted-fault site selection, so fault
    /// injection never perturbs beacon timing or loss randomness.
    fault_rng: StdRng,
    /// Base of the per-corruption-event derived streams: corruptor
    /// draws must not advance the victim's beacon-jitter stream.
    corrupt_base: u64,
    corrupt_events: u64,
    queue: BinaryHeap<Event<P::Beacon>>,
    tx_history: Vec<Vec<f64>>,
    time: f64,
    seq: u64,
    frames_attempted: u64,
    frames_delivered: u64,
    /// Scripted faults in logical-step order: a fault scheduled at step
    /// `k` fires once the clock reaches `k` beacon periods, before any
    /// event at or past that time is processed.
    scripted: Vec<(u64, Fault)>,
    next_scripted: usize,
    corruptor: Option<Corruptor<P>>,
}

impl<P: Protocol> EventDriver<P> {
    /// Creates the driver with cold-start states; the first beacon of
    /// each node fires at a random offset within one period (nodes are
    /// *not* synchronized).
    pub fn new(protocol: P, topo: Topology, config: EventConfig, seed: u64) -> Self {
        config.validate();
        let mut node_rngs = node_streams(seed, topo.len());
        let states: Vec<P::State> = topo
            .nodes()
            .map(|p| protocol.init(p, &mut node_rngs[p.index()]))
            .collect();
        let mut driver = EventDriver {
            protocol,
            tx_history: vec![Vec::new(); topo.len()],
            topo,
            config,
            states,
            node_rngs,
            loss_rng: StdRng::seed_from_u64(derive_seed(seed, u64::MAX - 1)),
            fault_rng: StdRng::seed_from_u64(derive_seed(seed, streams::EVENT_FAULT)),
            corrupt_base: derive_seed(seed, streams::CORRUPT),
            corrupt_events: 0,
            queue: BinaryHeap::new(),
            time: 0.0,
            seq: 0,
            frames_attempted: 0,
            frames_delivered: 0,
            scripted: Vec::new(),
            next_scripted: 0,
            corruptor: None,
        };
        let nodes: Vec<NodeId> = driver.topo.nodes().collect();
        for p in nodes {
            let offset = driver.node_rngs[p.index()].random_range(0.0..config.beacon_period);
            driver.push(offset, EventKind::Tx(p));
        }
        driver
    }

    fn push(&mut self, time: f64, kind: EventKind<P::Beacon>) {
        let key = EventKey {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        self.queue.push(Event { key, kind });
    }

    /// The paper-comparable logical clock: beacon periods elapsed.
    fn logical_now(&self) -> u64 {
        (self.time / self.config.beacon_period) as u64
    }

    pub(crate) fn install_script(
        &mut self,
        scripted: Vec<(u64, Fault)>,
        corruptor: Option<Corruptor<P>>,
    ) {
        self.scripted = scripted;
        self.next_scripted = 0;
        self.corruptor = corruptor;
    }

    /// The wall-clock moment a fault scheduled at logical step `k`
    /// fires: after `k` beacon periods.
    fn fault_time(&self, step: u64) -> f64 {
        step as f64 * self.config.beacon_period
    }

    /// Fires every scripted fault due at or before time `upto`.
    fn fire_scripted(&mut self, upto: f64) {
        while self.next_scripted < self.scripted.len()
            && self.fault_time(self.scripted[self.next_scripted].0) <= upto
        {
            let fault = self.scripted[self.next_scripted].1.clone();
            self.next_scripted += 1;
            match &fault {
                Fault::CorruptNode(p) => self.corrupt_scripted(*p),
                Fault::CorruptAll => {
                    for i in 0..self.topo.len() {
                        self.corrupt_scripted(NodeId::new(i as u32));
                    }
                }
                Fault::CorruptFraction(f) => {
                    use rand::Rng;
                    let fraction = f.clamp(0.0, 1.0);
                    let picks: Vec<NodeId> = self
                        .topo
                        .nodes()
                        .filter(|_| self.fault_rng.random_bool(fraction))
                        .collect();
                    for p in picks {
                        self.corrupt_scripted(p);
                    }
                }
                Fault::Isolate(p) => {
                    let nbrs: Vec<NodeId> = self.topo.neighbors(*p).to_vec();
                    for q in nbrs {
                        self.topo.remove_edge(*p, q);
                    }
                }
                Fault::SetTopology(topo) => {
                    assert_eq!(
                        topo.len(),
                        self.topo.len(),
                        "scripted topology keeps the node count"
                    );
                    self.topo = topo.clone();
                }
            }
        }
    }

    fn corrupt_scripted(&mut self, p: NodeId) {
        // Each corruption event gets its own derived stream: however
        // much randomness the corruptor consumes, the victim's
        // sequential beacon-jitter stream is untouched.
        let event = self.corrupt_events;
        self.corrupt_events += 1;
        let mut rng = split_rng(self.corrupt_base, event, u64::from(p.value()));
        let corruptor = self
            .corruptor
            .as_ref()
            .expect("Scenario::faults installs the corruption hook");
        corruptor(&self.protocol, p, &mut self.states[p.index()], &mut rng);
    }

    /// Processes events up to (and including) time `t`; scripted faults
    /// due in the interval fire at their scheduled times, interleaved
    /// correctly with the event queue.
    pub fn run_until_time(&mut self, t: f64) {
        while let Some(ev) = self.queue.peek() {
            if ev.key.time > t {
                break;
            }
            let event_time = ev.key.time;
            self.fire_scripted(event_time.min(t));
            let Event { key, kind } = self.queue.pop().expect("peeked event exists");
            self.time = key.time;
            match kind {
                EventKind::Tx(p) => self.handle_tx(p),
                EventKind::Rx {
                    receiver,
                    sender,
                    tx_time,
                    beacon,
                } => self.handle_rx(receiver, sender, tx_time, &beacon),
            }
        }
        self.fire_scripted(t);
        self.time = t;
    }

    fn handle_tx(&mut self, p: NodeId) {
        let now = self.logical_now();
        // The guarded-command loop runs continuously; executing the
        // guards right before snapshotting the shared variables gives
        // the freshest beacon.
        self.protocol.update(
            p,
            &mut self.states[p.index()],
            now,
            &mut self.node_rngs[p.index()],
        );
        let beacon = self.protocol.beacon(p, &self.states[p.index()]);
        let t = self.time;
        // Record the transmission and prune history older than one
        // collision window.
        let history = &mut self.tx_history[p.index()];
        history.push(t);
        let horizon = t - 4.0 * self.config.frame_time;
        history.retain(|&x| x >= horizon);
        let receivers: Vec<NodeId> = self.topo.neighbors(p).to_vec();
        for r in receivers {
            self.frames_attempted += 1;
            self.push(
                t + self.config.frame_time,
                EventKind::Rx {
                    receiver: r,
                    sender: p,
                    tx_time: t,
                    beacon: beacon.clone(),
                },
            );
        }
        // Schedule the next beacon with jitter.
        let jitter = self.config.jitter;
        let factor = self.node_rngs[p.index()].random_range(1.0 - jitter..1.0 + jitter);
        let next = t + self.config.beacon_period * factor.max(f64::EPSILON);
        self.push(next, EventKind::Tx(p));
    }

    fn handle_rx(&mut self, r: NodeId, s: NodeId, tx_time: f64, beacon: &P::Beacon) {
        // The frame occupied (tx_time, tx_time + frame_time) at r. It is
        // lost if r itself, or any other neighbor of r, transmitted
        // within one frame_time of tx_time (overlapping frames), or to
        // the configured extra loss.
        let window = |times: &[f64]| {
            times
                .iter()
                .any(|&x| (x - tx_time).abs() < self.config.frame_time)
        };
        if window(&self.tx_history[r.index()]) {
            return; // half-duplex: r was talking
        }
        for &q in self.topo.neighbors(r) {
            if q != s && window(&self.tx_history[q.index()]) {
                return; // collision (possibly a hidden terminal)
            }
        }
        if self.config.extra_loss > 0.0 && self.loss_rng.random_bool(self.config.extra_loss) {
            return;
        }
        self.frames_delivered += 1;
        let now = self.logical_now();
        self.protocol
            .receive(r, &mut self.states[r.index()], s, beacon, now);
        self.protocol.update(
            r,
            &mut self.states[r.index()],
            now,
            &mut self.node_rngs[r.index()],
        );
    }

    /// Runs until a projection of all states is unchanged for
    /// `quiet_samples` consecutive samples taken every
    /// `sample_interval`, or until `max_time` has elapsed *from the
    /// current simulation time* (so the driver can be re-armed after a
    /// corruption to measure re-stabilization).
    ///
    /// Returns the elapsed time at which the projection last changed
    /// (the stabilization duration), or `None` on timeout.
    pub fn run_until_stable<K, F>(
        &mut self,
        mut project: F,
        sample_interval: f64,
        quiet_samples: u64,
        max_time: f64,
    ) -> Option<f64>
    where
        K: PartialEq,
        F: FnMut(NodeId, &P::State) -> K,
    {
        assert!(sample_interval > 0.0, "sample interval must be positive");
        let start = self.time;
        let deadline = start + max_time;
        let mut tracker = StabilityTracker::new(quiet_samples);
        let mut sample_idx: u64 = 0;
        loop {
            let target = start + (sample_idx as f64) * sample_interval;
            if target > deadline {
                return None;
            }
            self.run_until_time(target);
            let projection: Vec<K> = self
                .states
                .iter()
                .enumerate()
                .map(|(i, s)| project(NodeId::new(i as u32), s))
                .collect();
            if tracker.observe(sample_idx, projection) {
                return Some(tracker.last_change() as f64 * sample_interval);
            }
            sample_idx += 1;
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// All node states, indexed by [`NodeId`].
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The state of one node.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.states[p.index()]
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The fraction of in-range frame copies delivered so far — the
    /// empirical τ of this run (1.0 before any traffic).
    pub fn measured_tau(&self) -> f64 {
        if self.frames_attempted == 0 {
            1.0
        } else {
            self.frames_delivered as f64 / self.frames_attempted as f64
        }
    }
}

impl<P: crate::Observable> EventDriver<P> {
    /// Runs until the protocol's canonical [`crate::Observable`]
    /// output is unchanged for `quiet_samples` consecutive samples
    /// taken every `sample_interval`, or until `max_time` has elapsed
    /// from the current simulation time — the closure-free counterpart
    /// of [`EventDriver::run_until_stable`].
    ///
    /// Returns the elapsed time at which the output last changed, or
    /// `None` on timeout.
    pub fn run_until_output_stable(
        &mut self,
        sample_interval: f64,
        quiet_samples: u64,
        max_time: f64,
    ) -> Option<f64> {
        assert!(sample_interval > 0.0, "sample interval must be positive");
        let start = self.time;
        let deadline = start + max_time;
        let mut tracker = StabilityTracker::new(quiet_samples);
        let mut buf: Vec<P::Output> = Vec::with_capacity(self.states.len());
        let mut sample_idx: u64 = 0;
        loop {
            let target = start + (sample_idx as f64) * sample_interval;
            if target > deadline {
                return None;
            }
            self.run_until_time(target);
            buf.clear();
            buf.extend(
                self.states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| self.protocol.output(NodeId::new(i as u32), s)),
            );
            if tracker.observe_slice(sample_idx, &buf) {
                return Some(tracker.last_change() as f64 * sample_interval);
            }
            sample_idx += 1;
        }
    }
}

impl<P: Corruptible> EventDriver<P> {
    /// Corrupts every node state (arbitrary-configuration start).
    ///
    /// Draws from per-event derived streams, never from the victims'
    /// beacon-jitter streams: injecting a corruption does not shift any
    /// node's subsequent transmission times.
    pub fn corrupt_all(&mut self) {
        for p in self.topo.nodes().collect::<Vec<_>>() {
            let event = self.corrupt_events;
            self.corrupt_events += 1;
            let mut rng = split_rng(self.corrupt_base, event, u64::from(p.value()));
            self.protocol
                .corrupt(p, &mut self.states[p.index()], &mut rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;

    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            // Re-asserting the node's own id is what makes the flood
            // self-stabilizing: corrupted state cannot erase the source.
            *state = (*state).max(node.value());
        }
    }
    impl Corruptible for MaxFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }

    #[test]
    fn flood_converges_in_continuous_time() {
        let mut d = EventDriver::new(MaxFlood, builders::line(6), EventConfig::default(), 1);
        d.run_until_time(40.0);
        assert!(d.states().iter().all(|&s| s == 5));
        assert!(d.measured_tau() > 0.5);
    }

    #[test]
    fn stabilization_time_scales_with_distance() {
        // Information needs ~1 beacon period per hop: a longer line
        // takes proportionally longer.
        let cfg = EventConfig::default();
        let mut short = EventDriver::new(MaxFlood, builders::line(4), cfg, 2);
        let mut long = EventDriver::new(MaxFlood, builders::line(30), cfg, 2);
        let t_short = short
            .run_until_stable(|_, s| *s, 0.5, 10, 500.0)
            .expect("short line converges");
        let t_long = long
            .run_until_stable(|_, s| *s, 0.5, 10, 500.0)
            .expect("long line converges");
        assert!(
            t_long > t_short,
            "30-hop line ({t_long}) should take longer than 4-hop ({t_short})"
        );
    }

    #[test]
    fn collisions_occur_on_dense_graphs() {
        // Long frames → many overlaps. At 0.2 the per-frame clear
        // probability on K12 is ≈ 0.6¹¹ ≈ 0.004, making τ = 0 a likely
        // outcome of a 30 s run; 0.1 keeps τ bounded away from both 0
        // and 1 regardless of the RNG stream.
        let cfg = EventConfig {
            frame_time: 0.1,
            ..EventConfig::default()
        };
        let mut d = EventDriver::new(MaxFlood, builders::complete(12), cfg, 3);
        d.run_until_time(30.0);
        assert!(
            d.measured_tau() < 0.9,
            "long frames on K12 must collide, τ = {}",
            d.measured_tau()
        );
        assert!(d.measured_tau() > 0.0);
    }

    #[test]
    fn corruption_then_reconvergence() {
        let mut d = EventDriver::new(MaxFlood, builders::ring(8), EventConfig::default(), 4);
        d.run_until_time(20.0);
        d.corrupt_all();
        assert!(d.states().iter().all(|&s| s == 0));
        d.run_until_time(60.0);
        assert!(d.states().iter().all(|&s| s == 7));
    }

    #[test]
    fn extra_loss_slows_but_does_not_stop_convergence() {
        let cfg = EventConfig {
            extra_loss: 0.6,
            ..EventConfig::default()
        };
        let mut d = EventDriver::new(MaxFlood, builders::line(5), cfg, 5);
        d.run_until_time(200.0);
        assert!(d.states().iter().all(|&s| s == 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut d =
                EventDriver::new(MaxFlood, builders::ring(10), EventConfig::default(), seed);
            d.run_until_time(15.0);
            d.states().to_vec()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn scripted_faults_fire_at_logical_steps() {
        use crate::{FaultPlan, Scenario};
        // Corrupt everyone at logical step 20 (t = 20 beacon periods):
        // by then the line has converged, so the fault visibly knocks
        // the states down before the flood heals them again.
        let mut plan = FaultPlan::new();
        plan.at(20, Fault::CorruptAll);
        let mut driver = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(6)
            .faults(plan)
            .build_events(EventConfig::default())
            .expect("event scenario with faults builds");
        driver.run_until_time(19.5);
        assert!(
            driver.states().iter().all(|&s| s == 4),
            "converged before the fault"
        );
        driver.run_until_time(20.0);
        assert!(
            driver.states().iter().any(|&s| s < 4),
            "corruption at step 20 must be visible at t = 20"
        );
        driver.run_until_time(60.0);
        assert!(
            driver.states().iter().all(|&s| s == 4),
            "self-stabilization heals the scripted fault"
        );
    }

    #[test]
    fn scripted_isolation_cuts_the_event_driver_topology() {
        use crate::{FaultPlan, Scenario};
        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)));
        let mut driver = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(7)
            .faults(plan)
            .build_events(EventConfig::default())
            .expect("builds");
        driver.run_until_time(50.0);
        assert_eq!(
            *driver.state(NodeId::new(0)),
            1,
            "max id cannot cross the cut"
        );
    }

    #[test]
    fn scripted_fault_injection_preserves_beacon_timing() {
        use crate::{FaultPlan, Scenario};
        // A zero-effect fault script must not perturb the trajectory:
        // CorruptFraction draws from the dedicated fault stream.
        let run = |script: bool| {
            let mut scenario = Scenario::new(MaxFlood).topology(builders::ring(8)).seed(9);
            if script {
                let mut plan = FaultPlan::new();
                plan.at(5, Fault::CorruptFraction(0.0));
                scenario = scenario.faults(plan);
            }
            let mut driver = scenario
                .build_events(EventConfig::default())
                .expect("builds");
            driver.run_until_time(30.0);
            (driver.states().to_vec(), driver.measured_tau())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "beacon period must be positive")]
    fn invalid_config_rejected() {
        let cfg = EventConfig {
            beacon_period: 0.0,
            ..EventConfig::default()
        };
        let _ = EventDriver::new(MaxFlood, builders::line(2), cfg, 0);
    }
}
