//! Statistics and experiment-harness utilities for the `selfstab-mwn`
//! workspace.
//!
//! The paper's evaluation reports averages "over 1000 simulations"
//! (Section 5). This crate provides the pieces that turn raw simulation
//! outputs into the paper's tables: numerically stable running
//! statistics ([`RunningStats`]), histograms ([`Histogram`]),
//! paper-style ASCII tables ([`Table`]) and serializable result
//! records ([`Summary`]). The multi-seed parallel fan-out lives with
//! the simulator as `mwn_sim::Sweep`.
//!
//! # Examples
//!
//! ```
//! use mwn_metrics::RunningStats;
//!
//! let stats: RunningStats = (0..100).map(|s| (s % 7) as f64).collect();
//! assert_eq!(stats.count(), 100);
//! assert!(stats.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod percentile;
mod proportion;
mod running;
mod table;

pub use histogram::Histogram;
pub use percentile::{percentiles, LatencyHistogram};
pub use proportion::{wilson_interval, wilson_overlap, Proportion};
pub use running::{RunningStats, Summary};
pub use table::Table;
