use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a decorrelated 64-bit seed from a base seed and a stream
/// index (SplitMix64 finalizer). Identical inputs always yield the
/// identical seed, so simulations are reproducible however many RNG
/// streams they split off.
///
/// # Examples
///
/// ```
/// use mwn_sim::derive_seed;
///
/// assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
/// assert_ne!(derive_seed(42, 3), derive_seed(42, 4));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates `n` independent per-node RNG streams from one base seed.
///
/// Each node gets its own stream so that the randomness a node consumes
/// (e.g. the DAG renaming draws of algorithm N1) does not depend on how
/// many other nodes acted before it in the round — a requirement for
/// meaningful fault-injection experiments, where re-running with the
/// same seed must replay identical node-local choices.
pub fn node_streams(base: u64, n: usize) -> Vec<StdRng> {
    (0..n as u64)
        .map(|i| StdRng::seed_from_u64(derive_seed(base, i)))
        .collect()
}

/// Derives a decorrelated seed from a base seed and **two** stream
/// coordinates — the splittable scheme behind per-(step, node) random
/// streams.
///
/// # Examples
///
/// ```
/// use mwn_sim::derive_seed3;
///
/// assert_eq!(derive_seed3(42, 3, 9), derive_seed3(42, 3, 9));
/// assert_ne!(derive_seed3(42, 3, 9), derive_seed3(42, 9, 3));
/// ```
pub fn derive_seed3(base: u64, a: u64, b: u64) -> u64 {
    derive_seed(derive_seed(base, a), b)
}

/// Reserved stream tags for the round driver's derived streams. Kept
/// far above any realistic step count so per-step streams can never
/// collide with them.
///
/// The actor driver deliberately reuses the round driver's [`UPDATE`]
/// and [`MEDIUM`] bases: per (period, node) its frame fates and update
/// draws come off the *same* derived streams, so for a given seed the
/// two drivers consume identical randomness — the foundation of the
/// cross-driver agreement suite.
pub(crate) mod streams {
    /// Tag for [`crate::Protocol::init`] draws.
    pub const INIT: u64 = u64::MAX - 8;
    /// Tag for per-(step, node) [`crate::Protocol::update`] draws
    /// (shared by the round and actor drivers).
    pub const UPDATE: u64 = u64::MAX - 9;
    /// Tag for per-(step, sender) frame-fate draws on media with
    /// independent fates (shared by the round and actor drivers).
    pub const MEDIUM: u64 = u64::MAX - 10;
    /// Tag for per-corruption-event state-scrambling draws.
    pub const CORRUPT: u64 = u64::MAX - 11;
    /// Tag for the event driver's scripted-fault stream.
    pub const EVENT_FAULT: u64 = u64::MAX - 12;
    /// Tag for the event driver's fixed per-node phase offsets.
    pub const PHASE: u64 = u64::MAX - 13;
    /// Tag for the event driver's per-(slot, node) beacon jitter.
    pub const TIMING: u64 = u64::MAX - 14;
    /// Tag for the event driver's per-frame extra-loss draws.
    pub const EXTRA_LOSS: u64 = u64::MAX - 15;
    /// Tag for gated-contention per-(tick, sender) draws (slot pick,
    /// phantom carrier-sense fate).
    pub const CONTEND_SENDER: u64 = u64::MAX - 16;
    /// Tag for gated-contention per-(tick, receiver, sender) frame-copy
    /// draws (the statistical collision/capture fold).
    pub const CONTEND_COPY: u64 = u64::MAX - 17;
}

/// The RNG handed to one node for one activity: a fresh [`StdRng`]
/// seeded from `(base, stream, index)`.
///
/// Because the stream is (re-)derived at every use, a node that is
/// *skipped* by the activity-driven scheduler consumes no randomness —
/// the key property that makes dirty-set gated execution byte-identical
/// to running every node every step.
///
/// # Examples
///
/// ```
/// use mwn_sim::split_rng;
/// use rand::Rng;
///
/// let mut a = split_rng(7, 3, 12);
/// let mut b = split_rng(7, 3, 12);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn split_rng(base: u64, stream: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed3(base, stream, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let mut a = node_streams(9, 4);
        let mut b = node_streams(9, 4);
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(x.random::<u64>(), y.random::<u64>());
        }
    }

    #[test]
    fn streams_differ_between_nodes() {
        let mut streams = node_streams(9, 8);
        let firsts: Vec<u64> = streams.iter_mut().map(|r| r.random()).collect();
        let mut dedup = firsts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), firsts.len());
    }

    #[test]
    fn derive_seed_avalanches() {
        // Adjacent stream indices should produce wildly different seeds.
        let a = derive_seed(0, 0);
        let b = derive_seed(0, 1);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn split_streams_are_coordinate_wise_distinct() {
        let firsts: Vec<u64> = (0..4u64)
            .flat_map(|step| (0..4u64).map(move |node| (step, node)))
            .map(|(step, node)| split_rng(9, step, node).random())
            .collect();
        let mut dedup = firsts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), firsts.len(), "all (step, node) streams differ");
    }
}
