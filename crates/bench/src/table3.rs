//! **Table 3**: mean number of steps needed to build the DAG (run
//! algorithm N1 to a proper coloring) over a 32×32 grid and a Poisson
//! random-geometry deployment of intensity λ = 1000, for transmission
//! ranges R ∈ {0.05 … 0.1}. The paper reports ≈ 2 steps everywhere.

use mwn_cluster::DagVariant;
use mwn_graph::builders;
use mwn_metrics::{RunningStats, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{gamma_for, run_dag, ExperimentScale, TABLE3_RADII};

/// Mean DAG-construction steps per radius, for both deployments.
#[derive(Clone, Debug, PartialEq)]
pub struct Table3Result {
    /// The transmission ranges measured.
    pub radii: Vec<f64>,
    /// Mean steps on the grid, per radius.
    pub grid: Vec<f64>,
    /// Mean steps on the Poisson deployment, per radius.
    pub random_geometry: Vec<f64>,
}

/// Runs the Table 3 experiment.
pub fn run(scale: ExperimentScale) -> Table3Result {
    // One parallel fan-out over the radius × seed grid per deployment
    // family: no radius waits for another to finish.
    let grid_means: Vec<f64> = scale
        .sweep_with(scale.seed ^ 0x3A17)
        .map_grid(&TABLE3_RADII, |&radius, seed| {
            let topo = builders::grid(scale.grid_side, scale.grid_side, radius);
            let gamma = gamma_for(&topo);
            let (_, steps) = run_dag(topo, gamma, DagVariant::SmallestIdRedraws, seed, 500);
            steps as f64
        })
        .into_iter()
        .map(|runs| runs.into_iter().collect::<RunningStats>().mean())
        .collect();
    let rand_means: Vec<f64> = scale
        .sweep_with(scale.seed ^ 0x9B2D)
        .map_grid(&TABLE3_RADII, |&radius, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = builders::poisson(scale.lambda, radius, &mut rng);
            let gamma = gamma_for(&topo);
            let (_, steps) = run_dag(topo, gamma, DagVariant::SmallestIdRedraws, seed, 500);
            steps as f64
        })
        .into_iter()
        .map(|runs| runs.into_iter().collect::<RunningStats>().mean())
        .collect();
    Table3Result {
        radii: TABLE3_RADII.to_vec(),
        grid: grid_means,
        random_geometry: rand_means,
    }
}

/// Formats the result in the paper's layout.
pub fn render(result: &Table3Result) -> Table {
    let mut table = Table::new(
        "Table 3: steps to build the DAG (paper: grid 2.0-2.2, random geometry 1.9-2.0)",
    );
    let mut headers = vec!["R".to_string()];
    headers.extend(result.radii.iter().map(|r| format!("{r}")));
    table.set_headers(headers);
    table.add_numeric_row("Grid", &result.grid, 2);
    table.add_numeric_row("Random geometry", &result.random_geometry, 2);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_builds_in_a_few_steps() {
        let result = run(ExperimentScale::quick());
        for (i, &r) in result.radii.iter().enumerate() {
            assert!(
                result.grid[i] <= 6.0,
                "grid R={r}: {} steps — paper reports ≈2",
                result.grid[i]
            );
            assert!(
                result.random_geometry[i] <= 6.0,
                "random R={r}: {} steps — paper reports ≈2",
                result.random_geometry[i]
            );
            assert!(result.grid[i] >= 0.0);
        }
    }

    #[test]
    fn render_has_one_column_per_radius() {
        let result = Table3Result {
            radii: vec![0.05, 0.1],
            grid: vec![2.2, 2.0],
            random_geometry: vec![2.0, 1.9],
        };
        let s = render(&result).to_string();
        assert!(s.contains("0.05"));
        assert!(s.contains("2.20"));
        assert!(s.contains("1.90"));
    }
}
