use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{Delivery, Medium};

/// A slotted CSMA/CA-like medium with hidden terminals and half-duplex
/// radios: τ is *emergent* rather than assumed.
///
/// Each step is divided into `slots` mini-slots. Every sender picks a
/// slot uniformly at random (its randomized backoff). With
/// `carrier_sense` enabled (the CA part), a sender defers — loses its
/// whole step, as a real backoff-overrun would — when a 1-hop neighbor
/// already claimed the same slot; deferral is decided in random order,
/// mimicking who wins the channel race. A receiver `r` hears the frame
/// of sender `s` iff:
///
/// * `s` transmitted in some slot `t`,
/// * no *other* neighbor of `r` transmitted in slot `t` (collision —
///   this includes hidden terminals that `s` could not sense), and
/// * `r` itself did not transmit in slot `t` (half-duplex).
///
/// The paper's hypothesis — a memoryless per-frame success probability
/// ≥ τ > 0 — holds mechanically: with `k` slots and maximum degree δ,
/// a frame copy survives with probability at least
/// `((k-1)/k)^(δ+1) > 0`, independent across steps.
///
/// # Examples
///
/// ```
/// use mwn_graph::builders;
/// use mwn_radio::{measure_tau, SlottedCsma};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let topo = builders::uniform(50, 0.15, &mut rng);
/// let coarse = measure_tau(&mut SlottedCsma::new(4), &topo, 40, &mut rng);
/// let fine = measure_tau(&mut SlottedCsma::new(64), &topo, 40, &mut rng);
/// assert!(fine > coarse, "more slots, fewer collisions");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlottedCsma {
    slots: usize,
    carrier_sense: bool,
}

impl SlottedCsma {
    /// Creates the medium with `slots` mini-slots per step and carrier
    /// sensing enabled.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "need at least one slot per step");
        SlottedCsma {
            slots,
            carrier_sense: true,
        }
    }

    /// Disables carrier sensing (pure slotted-ALOHA behaviour); exposes
    /// the contribution of the CA part in ablation benches.
    pub fn without_carrier_sense(mut self) -> Self {
        self.carrier_sense = false;
        self
    }

    /// Number of mini-slots per step.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whether carrier sensing is enabled.
    pub fn carrier_sense(&self) -> bool {
        self.carrier_sense
    }

    /// Lower bound on the per-frame success probability for a topology
    /// of maximum degree `delta`: every one of the ≤ δ+1 relevant other
    /// radios must have picked a different slot.
    pub fn tau_lower_bound(&self, delta: usize) -> f64 {
        ((self.slots - 1) as f64 / self.slots as f64).powi(delta as i32 + 1)
    }
}

impl Medium for SlottedCsma {
    fn deliver_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        rng: &mut StdRng,
        delivery: &mut Delivery,
    ) {
        let n = topo.len();
        // Slot choice per sender (usize::MAX = not transmitting).
        let mut slot_of = vec![usize::MAX; n];
        // Random contention order for the carrier-sense race.
        let mut order: Vec<usize> = (0..senders.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        for &idx in &order {
            let s = senders[idx];
            let slot = rng.random_range(0..self.slots);
            if self.carrier_sense {
                let busy = topo
                    .neighbors(s)
                    .iter()
                    .any(|&q| slot_of[q.index()] == slot);
                if busy {
                    // Channel sensed busy for the chosen backoff: the
                    // frame is deferred past the step boundary (lost
                    // for this step).
                    continue;
                }
            }
            slot_of[s.index()] = slot;
        }
        // Attempted = every in-range copy from every sender, including
        // those whose frame was deferred by carrier sense.
        for &s in senders {
            delivery.attempted += topo.degree(s);
        }
        // Reception: per receiver and slot, exactly one transmitting
        // neighbor and the receiver itself silent in that slot.
        for &s in senders {
            let slot = slot_of[s.index()];
            if slot == usize::MAX {
                continue;
            }
            for &r in topo.neighbors(s) {
                if slot_of[r.index()] == slot {
                    continue; // half-duplex: r was talking over s
                }
                let collided = topo
                    .neighbors(r)
                    .iter()
                    .any(|&q| q != s && slot_of[q.index()] == slot);
                if !collided {
                    delivery.record(r, s);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "slotted-csma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_tau;
    use mwn_graph::{builders, Topology};
    use rand::SeedableRng;

    #[test]
    fn lone_sender_is_always_heard() {
        let topo = builders::star(10);
        let mut rng = StdRng::seed_from_u64(4);
        let mut medium = SlottedCsma::new(8);
        for _ in 0..20 {
            let d = medium.deliver(&topo, &[NodeId::new(0)], &mut rng);
            assert_eq!(d.delivered, 9, "no contention, no loss");
        }
    }

    #[test]
    fn hidden_terminals_collide_at_common_receiver() {
        // 0 - 1 - 2: 0 and 2 cannot hear each other (hidden terminals),
        // so with a single slot their frames always collide at 1.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut medium = SlottedCsma::new(1);
        let d = medium.deliver(&topo, &[NodeId::new(0), NodeId::new(2)], &mut rng);
        assert!(d.heard[1].is_empty(), "both frames must collide at node 1");
    }

    #[test]
    fn half_duplex_blocks_reception_in_same_slot() {
        // Two linked nodes, one slot: both transmit in that slot, so
        // neither can hear the other.
        let topo = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut medium = SlottedCsma::new(1).without_carrier_sense();
        let d = medium.deliver(&topo, &[NodeId::new(0), NodeId::new(1)], &mut rng);
        assert_eq!(d.delivered, 0);
    }

    #[test]
    fn carrier_sense_defers_audible_conflicts() {
        // With carrier sense and one slot, two linked senders cannot
        // both transmit: one defers, the other is received... but the
        // receiver is the deferring node itself, which stays silent and
        // therefore hears the winner.
        let topo = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut medium = SlottedCsma::new(1);
        let d = medium.deliver(&topo, &[NodeId::new(0), NodeId::new(1)], &mut rng);
        assert_eq!(d.delivered, 1, "exactly the channel-race winner is heard");
    }

    #[test]
    fn more_slots_improve_tau() {
        let mut rng = StdRng::seed_from_u64(8);
        let topo = builders::uniform(80, 0.15, &mut rng);
        let t4 = measure_tau(&mut SlottedCsma::new(4), &topo, 30, &mut rng);
        let t64 = measure_tau(&mut SlottedCsma::new(64), &topo, 30, &mut rng);
        assert!(t64 > t4, "τ(64 slots)={t64} vs τ(4 slots)={t4}");
    }

    #[test]
    fn tau_exceeds_analytic_lower_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let topo = builders::uniform(60, 0.12, &mut rng);
        let medium = SlottedCsma::new(32);
        let bound = medium.tau_lower_bound(topo.max_degree());
        let mut m = medium;
        let tau = measure_tau(&mut m, &topo, 50, &mut rng);
        assert!(tau >= bound, "measured {tau} < bound {bound}");
        assert!(bound > 0.0);
    }

    #[test]
    fn carrier_sense_beats_aloha_on_dense_graphs() {
        let mut rng = StdRng::seed_from_u64(10);
        let topo = builders::complete(20);
        let with = measure_tau(&mut SlottedCsma::new(16), &topo, 60, &mut rng);
        let without = measure_tau(
            &mut SlottedCsma::new(16).without_carrier_sense(),
            &topo,
            60,
            &mut rng,
        );
        assert!(
            with > without,
            "carrier sense should help: with={with} without={without}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_rejected() {
        let _ = SlottedCsma::new(0);
    }
}
