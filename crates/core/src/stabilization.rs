//! Legitimacy predicates and stabilization instrumentation.
//!
//! Self-stabilization is two properties (Section 4): **convergence**
//! (from any configuration the system reaches a legitimate one) and
//! **closure** (legitimate configurations persist). This module defines
//! what "legitimate" means for the clustering protocol — caches agree
//! with reality and the (head, parent) assignment is a fixpoint of the
//! election — and provides the measurement used to reproduce the
//! paper's Table 2 information schedule.

use mwn_graph::{NodeId, Topology};
use mwn_radio::Medium;
use mwn_sim::Network;
use serde::{Deserialize, Serialize};

use crate::oracle::oracle_with_keys;
use crate::protocol::{extract_clustering, ClusterState, DensityCluster};
use crate::{is_locally_unique, oracle, Key, OracleConfig};

/// Why a configuration is not legitimate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Illegitimacy {
    /// A node's neighbor cache differs from its true neighborhood.
    WrongNeighborCache(NodeId),
    /// A node's density is not the Definition-1 value.
    WrongDensity(NodeId),
    /// DAG renaming has not produced locally unique names inside γ.
    BadDagNames,
    /// A head or parent pointer references a node outside the network.
    DanglingPointer,
    /// The (head, parent) assignment is not the election fixpoint.
    NotAFixpoint,
}

impl std::fmt::Display for Illegitimacy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Illegitimacy::WrongNeighborCache(p) => write!(f, "stale neighbor cache at {p}"),
            Illegitimacy::WrongDensity(p) => write!(f, "wrong density at {p}"),
            Illegitimacy::BadDagNames => write!(f, "DAG names not locally unique / outside γ"),
            Illegitimacy::DanglingPointer => write!(f, "head or parent points outside network"),
            Illegitimacy::NotAFixpoint => write!(f, "assignment is not an election fixpoint"),
        }
    }
}

/// Checks whether the network is in a **legitimate configuration**:
///
/// 1. every cache holds exactly the true 1-neighborhood;
/// 2. every density equals its Definition-1 value;
/// 3. with the DAG enabled: all names in γ and locally unique;
/// 4. the (head, parent) assignment equals the election fixpoint for
///    the *current* keys (including incumbency flags, so the check is
///    meaningful for both orders — the fixpoint is self-consistent).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_legitimate<M: Medium>(net: &Network<DensityCluster, M>) -> Result<(), Illegitimacy> {
    let topo = net.topology();
    let states = net.states();
    let config = net.protocol().config();

    for p in topo.nodes() {
        let cached: Vec<NodeId> = states[p.index()].cache.keys().copied().collect();
        if cached.as_slice() != topo.neighbors(p) {
            return Err(Illegitimacy::WrongNeighborCache(p));
        }
    }
    for p in topo.nodes() {
        if states[p.index()].density != config.metric.value_of(topo, p) {
            return Err(Illegitimacy::WrongDensity(p));
        }
    }
    if let Some(dag) = &config.dag {
        let names: Vec<u32> = states.iter().map(|s| s.dag_id).collect();
        if !is_locally_unique(topo, &names) || names.iter().any(|&x| !dag.gamma.contains(x)) {
            return Err(Illegitimacy::BadDagNames);
        }
    }
    let Some(clustering) = extract_clustering(states) else {
        return Err(Illegitimacy::DanglingPointer);
    };
    let keys: Vec<Key> = topo.nodes().map(|p| states[p.index()].key(p)).collect();
    let fixpoint = oracle_with_keys(topo, &keys, config.order, config.rule);
    if clustering != fixpoint {
        return Err(Illegitimacy::NotAFixpoint);
    }
    Ok(())
}

/// The measured information schedule of a cold-start run — the paper's
/// Table 2. Each field is the earliest step count after which the
/// property held (and `None` if it never did within the bound).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfoSchedule {
    /// All neighbor tables complete ("step 1").
    pub neighbors: Option<u64>,
    /// All densities correct ("step 2").
    pub density: Option<u64>,
    /// All parents correct ("step 3").
    pub parent: Option<u64>,
    /// All cluster-heads correct ("bounded by the depth of the tree").
    pub head: Option<u64>,
}

/// Runs a cold-start network forward, recording when each level of
/// knowledge of the paper's Table 2 is first achieved.
///
/// Meaningful for DAG-less configurations (with the DAG the parents'
/// target moves while names settle); the comparison oracle uses the
/// node ids as tie-breaks, matching `ClusterConfig::default()`.
pub fn measure_info_schedule<M: Medium>(
    net: &mut Network<DensityCluster, M>,
    max_steps: u64,
) -> InfoSchedule {
    let topo = net.topology().clone();
    let config = *net.protocol().config();
    let want = oracle(
        &topo,
        &OracleConfig {
            metric: config.metric,
            order: config.order,
            rule: config.rule,
            tiebreak: None,
            prev_heads: None,
        },
    );
    let mut schedule = InfoSchedule::default();
    for _ in 0..max_steps {
        let now = net.step();
        let states = net.states();
        if schedule.neighbors.is_none() && all_neighbors_known(&topo, states) {
            schedule.neighbors = Some(now);
        }
        if schedule.density.is_none()
            && topo
                .nodes()
                .all(|p| states[p.index()].density == config.metric.value_of(&topo, p))
        {
            schedule.density = Some(now);
        }
        if schedule.parent.is_none()
            && topo
                .nodes()
                .all(|p| states[p.index()].parent == want.parent(p))
        {
            schedule.parent = Some(now);
        }
        if schedule.head.is_none() && topo.nodes().all(|p| states[p.index()].head == want.head(p)) {
            schedule.head = Some(now);
        }
        if schedule.head.is_some()
            && schedule.parent.is_some()
            && schedule.density.is_some()
            && schedule.neighbors.is_some()
        {
            break;
        }
    }
    schedule
}

fn all_neighbors_known(topo: &Topology, states: &[ClusterState]) -> bool {
    topo.nodes().all(|p| {
        let cached: Vec<NodeId> = states[p.index()].cache.keys().copied().collect();
        cached.as_slice() == topo.neighbors(p)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterConfig;
    use mwn_graph::builders;
    use mwn_sim::Scenario;

    #[test]
    fn stabilized_run_is_legitimate() {
        let topo = builders::fig1_example();
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(1)
            .build()
            .expect("valid scenario");
        net.run(30);
        assert_eq!(check_legitimate(&net), Ok(()));
    }

    #[test]
    fn cold_start_is_not_legitimate() {
        let topo = builders::fig1_example();
        let net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(1)
            .build()
            .expect("valid scenario");
        assert!(check_legitimate(&net).is_err());
    }

    #[test]
    fn corruption_breaks_legitimacy_and_running_restores_it() {
        let topo = builders::grid(5, 5, 0.3);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(2)
            .build()
            .expect("valid scenario");
        net.run(30);
        assert_eq!(check_legitimate(&net), Ok(()));
        net.corrupt_all();
        assert!(check_legitimate(&net).is_err());
        net.run(40);
        assert_eq!(check_legitimate(&net), Ok(()));
    }

    #[test]
    fn info_schedule_is_1_2_3_on_perfect_medium() {
        // The paper's Table 2: neighbors after step 1, density after
        // step 2, father after step 3; head within depth more steps.
        let topo = builders::fig1_example();
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(3)
            .build()
            .expect("valid scenario");
        let schedule = measure_info_schedule(&mut net, 50);
        assert_eq!(schedule.neighbors, Some(1));
        assert_eq!(schedule.density, Some(2));
        assert_eq!(schedule.parent, Some(3));
        let head = schedule.head.expect("heads converge");
        assert!((3..=6).contains(&head), "head step {head}");
    }

    #[test]
    fn illegitimacy_display_is_informative() {
        let reasons = [
            Illegitimacy::WrongNeighborCache(NodeId::new(1)),
            Illegitimacy::WrongDensity(NodeId::new(2)),
            Illegitimacy::BadDagNames,
            Illegitimacy::DanglingPointer,
            Illegitimacy::NotAFixpoint,
        ];
        for r in reasons {
            assert!(!r.to_string().is_empty());
        }
    }
}
