//! **Theorem 1 and Lemmas 1–2, quantitatively**: stabilization times
//! that the paper proves constant in expectation, measured.
//!
//! * Theorem 1 — N1 reaches a proper coloring in expected constant
//!   time: DAG steps must not grow with the network size.
//! * Lemma 2 — the election stabilizes in time proportional to the
//!   height of DAG_≺ (constant for fixed δ): cold-start and
//!   post-corruption stabilization steps must not grow with n.
//! * The CSMA hypothesis — convergence survives any τ > 0, with
//!   stabilization time growing as τ falls.

use mwn_cluster::{ClusterConfig, DagVariant, DensityCluster};
use mwn_graph::builders;
use mwn_metrics::{RunningStats, Table};
use mwn_radio::BernoulliLoss;
use mwn_sim::{Scenario, StopWhen, Sweep};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{gamma_for, run_dag, run_distributed, ExperimentScale};

/// Stabilization-time measurements across network sizes and τ values.
#[derive(Clone, Debug, PartialEq)]
pub struct StabilizationResult {
    /// Network sizes measured (Poisson intensities).
    pub sizes: Vec<usize>,
    /// Mean N1 (DAG) stabilization steps per size.
    pub dag_steps: Vec<f64>,
    /// Mean election stabilization steps from cold start per size.
    pub cold_steps: Vec<f64>,
    /// Mean election re-stabilization steps after corrupting every
    /// node, per size.
    pub corruption_steps: Vec<f64>,
    /// τ values measured.
    pub taus: Vec<f64>,
    /// Mean stabilization steps under Bernoulli loss per τ.
    pub tau_steps: Vec<f64>,
}

/// One cold-start election run at intensity `n`: the stabilization
/// step count. The core measurement of the scaling experiment, shared
/// by [`run`] and the sweep-speedup harness.
pub fn cold_start_steps(n: usize, radius: f64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = builders::poisson(n as f64, radius, &mut rng);
    let (_, _, steps) = run_distributed(topo, ClusterConfig::default(), seed, 2000);
    steps as f64
}

fn radius_for(n: usize, degree_target: f64) -> f64 {
    (degree_target / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// Runs the stabilization experiments.
pub fn run(scale: ExperimentScale) -> StabilizationResult {
    // Fixed expected degree: λ·π·R² held constant while λ grows, the
    // regime where the paper's "constant time" claim applies.
    let degree_target = 8.0;
    let sizes: Vec<usize> = if scale.runs >= 50 {
        vec![125, 250, 500, 1000, 2000]
    } else {
        vec![100, 200, 400]
    };
    let per_point = (scale.runs / 10).clamp(3, 100);

    let mut dag_steps = Vec::new();
    let mut cold_steps = Vec::new();
    let mut corruption_steps = Vec::new();
    for &n in &sizes {
        let radius = radius_for(n, degree_target);
        let dag = Sweep::over(per_point, scale.seed ^ n as u64).map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = builders::poisson(n as f64, radius, &mut rng);
            let gamma = gamma_for(&topo);
            let (_, steps) = run_dag(topo, gamma, DagVariant::Randomized, seed, 2000);
            steps as f64
        });
        dag_steps.push(dag.into_iter().collect::<RunningStats>().mean());

        let cold = Sweep::over(per_point, scale.seed ^ (n as u64) << 1)
            .map(|seed| cold_start_steps(n, radius, seed));
        cold_steps.push(cold.into_iter().collect::<RunningStats>().mean());

        let corrupted = Sweep::over(per_point, scale.seed ^ (n as u64) << 2).map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = builders::poisson(n as f64, radius, &mut rng);
            let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
                .topology(topo)
                .seed(seed)
                .build()
                .expect("valid scenario");
            net.run(30);
            net.corrupt_all();
            let start = net.now();
            let report = net.run_to(&StopWhen::stable_for(4).within(2000));
            let stabilized = report.expect_stable("reconverges (self-stabilization)");
            (stabilized.saturating_sub(start)) as f64
        });
        corruption_steps.push(corrupted.into_iter().collect::<RunningStats>().mean());
    }

    // τ sweep on a fixed mid-size deployment.
    let taus = vec![1.0, 0.8, 0.6, 0.4];
    let mut tau_steps = Vec::new();
    for &tau in &taus {
        let steps = Sweep::over(per_point, scale.seed ^ 0x7A07).map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = builders::poisson(200.0, 0.12, &mut rng);
            let config = ClusterConfig {
                cache_ttl: ttl_for_tau(tau),
                ..ClusterConfig::default()
            };
            let mut net = Scenario::new(DensityCluster::new(config))
                .medium(BernoulliLoss::new(tau))
                .topology(topo)
                .seed(seed)
                .build()
                .expect("valid scenario");
            net.run_to(&StopWhen::stable_for(25).within(20_000))
                .expect_stable("converges for any τ > 0") as f64
        });
        tau_steps.push(steps.into_iter().collect::<RunningStats>().mean());
    }

    StabilizationResult {
        sizes,
        dag_steps,
        cold_steps,
        corruption_steps,
        taus,
        tau_steps,
    }
}

/// Wall-clock comparison of the parallel [`Sweep`] against a serial
/// loop on the cold-start stabilization experiment: returns
/// `(serial, parallel)` durations for `seeds` runs at intensity
/// λ = 1000 (the paper's deployment).
///
/// The two modes produce identical results (asserted here), so the
/// only difference is scheduling.
pub fn sweep_speedup(seeds: usize, base_seed: u64) -> (std::time::Duration, std::time::Duration) {
    let n = 1000;
    let radius = radius_for(n, 8.0);
    let job = |seed: u64| cold_start_steps(n, radius, seed);
    let serial_start = std::time::Instant::now();
    let serial_out = Sweep::over(seeds, base_seed).serial().map(job);
    let serial = serial_start.elapsed();
    let parallel_start = std::time::Instant::now();
    let parallel_out = Sweep::over(seeds, base_seed).map(job);
    let parallel = parallel_start.elapsed();
    assert_eq!(serial_out, parallel_out, "sweep modes must agree exactly");
    (serial, parallel)
}

/// Cache TTL (in steps) under which a live neighbor's entry falsely
/// expires with probability below ~1e-7: `(1-τ)^ttl ≤ 1e-7`. Short
/// TTLs at low τ would make neighbor sets — and hence the election
/// output — flicker forever, which is a deployment misconfiguration,
/// not a stabilization failure.
pub fn ttl_for_tau(tau: f64) -> u64 {
    if tau >= 0.999 {
        return 4;
    }
    let ttl = (1e-7f64.ln() / (1.0 - tau).ln()).ceil() as u64;
    ttl.max(4) + 2
}

/// Formats the scaling table (per network size).
pub fn render_scaling(result: &StabilizationResult) -> Table {
    let mut table = Table::new(
        "Stabilization steps vs network size at fixed degree \
         (Theorem 1 / Lemma 2: expected constant)",
    );
    let mut headers = vec!["n (λ)".to_string()];
    headers.extend(result.sizes.iter().map(ToString::to_string));
    table.set_headers(headers);
    table.add_numeric_row("N1 (DAG) steps", &result.dag_steps, 2);
    table.add_numeric_row("election, cold start", &result.cold_steps, 2);
    table.add_numeric_row("election, after corruption", &result.corruption_steps, 2);
    table
}

/// Formats the τ-sweep table.
pub fn render_tau(result: &StabilizationResult) -> Table {
    let mut table = Table::new("Stabilization steps vs per-frame success probability τ");
    let mut headers = vec!["τ".to_string()];
    headers.extend(result.taus.iter().map(|t| format!("{t}")));
    table.set_headers(headers);
    table.add_numeric_row("election steps", &result.tau_steps, 1);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilization_does_not_grow_with_n() {
        let result = run(ExperimentScale {
            runs: 30,
            ..ExperimentScale::quick()
        });
        // "Constant expected time": the largest network may not take
        // more than a small factor longer than the smallest.
        let first = result.cold_steps.first().copied().unwrap();
        let last = result.cold_steps.last().copied().unwrap();
        assert!(
            last <= first * 3.0 + 5.0,
            "cold-start stabilization grew from {first} to {last} steps"
        );
        let d_first = result.dag_steps.first().copied().unwrap();
        let d_last = result.dag_steps.last().copied().unwrap();
        assert!(
            d_last <= d_first * 3.0 + 5.0,
            "DAG stabilization grew from {d_first} to {d_last} steps"
        );
        assert!(result.corruption_steps.iter().all(|&s| s < 100.0));
    }

    #[test]
    fn lower_tau_is_slower_but_converges() {
        let result = run(ExperimentScale {
            runs: 20,
            ..ExperimentScale::quick()
        });
        let perfect = result.tau_steps[0];
        let lossy = *result.tau_steps.last().unwrap();
        assert!(
            lossy >= perfect,
            "τ=0.4 ({lossy}) should not beat τ=1 ({perfect})"
        );
    }

    #[test]
    fn render_layouts() {
        let result = StabilizationResult {
            sizes: vec![100],
            dag_steps: vec![2.0],
            cold_steps: vec![5.0],
            corruption_steps: vec![6.0],
            taus: vec![1.0],
            tau_steps: vec![5.0],
        };
        assert!(render_scaling(&result).to_string().contains("N1"));
        assert!(render_tau(&result).to_string().contains("τ"));
    }
}
