//! The actor fabric's scaling story: real message-passing processes
//! reproduce the synchronous reference exactly, at 10⁴ nodes and any
//! thread count, while the virtual-time token governor keeps periods
//! cheap.
//!
//! ```sh
//! cargo run --release -p mwn-bench --bin actors             # 1k/10k
//! cargo run --release -p mwn-bench --bin actors -- --quick  # 1k (CI smoke)
//! ```
//!
//! Writes `BENCH_actors.json` next to the working directory.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes: Vec<usize> = if quick {
        vec![1_000]
    } else {
        vec![1_000, 10_000]
    };
    let threads = [1usize, 2, 4];
    let quiet_steps = if quick { 200 } else { 500 };
    let points = mwn_bench::actors::run(&sizes, 20050610, &threads, quiet_steps);
    println!("{}", mwn_bench::actors::render(&points));
    for p in &points {
        assert!(
            p.agrees(),
            "actor fabric diverged from the round driver at n = {}",
            p.nodes
        );
    }
    let json = mwn_bench::actors::to_json(&points);
    let path = "BENCH_actors.json";
    std::fs::write(path, &json).expect("write BENCH_actors.json");
    println!("\nwrote {path}");
}
