//! The shared activity-driven scheduling core behind **both** clocks.
//!
//! The paper's protocols are *silent*: once the legitimate
//! configuration is reached, no shared variable changes any more. Both
//! drivers exploit that through the same machinery, extracted here so
//! every scheduling model pays the same near-zero stable-state cost:
//!
//! * [`NodeSet`] — index-backed dirty sets: O(1) insert/membership,
//!   dense iteration, allocation-free in steady state;
//! * [`NodeTable`] — the columnar per-node hot state (protocol states,
//!   beacon snapshots, beacon epochs, per-edge reception epochs) plus
//!   the scheduling sets;
//! * [`ActivityCore`] — the table bundled with the derived-stream bases
//!   ([`crate::split_rng`]) and the wakeup rules every driver shares:
//!   what to invalidate when a fault mutates a node, when a topology
//!   delta rewires links, when a beacon is recomputed;
//! * [`SlotClock`] — the continuous-time beacon schedule as a *pure
//!   function* of `(seed, node, slot index)`, so a node skipped while
//!   silent consumes no randomness and its future transmission times
//!   are independent of how long it slept;
//! * [`run_pooled`] — the scoped-thread work-stealing pool shared by
//!   [`crate::Sweep`] and the traffic plane's batch forwarding;
//! * [`run_sharded`] — the allocation-free variant backing the round
//!   driver's sharded active pass: workers write into caller-owned,
//!   reused arenas instead of returning fresh `Vec`s;
//! * [`kernels`] — the branch-lean word-at-a-time kernels and columnar
//!   layouts ([`kernels::BitWords`], [`kernels::HeardTable`], the
//!   sorted join and epoch compares) the structures above are built
//!   on, each with a scalar reference implementation and criterion
//!   micro-benches under `crates/bench`.
//!
//! The synchronous round driver ([`crate::Network`]) and the
//! continuous-time driver ([`crate::EventDriver`]) are thin scheduling
//! disciplines over this core: one advances a global step counter, the
//! other pops timestamped events — but dirtiness, epochs, stream
//! derivation and wakeup rules are identical.

pub mod kernels;

use mwn_graph::{NodeId, Topology, TopologyDelta};
use mwn_radio::{ContentionStreams, Occupancy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rng::{derive_seed, split_rng, streams};
use crate::Protocol;

use kernels::{BitWords, HeardTable};

/// Beacon-epoch sentinel meaning "never received anything from this
/// neighbor" — forces the neighbor to (re-)broadcast at least once.
pub(crate) const NEVER: u32 = u32::MAX;

/// Epoch bump that never lands on the [`NEVER`] sentinel.
#[inline]
pub(crate) fn bump_epoch(e: u32) -> u32 {
    let next = e.wrapping_add(1);
    if next == NEVER {
        0
    } else {
        next
    }
}

/// An index-backed node set: O(1) insert and membership via a
/// cache-line-aligned bitset ([`kernels::BitWords`]), dense iteration
/// via the word-at-a-time decode kernel, sparse iteration via a
/// companion insertion log. Removal is lazy (bit cleared, log entry
/// skipped at collection time), so every operation on the hot path is
/// constant-time and allocation-free in steady state.
///
/// The bitset is always authoritative; the log is an accelerator for
/// sparse collections. A bulk fill ([`NodeSet::insert_all`]) marks the
/// log stale instead of materializing n entries, and the dense drain
/// decodes the bitset directly — bit order *is* node order, so the
/// result arrives sorted without the sort the log path needs.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeSet {
    bits: BitWords,
    /// Insertion log (may hold lazily-removed or duplicate entries;
    /// compacted at collection time).
    list: Vec<NodeId>,
    /// `false` after a bulk fill: the log no longer enumerates the
    /// members and collections must decode the bitset.
    list_complete: bool,
}

/// Collections switch from the log path (compact + sort, O(k log k))
/// to the bitset decode (O(n/64) word scan) once the log holds more
/// than one entry per this many nodes.
const DENSE_COLLECT_DIVISOR: usize = 16;

impl NodeSet {
    pub fn new(n: usize) -> Self {
        NodeSet {
            bits: BitWords::new(n),
            list: Vec::new(),
            list_complete: true,
        }
    }

    #[inline]
    pub fn insert(&mut self, p: NodeId) {
        if self.bits.set(p.index()) {
            if self.list.len() == self.list.capacity() && self.list.capacity() < self.bits.len() {
                // Grow once, straight to node count: converging-phase
                // insert storms never reallocate the log mid-step.
                self.list.reserve_exact(self.bits.len() - self.list.len());
            }
            self.list.push(p);
        }
    }

    #[inline]
    pub fn remove(&mut self, p: NodeId) {
        self.bits.clear(p.index());
    }

    #[inline]
    pub fn contains(&self, p: NodeId) -> bool {
        self.bits.test(p.index())
    }

    /// Empties the set, keeping the buffers: O(logged) while the log is
    /// live, one bulk zero after a bulk fill.
    pub fn clear(&mut self) {
        if self.list_complete {
            for i in 0..self.list.len() {
                let p = self.list[i];
                self.bits.clear(p.index());
            }
        } else {
            self.bits.zero_all();
        }
        self.list.clear();
        self.list_complete = true;
    }

    /// Bulk fill: every node becomes a member in one masked word fill;
    /// the insertion log is marked stale rather than materialized.
    pub fn insert_all(&mut self) {
        self.bits.fill_all();
        self.list.clear();
        self.list_complete = false;
    }

    /// Copies the live members into `out`, sorted and deduplicated, and
    /// resynchronizes the internal log (drops lazily-removed entries).
    pub fn collect_sorted_into(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        if self.dense() {
            self.bits.decode_into(out);
            self.list.clear();
            self.list.extend_from_slice(out);
        } else {
            self.list.retain(|&p| self.bits.test(p.index()));
            out.extend_from_slice(&self.list);
            out.sort_unstable();
            out.dedup();
        }
        self.list_complete = true;
    }

    /// Copies the live members into `out` (sorted, deduplicated), then
    /// empties the set.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        if self.dense() {
            self.bits.decode_and_zero_into(out);
        } else {
            self.list.retain(|&p| self.bits.test(p.index()));
            out.extend_from_slice(&self.list);
            out.sort_unstable();
            out.dedup();
            for &p in out.iter() {
                self.bits.clear(p.index());
            }
        }
        self.list.clear();
        self.list_complete = true;
    }

    /// Whether collections should take the bitset-decode path.
    #[inline]
    fn dense(&self) -> bool {
        !self.list_complete || self.list.len() * DENSE_COLLECT_DIVISOR >= self.bits.len()
    }
}

/// The columnar node table: every per-node column the hot loops read
/// or write, plus the scheduling sets.
pub(crate) struct NodeTable<P: Protocol> {
    /// Protocol state per node.
    pub states: Vec<P::State>,
    /// The beacon each node currently broadcasts (recomputed only when
    /// the node's state changed).
    pub beacons: Vec<P::Beacon>,
    /// Beacon version per node: bumped whenever the recomputed beacon
    /// differs ([`Protocol::beacon_changed`]) from the previous one.
    pub epoch: Vec<u32>,
    /// `heard.get(r, k)`: the epoch of neighbor `adj[r][k]`'s beacon
    /// that `r` last incorporated ([`NEVER`] if none). Kept aligned
    /// with the topology's sorted adjacency lists; one contiguous CSR
    /// arena rather than a `Vec` per node (see
    /// [`kernels::HeardTable`]).
    pub heard: HeardTable,
    /// Nodes whose beacon must be recomputed next step (state changed).
    pub beacon_stale: NodeSet,
    /// Nodes whose guards must run next step.
    pub update_dirty: NodeSet,
    /// Nodes with at least one neighbor that has not yet received their
    /// current beacon epoch.
    pub send_pending: NodeSet,
    /// Statistical slot occupancy of the retired population — present
    /// only when the round driver gates a **contention** medium
    /// ([`mwn_radio::Medium::gated_contention`]). Invariant whenever
    /// present: a node is occupied iff it has retired from
    /// `send_pending` (every silent node still occupies its slot), and
    /// `count_at(r)` equals the number of occupied 1-neighbors of `r`.
    /// Every mutation of `send_pending` below maintains it; all the
    /// maintenance is O(degree) per transition and O(1) when the
    /// summary is empty, so eager-pinned runs pay nothing.
    pub occupancy: Option<Occupancy>,
    /// Nodes mutated outside the protocol this step (faults,
    /// `link_down`, manual corruption): unconditionally counted as
    /// changed even if the per-node pass sees no further delta.
    pub forced_changed: NodeSet,
    /// Nodes whose state changed during the last executed step.
    pub changed: Vec<NodeId>,
    /// Nodes currently broadcasting a *forged* beacon
    /// ([`Fault::ByzantineBeacon`](crate::Fault::ByzantineBeacon)): the
    /// lie sits in their `beacons` column and
    /// [`ActivityCore::refresh_beacon`] refuses to overwrite it until
    /// the lie is cleared. Almost always empty, so the hot-path guard
    /// is a single `is_empty` test.
    pub lies: Vec<NodeId>,
    /// Scratch: pre-step snapshot of the node being processed.
    pub scratch_state: Option<P::State>,
    /// Scratch: pooled beacon buffer for [`ActivityCore::refresh_beacon`].
    /// Refreshing computes into this buffer ([`Protocol::beacon_into`])
    /// and swaps it with the node's column slot, so a protocol that
    /// reuses the buffer's capacity (e.g. `DensityCluster`'s `view`
    /// vec) refreshes without allocating.
    pub scratch_beacon: Option<P::Beacon>,
}

impl<P: Protocol> NodeTable<P> {
    pub fn new(protocol: &P, topo: &Topology, states: Vec<P::State>) -> Self {
        let n = states.len();
        let beacons: Vec<P::Beacon> = states
            .iter()
            .enumerate()
            .map(|(i, s)| protocol.beacon(NodeId::new(i as u32), s))
            .collect();
        let heard = HeardTable::new(topo.nodes().map(|p| topo.degree(p)));
        let mut table = NodeTable {
            states,
            beacons,
            epoch: vec![0; n],
            heard,
            beacon_stale: NodeSet::new(n),
            update_dirty: NodeSet::new(n),
            send_pending: NodeSet::new(n),
            occupancy: None,
            forced_changed: NodeSet::new(n),
            changed: Vec::new(),
            lies: Vec::new(),
            scratch_state: None,
            scratch_beacon: None,
        };
        // Cold start: everything is dirty — nobody has heard anyone.
        table.update_dirty.insert_all();
        table.send_pending.insert_all();
        table
    }

    /// Marks `p` for rescheduling: its state may have changed outside
    /// the regular pass (fault, manual mutation, link event).
    pub fn mark_node(&mut self, p: NodeId) {
        self.update_dirty.insert(p);
        self.beacon_stale.insert(p);
        self.forced_changed.insert(p);
    }

    /// Conservative full invalidation: used on wholesale topology swaps
    /// and when switching scheduling modes.
    pub fn mark_all(&mut self, topo: &Topology) {
        self.update_dirty.insert_all();
        self.beacon_stale.insert_all();
        self.send_pending.insert_all();
        if let Some(occ) = &mut self.occupancy {
            occ.release_all();
        }
        self.heard.reset_all(topo.nodes().map(|p| topo.degree(p)));
    }

    /// Re-aligns `r`'s reception row after its adjacency list changed,
    /// conservatively forgetting what it had heard: every current
    /// neighbor is forced to re-broadcast.
    pub fn reset_heard_row(&mut self, r: NodeId, topo: &Topology) {
        self.heard.reset_row(r.index(), topo.degree(r));
        for &q in topo.neighbors(r) {
            self.send_pending.insert(q);
        }
        // r's own beacon must reach any new neighbor too.
        self.send_pending.insert(r);
        if let Some(occ) = &mut self.occupancy {
            occ.release(r, topo);
            for &q in topo.neighbors(r) {
                occ.release(q, topo);
            }
        }
    }
}

/// The [`NodeTable`] bundled with the derived-stream bases and the
/// wakeup rules both drivers share.
///
/// Owning the stream bases here is what keeps the two clocks
/// byte-compatible with their own eager references: every random draw
/// is (re-)derived from `(base, tick, node)` at the point of use, so a
/// node skipped by activity gating consumes no randomness — under
/// either clock.
pub(crate) struct ActivityCore<P: Protocol> {
    /// The columnar hot state.
    pub table: NodeTable<P>,
    /// Base of the per-(tick, node) [`Protocol::update`] streams.
    pub update_base: u64,
    /// Base of the per-(tick, sender) frame-fate streams.
    pub medium_base: u64,
    /// Base of the per-corruption-event state-scrambling streams.
    pub corrupt_base: u64,
    /// Base of the gated-contention per-(tick, sender) streams.
    pub contend_sender_base: u64,
    /// Base of the gated-contention per-(tick, receiver, sender)
    /// frame-copy streams.
    pub contend_copy_base: u64,
    /// Corruption events so far — each gets its own derived stream.
    pub corrupt_events: u64,
}

impl<P: Protocol> ActivityCore<P> {
    /// Cold-starts the core over `topo`: per-node derived init streams,
    /// everything dirty.
    pub fn new(protocol: &P, topo: &Topology, seed: u64) -> Self {
        let init_base = derive_seed(seed, streams::INIT);
        let states: Vec<P::State> = topo
            .nodes()
            .map(|p| {
                let mut rng = StdRng::seed_from_u64(derive_seed(init_base, u64::from(p.value())));
                protocol.init(p, &mut rng)
            })
            .collect();
        ActivityCore {
            table: NodeTable::new(protocol, topo, states),
            update_base: derive_seed(seed, streams::UPDATE),
            medium_base: derive_seed(seed, streams::MEDIUM),
            corrupt_base: derive_seed(seed, streams::CORRUPT),
            contend_sender_base: derive_seed(seed, streams::CONTEND_SENDER),
            contend_copy_base: derive_seed(seed, streams::CONTEND_COPY),
            corrupt_events: 0,
        }
    }

    /// The gated-contention stream bundle for one delivery tick.
    #[inline]
    pub fn contention_streams(&self, tick: u64) -> ContentionStreams {
        ContentionStreams::new(self.contend_sender_base, self.contend_copy_base, tick)
    }

    /// The [`Protocol::update`] stream of node `p` at scheduler tick
    /// `tick` (the step count under the round clock, the event-time bit
    /// pattern under the continuous clock).
    #[inline]
    pub fn update_rng(&self, tick: u64, p: NodeId) -> StdRng {
        split_rng(self.update_base, tick, u64::from(p.value()))
    }

    /// The frame-fate stream of sender `p` at scheduler tick `tick`.
    #[inline]
    pub fn medium_rng(&self, tick: u64, p: NodeId) -> StdRng {
        split_rng(self.medium_base, tick, u64::from(p.value()))
    }

    /// A fresh stream for the next corruption event against `p`:
    /// however much randomness the corruptor consumes, no node's other
    /// streams move.
    pub fn corrupt_rng(&mut self, p: NodeId) -> StdRng {
        let event = self.corrupt_events;
        self.corrupt_events += 1;
        split_rng(self.corrupt_base, event, u64::from(p.value()))
    }

    /// Rescheduling for an externally mutated node: besides waking it,
    /// its reception bookkeeping must be forgotten — a corrupted cache
    /// can no longer claim to have incorporated anyone's beacon, so its
    /// neighbors are forced to re-broadcast (exactly what an eager
    /// engine's unconditional beacons would have repaired implicitly).
    pub fn wake_mutated(&mut self, p: NodeId, topo: &Topology) {
        self.table.mark_node(p);
        self.table.reset_heard_row(p, topo);
    }

    /// Processes an incremental topology change: notify the protocol of
    /// vanished links, wake the touched nodes, and realign their
    /// reception bookkeeping. Returns `true` when anything observable
    /// changed (memoized predicate verdicts over `(topo, states)` are
    /// then stale).
    pub fn apply_delta(&mut self, protocol: &P, topo: &Topology, delta: &TopologyDelta) -> bool {
        let env_changed = !delta.moved.is_empty() || !delta.is_quiet();
        if delta.is_quiet() {
            return env_changed;
        }
        // Occupancy counts are adjusted edge-wise against the *new*
        // adjacency before any touched-node release walks it, so the
        // per-receiver counts stay exact through rewires.
        if let Some(occ) = &mut self.table.occupancy {
            for &(u, v) in &delta.removed {
                occ.edge_removed(u, v);
            }
            for &(u, v) in &delta.added {
                occ.edge_added(u, v);
            }
        }
        for &(u, v) in &delta.removed {
            protocol.link_down(u, &mut self.table.states[u.index()], v);
            protocol.link_down(v, &mut self.table.states[v.index()], u);
        }
        for p in delta.touched() {
            self.table.mark_node(p);
            self.table.reset_heard_row(p, topo);
        }
        env_changed
    }

    /// Severs every link of `p` by removing its edges — the node's
    /// radio goes dark but its state survives (crash of the *link*
    /// layer). Fires [`Protocol::link_down`] on both endpoints of
    /// every severed link and wakes everyone touched; the severed
    /// neighbors are left in `scratch` for driver-specific follow-up
    /// (re-arming slots, change notes).
    pub fn isolate(
        &mut self,
        protocol: &P,
        topo: &mut Topology,
        p: NodeId,
        scratch: &mut Vec<NodeId>,
    ) {
        scratch.clear();
        scratch.extend_from_slice(topo.neighbors(p));
        for &q in scratch.iter() {
            topo.remove_edge(p, q);
        }
        if let Some(occ) = &mut self.table.occupancy {
            for &q in scratch.iter() {
                occ.edge_removed(p, q);
            }
        }
        for &q in scratch.iter() {
            protocol.link_down(p, &mut self.table.states[p.index()], q);
            protocol.link_down(q, &mut self.table.states[q.index()], p);
            self.table.mark_node(q);
            self.table.reset_heard_row(q, topo);
        }
        self.table.mark_node(p);
        self.table.reset_heard_row(p, topo);
    }

    /// Recomputes `p`'s beacon from its current state; if the content
    /// changed ([`Protocol::beacon_changed`]) the epoch is bumped and
    /// `p` becomes send-pending (waking it from statistical occupancy
    /// if it had retired). Returns whether the beacon changed.
    pub fn refresh_beacon(&mut self, protocol: &P, topo: &Topology, p: NodeId) -> bool {
        // A lying node's column holds its forged beacon; refreshing
        // must not launder it back to the truth until the lie clears.
        if !self.table.lies.is_empty() && self.table.lies.contains(&p) {
            return false;
        }
        // The pooled scratch buffer circulates: beacon_into overwrites
        // it in place, then it swaps with the node's column slot, so
        // refreshing never constructs a beacon from nothing once the
        // buffer capacities have reached their high-water marks.
        let scratch = self
            .table
            .scratch_beacon
            .get_or_insert_with(|| self.table.beacons[p.index()].clone());
        protocol.beacon_into(p, &self.table.states[p.index()], scratch);
        let changed = protocol.beacon_changed(&self.table.beacons[p.index()], scratch);
        if changed {
            self.table.epoch[p.index()] = bump_epoch(self.table.epoch[p.index()]);
            self.table.send_pending.insert(p);
            if let Some(occ) = &mut self.table.occupancy {
                occ.release(p, topo);
            }
        }
        std::mem::swap(&mut self.table.beacons[p.index()], scratch);
        changed
    }

    /// Installs a forged beacon for `p`: the lie replaces `p`'s
    /// broadcast column, the epoch bump makes every neighbor "behind",
    /// and `p` rejoins the pending senders (waking from statistical
    /// occupancy if retired) so the lie actually hits the air. `p`'s
    /// true state is untouched; [`Self::refresh_beacon`] refuses to
    /// overwrite the column until [`Self::clear_lie`].
    pub fn install_lie(&mut self, topo: &Topology, p: NodeId, beacon: P::Beacon) {
        self.table.beacons[p.index()] = beacon;
        self.table.epoch[p.index()] = bump_epoch(self.table.epoch[p.index()]);
        self.table.send_pending.insert(p);
        if let Some(occ) = &mut self.table.occupancy {
            occ.release(p, topo);
        }
        if !self.table.lies.contains(&p) {
            self.table.lies.push(p);
        }
    }

    /// Ends `p`'s Byzantine window: the override lifts and `p` is woken
    /// as an externally-mutated node, so its next refresh recomputes
    /// the honest beacon (epoch-bumped past the lie) and its poisoned
    /// neighbors are forced to hear the retraction.
    pub fn clear_lie(&mut self, protocol: &P, topo: &Topology, p: NodeId) {
        self.table.lies.retain(|q| *q != p);
        self.wake_mutated(p, topo);
        let _ = self.refresh_beacon(protocol, topo, p);
    }

    /// `true` when every neighbor of `s` has incorporated `s`'s current
    /// beacon epoch — the retirement condition for a pending sender.
    pub fn all_caught_up(&self, topo: &Topology, s: NodeId) -> bool {
        let epoch = self.table.epoch[s.index()];
        topo.neighbors(s).iter().all(|&r| {
            topo.neighbors(r)
                .binary_search(&s)
                .map(|idx| self.table.heard.get(r.index(), idx) == epoch)
                .unwrap_or(true)
        })
    }
}

/// The continuous-time beacon schedule as a pure function of
/// `(seed, node, slot index)`.
///
/// Node `p`'s `k`-th beacon opportunity ("slot") fires at
///
/// ```text
/// slot_time(p, k) = (k + phase_p + jitter · (u_{p,k} − ½)) · period
/// ```
///
/// with `phase_p ~ U(0, 1)` a fixed per-node desynchronization offset
/// and `u_{p,k} ~ U(0, 1)` a fresh per-slot draw — Herman & Tixeuil's
/// randomized timing discipline, reparameterized so the whole schedule
/// is *stateless*: consecutive slots are `period · (1 ± jitter)` apart
/// (mean exactly `period`), and the time of any slot can be computed
/// without replaying the slots before it. That statelessness is what
/// lets the event driver skip a silent node entirely and still wake it
/// on exactly the schedule its always-transmitting twin would follow.
pub(crate) struct SlotClock {
    period: f64,
    jitter: f64,
    phase: Vec<f64>,
    jitter_base: u64,
}

impl SlotClock {
    /// Derives the schedule for `n` nodes from the master seed.
    pub fn new(seed: u64, period: f64, jitter: f64, n: usize) -> Self {
        let phase_base = derive_seed(seed, streams::PHASE);
        let phase = (0..n as u64)
            .map(|p| StdRng::seed_from_u64(derive_seed(phase_base, p)).random_range(0.0..1.0))
            .collect();
        SlotClock {
            period,
            jitter,
            phase,
            jitter_base: derive_seed(seed, streams::TIMING),
        }
    }

    /// The absolute time of node `p`'s `k`-th slot.
    pub fn slot_time(&self, p: NodeId, k: u64) -> f64 {
        let u: f64 = split_rng(self.jitter_base, k, u64::from(p.value())).random_range(0.0..1.0);
        (k as f64 + self.phase[p.index()] + self.jitter * (u - 0.5)) * self.period
    }

    /// The first slot of `p` at or after time `from`:
    /// `(slot index, slot time)`.
    ///
    /// Slot times are strictly increasing in `k` (gaps are at least
    /// `period · (1 − jitter) > 0`), so a short forward scan from the
    /// arithmetic lower bound finds it in O(1).
    pub fn next_at(&self, p: NodeId, from: f64) -> (u64, f64) {
        let x = (from / self.period - self.phase[p.index()] - self.jitter).floor();
        let mut k = if x > 0.0 { x as u64 } else { 0 };
        loop {
            let t = self.slot_time(p, k);
            if t >= from {
                return (k, t);
            }
            k += 1;
        }
    }
}

/// Runs `job(0..tasks)` over a scoped work-stealing thread pool and
/// returns the results **in task order** — the schedule cannot leak
/// into the results. With `threads <= 1` (or a single task) the jobs
/// run inline on the calling thread; the two paths are byte-identical
/// because each job sees only its task index.
///
/// This is the one worker-pool loop in the workspace: [`crate::Sweep`]
/// fans seeds over it, the round driver's sharded active-set pass fans
/// node chunks over it, and the traffic plane's batch forwarding pass
/// fans queue shards over it. Note the worker contract: jobs get only
/// shared, immutable access to captured state (`Fn` + `Sync`), so a
/// caller that needs to mutate must split its pass into a read-only
/// examine phase here plus a serial merge of the returned values.
pub fn run_pooled<T, F>(tasks: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || tasks <= 1 {
        return (0..tasks).map(job).collect();
    }
    let workers = threads.min(tasks);
    let results: std::sync::Mutex<Vec<Option<T>>> =
        std::sync::Mutex::new((0..tasks).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                let out = job(i);
                results.lock().expect("pool worker lock")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("pool worker lock")
        .into_iter()
        .map(|r| r.expect("every task index is filled exactly once"))
        .collect()
}

/// Runs `job(i, &mut scratch[i])` for every scratch slot, one scoped
/// worker thread per slot — the allocation-free sibling of
/// [`run_pooled`] for callers that own reusable per-task arenas.
///
/// Where [`run_pooled`] returns freshly allocated per-task values
/// (and pays a `Mutex`-guarded result vector), workers here write
/// directly into the caller's pre-sized scratch slots: in steady state
/// the only cost beyond the job itself is thread spawn, and with a
/// single slot the job runs inline with no cost at all. Slot index
/// order is the task order — the schedule cannot leak into the
/// results, because each worker owns exactly one slot.
pub(crate) fn run_sharded<S, F>(scratch: &mut [S], job: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    if scratch.len() <= 1 {
        for (i, slot) in scratch.iter_mut().enumerate() {
            job(i, slot);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (i, slot) in scratch.iter_mut().enumerate() {
            let job = &job;
            scope.spawn(move || job(i, slot));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_set_insert_remove_collect() {
        let mut s = NodeSet::new(5);
        s.insert(NodeId::new(3));
        s.insert(NodeId::new(1));
        s.insert(NodeId::new(3));
        assert!(s.contains(NodeId::new(3)));
        s.remove(NodeId::new(3));
        assert!(!s.contains(NodeId::new(3)));
        let mut out = Vec::new();
        s.drain_sorted_into(&mut out);
        assert_eq!(out, vec![NodeId::new(1)]);
        assert!(!s.contains(NodeId::new(1)));
    }

    #[test]
    fn node_set_bulk_fill_and_dense_drain() {
        let mut s = NodeSet::new(133);
        s.insert_all();
        assert!(s.contains(NodeId::new(0)) && s.contains(NodeId::new(132)));
        s.remove(NodeId::new(7));
        s.insert(NodeId::new(7));
        s.remove(NodeId::new(70));
        let mut out = Vec::new();
        s.drain_sorted_into(&mut out);
        assert_eq!(out.len(), 132, "all but the removed node");
        assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        assert!(!out.contains(&NodeId::new(70)));
        assert!(!s.contains(NodeId::new(0)), "drain empties the set");
        // The set keeps working through the log path afterwards.
        s.insert(NodeId::new(5));
        s.collect_sorted_into(&mut out);
        assert_eq!(out, vec![NodeId::new(5)]);
    }

    #[test]
    fn node_set_log_grows_once_to_node_count() {
        let mut s = NodeSet::new(5000);
        s.insert(NodeId::new(0));
        let cap = s.list.capacity();
        assert!(cap >= 5000, "first insert reserves the full node count");
        for i in 1..5000 {
            s.insert(NodeId::new(i));
        }
        assert_eq!(s.list.capacity(), cap, "insert storm never reallocates");
    }

    #[test]
    fn node_set_clear_after_bulk_fill() {
        let mut s = NodeSet::new(90);
        s.insert_all();
        s.clear();
        let mut out = Vec::new();
        s.collect_sorted_into(&mut out);
        assert!(out.is_empty());
        assert!(!s.contains(NodeId::new(89)));
    }

    #[test]
    fn bump_epoch_skips_the_sentinel() {
        assert_eq!(bump_epoch(0), 1);
        assert_eq!(bump_epoch(NEVER - 1), 0);
    }

    #[test]
    fn slot_clock_is_monotone_and_stateless() {
        let clock = SlotClock::new(7, 1.0, 0.5, 4);
        let p = NodeId::new(2);
        let mut prev = f64::NEG_INFINITY;
        for k in 0..200 {
            let t = clock.slot_time(p, k);
            assert!(t > prev, "slot {k} not after slot {}", k - 1);
            // Stateless: recomputing any slot gives the same time.
            assert_eq!(t, clock.slot_time(p, k));
            prev = t;
        }
        // Mean spacing is the period.
        let span = clock.slot_time(p, 200) - clock.slot_time(p, 0);
        assert!(
            (span / 200.0 - 1.0).abs() < 0.05,
            "mean gap {}",
            span / 200.0
        );
    }

    #[test]
    fn slot_clock_next_at_finds_the_first_slot() {
        let clock = SlotClock::new(3, 2.0, 0.8, 3);
        let p = NodeId::new(1);
        for probe in [0.0, 0.1, 5.0, 17.3, 400.0] {
            let (k, t) = clock.next_at(p, probe);
            assert!(t >= probe, "slot at {t} before probe {probe}");
            if k > 0 {
                assert!(
                    clock.slot_time(p, k - 1) < probe,
                    "slot {} already satisfied probe {probe}",
                    k - 1
                );
            }
        }
    }

    #[test]
    fn pooled_results_come_back_in_task_order() {
        let serial = run_pooled(37, 1, |i| i * i);
        let pooled = run_pooled(37, 4, |i| i * i);
        assert_eq!(serial, pooled);
        assert_eq!(pooled[5], 25);
        assert!(run_pooled(0, 4, |i| i).is_empty());
    }

    #[test]
    fn sharded_arenas_fill_in_slot_order() {
        for slots in [0usize, 1, 3, 7] {
            let mut scratch = vec![0usize; slots];
            run_sharded(&mut scratch, |i, slot| *slot = i * i + 1);
            let expect: Vec<usize> = (0..slots).map(|i| i * i + 1).collect();
            assert_eq!(scratch, expect, "{slots} slots");
        }
    }
}
