//! Whole-stack reproducibility: every pipeline in the repository is a
//! pure function of its seed. This is what makes the 1000-run
//! experiment averages, the regression tests and the EXPERIMENTS.md
//! numbers meaningful.

use rand::SeedableRng;
use selfstab::prelude::*;

fn pipeline(seed: u64) -> (Vec<NodeId>, Vec<u32>, String) {
    // deploy → DAG-enabled clustering over CSMA → render
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let topo = builders::poisson(200.0, 0.12, &mut rng);
    let gamma = NameSpace::delta_squared(topo.max_degree().max(1));
    let config = ClusterConfig {
        dag: Some(DagConfig {
            gamma,
            variant: DagVariant::Randomized,
        }),
        cache_ttl: 16,
        ..ClusterConfig::default()
    };
    let mut net = Scenario::new(DensityCluster::new(config))
        .medium(SlottedCsma::new(16))
        .topology(topo)
        .seed(seed)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(20).within(20_000))
        .expect_stable("stabilizes");
    let clustering = extract_clustering(net.states()).expect("clean");
    let svg = svg_clustering(net.topology(), &clustering);
    (clustering.heads(), extract_dag_ids(net.states()), svg)
}

#[test]
fn full_pipeline_is_a_function_of_the_seed() {
    let a = pipeline(77);
    let b = pipeline(77);
    assert_eq!(a.0, b.0, "heads differ across identical runs");
    assert_eq!(a.1, b.1, "DAG names differ across identical runs");
    assert_eq!(a.2, b.2, "even the SVG bytes must match");
    let c = pipeline(78);
    assert_ne!(a.1, c.1, "different seeds explore different randomness");
}

#[test]
fn mobility_pipeline_is_deterministic() {
    let run = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builders::poisson(150.0, 0.1, &mut rng);
        let n = topo.len();
        let model = RandomWaypoint::new(n, 0.0..=meters_per_second(5.0), 1.0);
        let mut scenario = MobileScenario::new(topo, model, seed);
        let mut persistence = Vec::new();
        let mut prev = oracle(scenario.topology(), &OracleConfig::default());
        for _ in 0..20 {
            scenario.advance(2.0);
            let next = oracle(scenario.topology(), &OracleConfig::default());
            persistence.push((next.head_persistence_from(&prev) * 1e6) as u64);
            prev = next;
        }
        persistence
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn sweep_parallel_equals_serial_on_oracle_pipelines() {
    // The same experiment through Sweep twice — thread scheduling
    // must not leak into results.
    let experiment = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builders::poisson(120.0, 0.12, &mut rng);
        oracle(&topo, &OracleConfig::default()).head_count()
    };
    let parallel = Sweep::over(24, 9).map(experiment);
    let again = Sweep::over(24, 9).map(experiment);
    let serial = Sweep::over(24, 9).serial().map(experiment);
    assert_eq!(parallel, again);
    assert_eq!(
        parallel, serial,
        "parallel and serial sweeps must agree exactly"
    );
}

#[test]
fn sweep_parallel_equals_serial_on_full_scenario_runs() {
    // Determinism of the whole Scenario → run_to → observe pipeline
    // under the parallel runner: byte-identical stabilization steps,
    // head lists and DAG names for the same seed grid, regardless of
    // scheduling.
    type RunRecord = (Option<u64>, Vec<NodeId>, Vec<u32>);
    let run_grid = |sweep: Sweep| -> Vec<RunRecord> {
        let stop = StopWhen::stable_for(4).within(2000);
        sweep
            .run(
                |seed| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                    let topo = builders::poisson(150.0, 0.12, &mut rng);
                    let gamma = NameSpace::delta_squared(topo.max_degree().max(1));
                    let config = ClusterConfig {
                        dag: Some(DagConfig {
                            gamma,
                            variant: DagVariant::Randomized,
                        }),
                        ..ClusterConfig::default()
                    };
                    Scenario::new(DensityCluster::new(config))
                        .topology(topo)
                        .seed(seed)
                },
                &stop,
                |report, net| {
                    let clustering =
                        extract_clustering(net.states()).expect("stable state is clean");
                    (
                        report.stabilized,
                        clustering.heads(),
                        extract_dag_ids(net.states()),
                    )
                },
            )
            .expect("every scenario builds")
    };
    let parallel = run_grid(Sweep::over(16, 2005));
    let serial = run_grid(Sweep::over(16, 2005).serial());
    assert_eq!(
        parallel, serial,
        "parallel sweep must be byte-identical to the serial loop"
    );
    assert!(
        parallel
            .iter()
            .all(|(stabilized, _, _)| stabilized.is_some()),
        "every seed stabilizes"
    );
}

#[test]
fn forced_shards_replay_the_unsharded_pipeline() {
    // The full deploy → cluster → extract pipeline is a pure function
    // of its seed regardless of how many worker shards the active-set
    // pass uses: the owner-computes partition and ordered merge keep
    // thread scheduling out of the results.
    let run = |shards: Option<usize>| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(64);
        let topo = builders::poisson(150.0, 0.12, &mut rng);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
            .topology(topo)
            .seed(64)
            .build()
            .expect("valid scenario");
        net.set_shards(shards);
        let report = net.run_to(&StopWhen::stable_for(4).within(2000));
        let clustering = extract_clustering(net.states()).expect("clean");
        (report, clustering.heads())
    };
    let baseline = run(Some(1));
    for shards in [2, 4] {
        assert_eq!(baseline, run(Some(shards)), "shards = {shards}");
    }
}

#[test]
fn event_driver_mobility_replays_exactly() {
    // Continuous-time mobility (dynamics ticking at logical-step
    // boundaries) is reproducible from the seed pair.
    let run = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let topo = builders::uniform(60, 0.16, &mut rng);
        let model = RandomWaypoint::new(topo.len(), 0.0..=meters_per_second(10.0), 1.0);
        let dynamics = MobileScenario::new(topo.clone(), model, 3).into_dynamics(2.0);
        let mut driver =
            Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
                .topology(topo)
                .seed(12)
                .mobility(dynamics)
                .build_events(EventConfig::default())
                .expect("valid event scenario");
        driver.run_until_time(35.0);
        (
            driver.topology().edges().collect::<Vec<_>>(),
            driver
                .states()
                .iter()
                .map(|s| s.output())
                .collect::<Vec<_>>(),
            driver.messages_total(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn event_driver_trajectories_replay_exactly() {
    let run = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builders::poisson(100.0, 0.12, &mut rng);
        let mut driver = Scenario::new(DensityCluster::new(ClusterConfig {
            cache_ttl: 10,
            ..ClusterConfig::default()
        }))
        .topology(topo)
        .seed(seed)
        .build_events(EventConfig::default())
        .expect("valid event scenario");
        driver.run_until_time(40.0);
        (
            driver.measured_tau(),
            driver
                .states()
                .iter()
                .map(|s| s.output())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(3), run(3));
}
