//! The cross-driver agreement suite — the headline artifact of the
//! actor driver: **one scenario, three drivers, one answer**.
//!
//! Three claims, in increasing strength:
//!
//! 1. **RoundDriver ≡ EventDriver** byte-identical gated-vs-eager
//!    behavior is pinned elsewhere (`engine_equivalence.rs`); here the
//!    invariant is re-checked through the actor comparison fixtures so
//!    a regression in either driver trips this suite too.
//! 2. **ActorDriver ≡ RoundDriver, byte for byte**, for protocols
//!    whose per-period receives commute (each sender writes its own
//!    cache entry — true of `DensityCluster` and the flooding test
//!    protocols): per-seed frame fates and update draws live on the
//!    same derived streams, so states, outputs, message totals and
//!    `RunReport`s must agree exactly — at **every** thread count,
//!    because arrival-order nondeterminism cannot reach the period
//!    outcome.
//! 3. **ActorDriver ≈ RoundDriver distributionally** in general:
//!    stabilization-time statistics over seed sweeps fall inside the
//!    round-driver reference's Wilson intervals, across thread counts
//!    {1, 2, 4}, media and τ.

use mwn_metrics::wilson_overlap;
use proptest::prelude::*;
use rand::SeedableRng;
use selfstab::prelude::*;

fn event_driven_config() -> ClusterConfig {
    ClusterConfig::default().event_driven()
}

/// Builds the round-driver reference and the actor driver from one
/// scenario recipe and asserts exact agreement end to end: lockstep
/// state trajectories, then a corruption storm, then healed reports.
fn assert_exact_agreement<M, F>(build: F, threads: usize, label: &str)
where
    M: Medium + Sync + Clone,
    F: Fn() -> Scenario<DensityCluster, M>,
{
    let mut net = build().build().expect("round driver builds");
    let mut actors = build().build_actors(threads).expect("actor driver builds");
    for period in 0..30 {
        net.step();
        actors.step();
        assert_eq!(
            net.states(),
            actors.states(),
            "{label}: trajectories diverged at period {period} (threads={threads})"
        );
        assert_eq!(
            net.last_activity(),
            actors.last_activity(),
            "{label}: activity counters diverged at period {period} (threads={threads})"
        );
    }
    let stop = StopWhen::stable_for(4).within(400);
    let net_report = net.run_to(&stop);
    let actor_report = actors.run_to(&stop);
    assert_eq!(net_report, actor_report, "{label}: reports diverged");
    net.corrupt_all();
    actors.corrupt_all();
    let net_healed = net.run_to(&stop);
    let actor_healed = actors.run_to(&stop);
    assert_eq!(net_healed, actor_healed, "{label}: healed reports diverged");
    assert_eq!(net.outputs(), actors.outputs(), "{label}: outputs diverged");
    assert_eq!(
        net.messages_total(),
        actors.messages_total(),
        "{label}: message totals diverged"
    );
}

#[test]
fn actors_equal_rounds_on_perfect_medium() {
    for threads in [1, 2, 4] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3 + threads as u64);
        let topo = builders::uniform(50, 0.17, &mut rng);
        assert_exact_agreement(
            || {
                Scenario::new(DensityCluster::new(event_driven_config()))
                    .topology(topo.clone())
                    .seed(7)
            },
            threads,
            "perfect",
        );
    }
}

#[test]
fn actors_equal_rounds_under_bernoulli_loss() {
    for threads in [1, 2, 4] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let topo = builders::uniform(45, 0.18, &mut rng);
        assert_exact_agreement(
            || {
                Scenario::new(DensityCluster::new(event_driven_config()))
                    .medium(BernoulliLoss::new(0.65))
                    .topology(topo.clone())
                    .seed(4)
            },
            threads,
            "bernoulli",
        );
    }
}

#[test]
fn actors_equal_rounds_under_distance_fading_and_thinning() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let topo = builders::uniform(45, 0.18, &mut rng);
    assert_exact_agreement(
        || {
            Scenario::new(DensityCluster::new(event_driven_config()))
                .medium(DistanceFading::new(2.0, 0.35))
                .topology(topo.clone())
                .seed(2)
        },
        4,
        "fading",
    );
    // Thinned(Perfect) is a proxyable composite: the thinning coin per
    // delivered copy must replay in the same order on both drivers.
    assert_exact_agreement(
        || {
            Scenario::new(DensityCluster::new(event_driven_config()))
                .medium(Thinned::new(PerfectMedium, 0.8))
                .topology(topo.clone())
                .seed(2)
        },
        4,
        "thinned",
    );
}

#[test]
fn actors_equal_rounds_with_scripted_faults() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let topo = builders::uniform(40, 0.19, &mut rng);
    for threads in [1, 4] {
        assert_exact_agreement(
            || {
                let mut plan = FaultPlan::new();
                plan.at(8, Fault::CorruptFraction(0.4))
                    .at(15, Fault::Isolate(NodeId::new(5)))
                    .at(22, Fault::CorruptAll);
                Scenario::new(DensityCluster::new(event_driven_config()))
                    .topology(topo.clone())
                    .seed(6)
                    .faults(plan)
            },
            threads,
            "faults",
        );
    }
}

#[test]
fn actors_equal_rounds_under_mobility() {
    let build = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let topo = builders::uniform(45, 0.18, &mut rng);
        let model = RandomWaypoint::new(topo.len(), 0.0..=meters_per_second(20.0), 0.5);
        let dynamics = MobileScenario::new(topo.clone(), model, 5).into_dynamics(2.0);
        Scenario::new(DensityCluster::new(event_driven_config()))
            .topology(topo)
            .seed(8)
            .mobility(dynamics)
    };
    let mut net = build().build().expect("round driver builds");
    let mut actors = build().build_actors(4).expect("actor driver builds");
    for period in 0..40 {
        net.step();
        actors.step();
        assert_eq!(
            net.topology(),
            actors.topology(),
            "mobility deltas diverged at period {period}"
        );
        assert_eq!(
            net.states(),
            actors.states(),
            "states diverged under mobility at period {period}"
        );
    }
}

/// The distributional leg: over a seed sweep, the proportion of runs
/// stabilizing within a budget — and within the *reference's own
/// stabilization horizon* — must land inside the round driver's 95%
/// Wilson band, at every thread count. For commutative protocols the
/// agreement is exact, so this also certifies the statistical harness
/// itself against a known-zero-divergence baseline.
#[test]
fn stabilization_distributions_fall_inside_wilson_bands() {
    const SEEDS: u64 = 24;
    const Z: f64 = 1.96;
    let topo_for = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + seed);
        builders::uniform(40, 0.19, &mut rng)
    };
    let stop = || StopWhen::stable_for(4).within(300);

    // Reference: round-driver stabilization outcomes per seed.
    let reference: Vec<Option<u64>> = (0..SEEDS)
        .map(|seed| {
            let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
                .medium(BernoulliLoss::new(0.7))
                .topology(topo_for(seed))
                .seed(seed)
                .build()
                .expect("round driver builds");
            net.run_to(&stop()).stabilized
        })
        .collect();
    let ref_successes = reference.iter().filter(|s| s.is_some()).count();
    // The horizon: a generous per-seed bound derived from the
    // reference sample (its max stabilization period, doubled).
    let horizon = reference.iter().flatten().max().copied().unwrap_or(0) * 2 + 8;

    for threads in [1usize, 2, 4] {
        let actor_outcomes: Vec<Option<u64>> = (0..SEEDS)
            .map(|seed| {
                let mut actors = Scenario::new(DensityCluster::new(event_driven_config()))
                    .medium(BernoulliLoss::new(0.7))
                    .topology(topo_for(seed))
                    .seed(seed)
                    .build_actors(threads)
                    .expect("actor driver builds");
                actors.run_to(&stop()).stabilized
            })
            .collect();
        let successes = actor_outcomes.iter().filter(|s| s.is_some()).count();
        assert!(
            wilson_overlap(successes, SEEDS as usize, ref_successes, SEEDS as usize, Z),
            "threads={threads}: actor stabilization proportion {successes}/{SEEDS} \
             is Wilson-incompatible with the reference {ref_successes}/{SEEDS}"
        );
        let within_horizon = actor_outcomes
            .iter()
            .flatten()
            .filter(|&&t| t <= horizon)
            .count();
        assert!(
            wilson_overlap(
                within_horizon,
                SEEDS as usize,
                ref_successes,
                SEEDS as usize,
                Z
            ),
            "threads={threads}: stabilization times escaped the reference \
             horizon {horizon} ({within_horizon}/{SEEDS} vs {ref_successes}/{SEEDS})"
        );
        // Commutative receives ⇒ the distributions are not merely
        // close, they are the same sample.
        assert_eq!(
            actor_outcomes, reference,
            "threads={threads}: per-seed stabilization periods diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized sweep of the exact-agreement claim: seeds ×
    /// topologies × τ × thread counts. The actor fabric must reproduce
    /// the round driver's states, outputs and reports byte for byte.
    #[test]
    fn actor_agreement_sweep(
        n in 30usize..55,
        r in 16u32..21,
        tau_pct in 55u32..96,
        seed in 0u64..1_000_000,
        threads in 1usize..5,
    ) {
        let mut trng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xACE);
        let topo = builders::uniform(n, f64::from(r) / 100.0, &mut trng);
        let build = || {
            Scenario::new(DensityCluster::new(event_driven_config()))
                .medium(BernoulliLoss::new(f64::from(tau_pct) / 100.0))
                .topology(topo.clone())
                .seed(seed)
        };
        let mut net = build().build().expect("round driver builds");
        let mut actors = build().build_actors(threads).expect("actor driver builds");
        let stop = StopWhen::stable_for(3).within(300);
        let net_report = net.run_to(&stop);
        let actor_report = actors.run_to(&stop);
        prop_assert_eq!(net_report, actor_report);
        prop_assert_eq!(net.states(), actors.states());
        prop_assert_eq!(net.messages_total(), actors.messages_total());
    }
}
