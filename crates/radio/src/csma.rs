use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{ContentionStreams, Delivery, Medium, OccupancyView};

/// A slotted CSMA/CA-like medium with hidden terminals and half-duplex
/// radios: τ is *emergent* rather than assumed.
///
/// Each step is divided into `slots` mini-slots. Every sender picks a
/// slot uniformly at random (its randomized backoff). With
/// `carrier_sense` enabled (the CA part), a sender defers — loses its
/// whole step, as a real backoff-overrun would — when a 1-hop neighbor
/// already claimed the same slot; deferral is decided in random order,
/// mimicking who wins the channel race. A receiver `r` hears the frame
/// of sender `s` iff:
///
/// * `s` transmitted in some slot `t`,
/// * no *other* neighbor of `r` transmitted in slot `t` (collision —
///   this includes hidden terminals that `s` could not sense), and
/// * `r` itself did not transmit in slot `t` (half-duplex).
///
/// The paper's hypothesis — a memoryless per-frame success probability
/// ≥ τ > 0 — holds mechanically: with `k` slots and maximum degree δ,
/// a frame copy survives with probability at least
/// `((k-1)/k)^(δ+1) > 0`, independent across steps.
///
/// # Examples
///
/// ```
/// use mwn_graph::builders;
/// use mwn_radio::{measure_tau, SlottedCsma};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let topo = builders::uniform(50, 0.15, &mut rng);
/// let coarse = measure_tau(&mut SlottedCsma::new(4), &topo, 40, &mut rng);
/// let fine = measure_tau(&mut SlottedCsma::new(64), &topo, 40, &mut rng);
/// assert!(fine > coarse, "more slots, fewer collisions");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlottedCsma {
    slots: usize,
    carrier_sense: bool,
}

impl SlottedCsma {
    /// Creates the medium with `slots` mini-slots per step and carrier
    /// sensing enabled.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "need at least one slot per step");
        SlottedCsma {
            slots,
            carrier_sense: true,
        }
    }

    /// Disables carrier sensing (pure slotted-ALOHA behaviour); exposes
    /// the contribution of the CA part in ablation benches.
    pub fn without_carrier_sense(mut self) -> Self {
        self.carrier_sense = false;
        self
    }

    /// Number of mini-slots per step.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whether carrier sensing is enabled.
    pub fn carrier_sense(&self) -> bool {
        self.carrier_sense
    }

    /// Lower bound on the per-frame success probability for a topology
    /// of maximum degree `delta`: every one of the ≤ δ+1 relevant other
    /// radios must have picked a different slot.
    pub fn tau_lower_bound(&self, delta: usize) -> f64 {
        ((self.slots - 1) as f64 / self.slots as f64).powi(delta as i32 + 1)
    }

    /// Marginal transmit probability of an occupied (silent) node of
    /// degree `degree`: with carrier sense it defers when some neighbor
    /// claimed its slot earlier in the channel race — but a neighbor
    /// only *claims* a slot if it transmits itself, so `P` solves the
    /// mean-field fixed point `P = (1 − P/(2·slots))^degree` (each of
    /// the `degree` neighbors blocks with probability `P·1/slots·1/2`:
    /// it transmits, picked the same slot, and drew the earlier turn).
    /// The first-order `(1 − 1/(2·slots))^degree` lets deferred
    /// neighbors block and so underestimates `P` badly under heavy
    /// contention (m = 4, degree ≈ 7: 0.37 vs the true ≈ 0.57),
    /// inflating the folded delivery ratio outside the eager Wilson
    /// band. `(1 − P/(2m))^degree − P` is strictly decreasing in `P`
    /// with a sign change on [0, 1], so bisection to the unique root
    /// is unconditionally convergent (the naive fixed-point iteration
    /// is not when `degree > 2·slots`). Without carrier sense the
    /// phantom always transmits.
    fn phantom_tx_probability(&self, degree: usize) -> f64 {
        if !self.carrier_sense {
            return 1.0;
        }
        let m = self.slots as f64;
        let claims = |p: f64| (1.0 - p / (2.0 * m)).powi(degree as i32);
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if claims(mid) > mid {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

impl Medium for SlottedCsma {
    fn deliver_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        rng: &mut StdRng,
        delivery: &mut Delivery,
    ) {
        let n = topo.len();
        // Slot choice per sender (usize::MAX = not transmitting).
        let mut slot_of = vec![usize::MAX; n];
        // Random contention order for the carrier-sense race.
        let mut order: Vec<usize> = (0..senders.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        for &idx in &order {
            let s = senders[idx];
            let slot = rng.random_range(0..self.slots);
            if self.carrier_sense {
                let busy = topo
                    .neighbors(s)
                    .iter()
                    .any(|&q| slot_of[q.index()] == slot);
                if busy {
                    // Channel sensed busy for the chosen backoff: the
                    // frame is deferred past the step boundary (lost
                    // for this step).
                    continue;
                }
            }
            slot_of[s.index()] = slot;
        }
        // Attempted = every in-range copy from every sender, including
        // those whose frame was deferred by carrier sense.
        for &s in senders {
            delivery.attempted += topo.degree(s);
        }
        // Reception: per receiver and slot, exactly one transmitting
        // neighbor and the receiver itself silent in that slot.
        for &s in senders {
            let slot = slot_of[s.index()];
            if slot == usize::MAX {
                continue;
            }
            for &r in topo.neighbors(s) {
                if slot_of[r.index()] == slot {
                    continue; // half-duplex: r was talking over s
                }
                let collided = topo
                    .neighbors(r)
                    .iter()
                    .any(|&q| q != s && slot_of[q.index()] == slot);
                if !collided {
                    delivery.record(r, s);
                }
            }
        }
    }

    fn gated_contention(&self) -> bool {
        true
    }

    /// Exact contention among the active `senders`, statistical
    /// contention from the occupied population.
    ///
    /// Without carrier sense (slotted ALOHA) transmissions are
    /// independent, so the fold is closed-form and **exact in
    /// marginal**: every occupied `q ∈ N(r) \ {s}` collides with
    /// probability `1/slots` and an occupied receiver is half-duplex
    /// busy with probability `1/slots`, folded into one Bernoulli per
    /// copy off the per-(tick, r, s) stream.
    ///
    /// With carrier sense the channel race correlates everyone within
    /// two hops (earlier winners defer later claimants, deferred nodes
    /// block nobody), and no closed-form per-copy factor reproduces the
    /// eager marginals — first-order folds sit well outside the eager
    /// Wilson band at m = 4. Instead, the occupied nodes whose claims
    /// can actually reach an active frame — those audible to a sender
    /// or to one of its receivers, a cohort bounded by the active
    /// 2-hop neighborhood, *not* by the occupied population — are
    /// materialized for this tick: each draws a slot from its
    /// per-(tick, node) stream and joins the exact channel race next
    /// to the active senders. Occupied radios audible to a cohort
    /// member but outside the cohort cannot be materialized without
    /// walking the whole silent graph; their claims fold into one
    /// pre-deferral Bernoulli per cohort phantom at the mean-field
    /// rate `p_tx(q)/(2·slots)` (a boundary term two hops removed
    /// from any delivery). The quiet path is untouched: no senders,
    /// no cohort, zero draws.
    fn deliver_occupied_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        occupancy: &dyn OccupancyView,
        streams: &ContentionStreams,
        delivery: &mut Delivery,
    ) {
        if senders.is_empty() {
            return; // the quiet path: zero work, zero draws
        }
        let m = self.slots as f64;
        // The fixed-point solve is pure in the degree; memoize it per
        // call so the boundary fold stays O(deg) draws, not O(deg)
        // bisections.
        let mut ptx_cache: Vec<f64> = Vec::new();
        fn ptx(cache: &mut Vec<f64>, medium: &SlottedCsma, degree: usize) -> f64 {
            if cache.len() <= degree {
                cache.resize(degree + 1, f64::NAN);
            }
            if cache[degree].is_nan() {
                cache[degree] = medium.phantom_tx_probability(degree);
            }
            cache[degree]
        }
        // Participants: every active sender, plus (under carrier sense)
        // the materialized occupied cohort. `skip` pre-defers a phantom
        // to its out-of-cohort blockers.
        let mut in_cohort = vec![false; topo.len()];
        let mut participants: Vec<(NodeId, usize, bool)> = Vec::with_capacity(senders.len());
        for &s in senders {
            delivery.attempted += topo.degree(s);
            in_cohort[s.index()] = true;
            let slot = streams.sender(s).random_range(0..self.slots);
            participants.push((s, slot, false));
        }
        if self.carrier_sense {
            let mut phantoms: Vec<NodeId> = Vec::new();
            for &s in senders {
                for &r in topo.neighbors(s) {
                    if !in_cohort[r.index()] && occupancy.is_occupied(r) {
                        in_cohort[r.index()] = true;
                        phantoms.push(r);
                    }
                    for &q in topo.neighbors(r) {
                        if !in_cohort[q.index()] && occupancy.is_occupied(q) {
                            in_cohort[q.index()] = true;
                            phantoms.push(q);
                        }
                    }
                }
            }
            // Canonical order: the race shuffle must not depend on the
            // cohort's discovery order.
            phantoms.sort_unstable();
            for &q in &phantoms {
                let mut rng = streams.sender(q);
                let slot = rng.random_range(0..self.slots);
                let mut survive = 1.0f64;
                for &w in topo.neighbors(q) {
                    if !in_cohort[w.index()] && occupancy.is_occupied(w) {
                        survive *= 1.0 - ptx(&mut ptx_cache, self, topo.degree(w)) / (2.0 * m);
                    }
                }
                let skip = survive < 1.0 && rng.random::<f64>() >= survive;
                participants.push((q, slot, skip));
            }
        }
        // The joint channel race, exactly as in the eager path; the
        // order comes off the round stream.
        let mut slot_of = vec![usize::MAX; topo.len()];
        let mut order: Vec<usize> = (0..participants.len()).collect();
        let mut race = streams.round();
        for i in (1..order.len()).rev() {
            let j = race.random_range(0..=i);
            order.swap(i, j);
        }
        for &idx in &order {
            let (p, slot, skip) = participants[idx];
            if skip {
                continue;
            }
            if self.carrier_sense {
                let busy = topo
                    .neighbors(p)
                    .iter()
                    .any(|&q| slot_of[q.index()] == slot);
                if busy {
                    continue;
                }
            }
            slot_of[p.index()] = slot;
        }
        // Reception for the active frames only: exact against every
        // materialized slot claim; under ALOHA the occupied population
        // folds into one Bernoulli per copy instead.
        for &s in senders {
            let slot = slot_of[s.index()];
            if slot == usize::MAX {
                continue;
            }
            'copies: for &r in topo.neighbors(s) {
                if slot_of[r.index()] == slot {
                    continue; // half-duplex: r was talking over s
                }
                let mut survive = if !self.carrier_sense && occupancy.is_occupied(r) {
                    1.0 - 1.0 / m // ALOHA half-duplex phantom receiver
                } else {
                    1.0
                };
                for &q in topo.neighbors(r) {
                    if q == s {
                        continue;
                    }
                    if slot_of[q.index()] == slot {
                        continue 'copies; // exact collision
                    }
                    if !self.carrier_sense && occupancy.is_occupied(q) {
                        survive *= 1.0 - 1.0 / m;
                    }
                }
                if survive >= 1.0 || streams.copy(r, s).random::<f64>() < survive {
                    delivery.record(r, s);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "slotted-csma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_tau;
    use mwn_graph::{builders, Topology};
    use rand::SeedableRng;

    #[test]
    fn lone_sender_is_always_heard() {
        let topo = builders::star(10);
        let mut rng = StdRng::seed_from_u64(4);
        let mut medium = SlottedCsma::new(8);
        for _ in 0..20 {
            let d = medium.deliver(&topo, &[NodeId::new(0)], &mut rng);
            assert_eq!(d.delivered, 9, "no contention, no loss");
        }
    }

    #[test]
    fn hidden_terminals_collide_at_common_receiver() {
        // 0 - 1 - 2: 0 and 2 cannot hear each other (hidden terminals),
        // so with a single slot their frames always collide at 1.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut medium = SlottedCsma::new(1);
        let d = medium.deliver(&topo, &[NodeId::new(0), NodeId::new(2)], &mut rng);
        assert!(d.heard[1].is_empty(), "both frames must collide at node 1");
    }

    #[test]
    fn half_duplex_blocks_reception_in_same_slot() {
        // Two linked nodes, one slot: both transmit in that slot, so
        // neither can hear the other.
        let topo = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut medium = SlottedCsma::new(1).without_carrier_sense();
        let d = medium.deliver(&topo, &[NodeId::new(0), NodeId::new(1)], &mut rng);
        assert_eq!(d.delivered, 0);
    }

    #[test]
    fn carrier_sense_defers_audible_conflicts() {
        // With carrier sense and one slot, two linked senders cannot
        // both transmit: one defers, the other is received... but the
        // receiver is the deferring node itself, which stays silent and
        // therefore hears the winner.
        let topo = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut medium = SlottedCsma::new(1);
        let d = medium.deliver(&topo, &[NodeId::new(0), NodeId::new(1)], &mut rng);
        assert_eq!(d.delivered, 1, "exactly the channel-race winner is heard");
    }

    #[test]
    fn more_slots_improve_tau() {
        let mut rng = StdRng::seed_from_u64(8);
        let topo = builders::uniform(80, 0.15, &mut rng);
        let t4 = measure_tau(&mut SlottedCsma::new(4), &topo, 30, &mut rng);
        let t64 = measure_tau(&mut SlottedCsma::new(64), &topo, 30, &mut rng);
        assert!(t64 > t4, "τ(64 slots)={t64} vs τ(4 slots)={t4}");
    }

    #[test]
    fn tau_exceeds_analytic_lower_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let topo = builders::uniform(60, 0.12, &mut rng);
        let medium = SlottedCsma::new(32);
        let bound = medium.tau_lower_bound(topo.max_degree());
        let mut m = medium;
        let tau = measure_tau(&mut m, &topo, 50, &mut rng);
        assert!(tau >= bound, "measured {tau} < bound {bound}");
        assert!(bound > 0.0);
    }

    #[test]
    fn carrier_sense_beats_aloha_on_dense_graphs() {
        let mut rng = StdRng::seed_from_u64(10);
        let topo = builders::complete(20);
        let with = measure_tau(&mut SlottedCsma::new(16), &topo, 60, &mut rng);
        let without = measure_tau(
            &mut SlottedCsma::new(16).without_carrier_sense(),
            &topo,
            60,
            &mut rng,
        );
        assert!(
            with > without,
            "carrier sense should help: with={with} without={without}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_rejected() {
        let _ = SlottedCsma::new(0);
    }
}
