//! Hierarchical routing over the clustering — the application the
//! paper builds clusters *for* ("specific routing protocols are used
//! within and between the clusters", Section 1).
//!
//! The scheme is the textbook two-level one:
//!
//! * **intra-cluster**: members of one cluster route directly inside
//!   the cluster's induced subgraph (local routing state only);
//! * **inter-cluster**: the source climbs to its cluster-head, the
//!   packet follows a head-overlay route — each overlay hop expanded
//!   inside the union of the two adjacent clusters — and finally
//!   descends from the destination's head.
//!
//! Consumers (the traffic plane, the routing bench) program against
//! the [`RoutingView`] trait — "give me a route / next hop toward
//! `dst` on this topology" — so hierarchical routes
//! ([`HierarchicalRoutes`]) and the flat shortest-path baseline
//! ([`FlatRoutes`]) are interchangeable. The price of hierarchy is
//! path *stretch* (hierarchical hops divided by the shortest-path
//! hops); [`mean_stretch`] measures it, which is how the routing
//! bench compares election metrics.

use mwn_graph::{traversal, NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::hierarchy::head_overlay;
use crate::Clustering;

/// Next-hop routing over a topology: the contract between the
/// stabilized control plane and anything that forwards data.
///
/// A view owns its routing *state* (clustering, overlays, …) but not
/// the topology — the caller passes the topology at lookup time so one
/// view can be queried against the live, churning graph it was built
/// from. After churn, routes a view answers with may no longer be
/// walks in the current topology; forwarding code must re-check each
/// edge at its forwarding instant and rebuild the view from fresh
/// protocol outputs when lookups go stale.
pub trait RoutingView {
    /// Full route from `src` to `dst`, inclusive of both endpoints, or
    /// `None` when the view knows no route.
    fn route(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>>;

    /// The neighbor `at` should forward to next for `dst`. `None` when
    /// unroutable; `at == dst` also answers `None` (nothing to do).
    fn next_hop(&self, topo: &Topology, at: NodeId, dst: NodeId) -> Option<NodeId> {
        self.route(topo, at, dst)?.get(1).copied()
    }
}

/// The two-level hierarchical routing state, owned: a snapshot of the
/// clustering plus the derived head overlay. Build one per stable
/// clustering (e.g. from [`crate::extract_clustering`]) and query it
/// through [`RoutingView`].
///
/// # Examples
///
/// ```
/// use mwn_cluster::{oracle, HierarchicalRoutes, OracleConfig, RoutingView};
/// use mwn_graph::{builders, NodeId};
///
/// let topo = builders::grid(6, 6, 0.25);
/// let routes = HierarchicalRoutes::new(&topo, oracle(&topo, &OracleConfig::default()));
/// let route = routes.route(&topo, NodeId::new(0), NodeId::new(35)).unwrap();
/// assert_eq!(route.first(), Some(&NodeId::new(0)));
/// assert_eq!(route.last(), Some(&NodeId::new(35)));
/// ```
#[derive(Clone, Debug)]
pub struct HierarchicalRoutes {
    clustering: Clustering,
    heads: Vec<NodeId>,
    overlay: Topology,
}

impl HierarchicalRoutes {
    /// Prepares routing state (the head overlay) for a stable
    /// clustering of `topo`.
    ///
    /// # Panics
    ///
    /// Panics when the clustering's head claims are inconsistent (a
    /// node names a head that has not elected itself) — snapshots
    /// taken mid-convergence can look like that; use
    /// [`HierarchicalRoutes::try_new`] for those.
    pub fn new(topo: &Topology, clustering: Clustering) -> Self {
        Self::try_new(topo, clustering).expect("consistent head claims in a stable clustering")
    }

    /// Like [`HierarchicalRoutes::new`], but answers `None` instead of
    /// panicking when the clustering is not internally consistent —
    /// the right constructor for view factories sampling a protocol
    /// that may still be converging.
    pub fn try_new(topo: &Topology, clustering: Clustering) -> Option<Self> {
        let consistent = (0..topo.len() as u32)
            .map(NodeId::new)
            .all(|p| clustering.is_head(clustering.head(p)));
        if !consistent {
            return None;
        }
        let (heads, overlay) = head_overlay(topo, &clustering);
        Some(HierarchicalRoutes {
            clustering,
            heads,
            overlay,
        })
    }

    /// The clustering snapshot this view routes over.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    fn overlay_id(&self, head: NodeId) -> Option<u32> {
        self.heads.binary_search(&head).ok().map(|i| i as u32)
    }

    /// Routes inside one cluster: shortest path among that cluster's
    /// members.
    fn route_within(
        &self,
        topo: &Topology,
        cluster: NodeId,
        from: NodeId,
        to: NodeId,
    ) -> Option<Vec<NodeId>> {
        traversal::bfs_path_filtered(topo, from, to, |v| self.clustering.head(v) == cluster)
    }
}

impl RoutingView for HierarchicalRoutes {
    /// Computes the hierarchical route from `src` to `dst`, inclusive.
    ///
    /// Returns `None` when no route exists (different components) —
    /// also when the hierarchy's overlay is partitioned, which cannot
    /// happen for a stable clustering of a connected graph.
    fn route(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let h_src = self.clustering.head(src);
        let h_dst = self.clustering.head(dst);
        if h_src == h_dst {
            return self.route_within(topo, h_src, src, dst);
        }
        // Overlay path between the two heads.
        let o_src = NodeId::new(self.overlay_id(h_src)?);
        let o_dst = NodeId::new(self.overlay_id(h_dst)?);
        let overlay_path = traversal::bfs_path_filtered(&self.overlay, o_src, o_dst, |_| true)?;
        // Expand: climb to the head, hop cluster to cluster, descend.
        let mut route = self.route_within(topo, h_src, src, h_src)?;
        for pair in overlay_path.windows(2) {
            let a = self.heads[pair[0].index()];
            let b = self.heads[pair[1].index()];
            let segment = traversal::bfs_path_filtered(topo, *route.last()?, b, |v| {
                let h = self.clustering.head(v);
                h == a || h == b
            })?;
            route.extend_from_slice(&segment[1..]);
        }
        let tail = self.route_within(topo, h_dst, *route.last()?, dst)?;
        route.extend_from_slice(&tail[1..]);
        Some(route)
    }
}

/// The flat shortest-path baseline: global BFS, no hierarchy, no
/// locality — what the clustered scheme's stretch is measured against.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlatRoutes;

impl RoutingView for FlatRoutes {
    fn route(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        traversal::bfs_path_filtered(topo, src, dst, |_| true)
    }
}

/// A router over one topology + clustering — the borrow-based
/// convenience wrapper around [`HierarchicalRoutes`] for callers that
/// route against a fixed topology snapshot.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{oracle, ClusterRouter, OracleConfig};
/// use mwn_graph::{builders, NodeId};
///
/// let topo = builders::grid(6, 6, 0.25);
/// let clustering = oracle(&topo, &OracleConfig::default());
/// let router = ClusterRouter::new(&topo, &clustering);
/// let route = router.route(NodeId::new(0), NodeId::new(35)).unwrap();
/// assert_eq!(route.first(), Some(&NodeId::new(0)));
/// assert_eq!(route.last(), Some(&NodeId::new(35)));
/// ```
#[derive(Debug)]
pub struct ClusterRouter<'a> {
    topo: &'a Topology,
    routes: HierarchicalRoutes,
}

impl<'a> ClusterRouter<'a> {
    /// Prepares routing state (the head overlay) for a stable
    /// clustering.
    pub fn new(topo: &'a Topology, clustering: &Clustering) -> Self {
        ClusterRouter {
            topo,
            routes: HierarchicalRoutes::new(topo, clustering.clone()),
        }
    }

    /// Computes the hierarchical route from `src` to `dst`, inclusive.
    ///
    /// Returns `None` when no route exists (different components) —
    /// also when the hierarchy's overlay is partitioned, which cannot
    /// happen for a stable clustering of a connected graph.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.routes.route(self.topo, src, dst)
    }

    /// Route length in hops (`route.len() - 1`), or `None` if
    /// unroutable.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        Some(self.route(src, dst)?.len() - 1)
    }

    /// Validates that `route` is a real walk in the topology.
    pub fn is_valid_route(&self, route: &[NodeId]) -> bool {
        route.windows(2).all(|w| self.topo.has_edge(w[0], w[1]))
    }
}

/// Mean stretch (view hops / shortest hops) of an arbitrary
/// [`RoutingView`] over `samples` random connected pairs. Pairs in
/// different components are skipped; returns `None` when no valid
/// pair was sampled.
pub fn mean_stretch_over<R: RoutingView>(
    topo: &Topology,
    view: &R,
    samples: usize,
    rng: &mut StdRng,
) -> Option<f64> {
    if topo.len() < 2 {
        return None;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for _ in 0..samples {
        let src = NodeId::new(rng.random_range(0..topo.len() as u32));
        let dst = NodeId::new(rng.random_range(0..topo.len() as u32));
        if src == dst {
            continue;
        }
        let direct = traversal::bfs_distances(topo, src)[dst.index()];
        let Some(direct) = direct else { continue };
        let Some(route) = view.route(topo, src, dst) else {
            continue;
        };
        total += (route.len() - 1) as f64 / f64::from(direct.max(1));
        count += 1;
    }
    (count > 0).then(|| total / count as f64)
}

/// Mean stretch of the two-level hierarchical scheme for `clustering`
/// — [`mean_stretch_over`] specialized to [`HierarchicalRoutes`].
pub fn mean_stretch(
    topo: &Topology,
    clustering: &Clustering,
    samples: usize,
    rng: &mut StdRng,
) -> Option<f64> {
    let view = HierarchicalRoutes::new(topo, clustering.clone());
    mean_stretch_over(topo, &view, samples, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{oracle, OracleConfig};
    use mwn_graph::builders;
    use rand::SeedableRng;

    fn field(seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        builders::uniform(250, 0.11, &mut rng)
    }

    #[test]
    fn routes_are_real_walks_with_correct_endpoints() {
        let topo = field(1);
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        let mut rng = StdRng::seed_from_u64(1);
        let mut routed = 0;
        for _ in 0..200 {
            let src = NodeId::new(rng.random_range(0..topo.len() as u32));
            let dst = NodeId::new(rng.random_range(0..topo.len() as u32));
            let direct = traversal::bfs_distances(&topo, src)[dst.index()];
            match router.route(src, dst) {
                Some(route) => {
                    assert_eq!(route.first(), Some(&src));
                    assert_eq!(route.last(), Some(&dst));
                    assert!(router.is_valid_route(&route), "{src}→{dst} not a walk");
                    assert!(direct.is_some(), "routed an unreachable pair");
                    routed += 1;
                }
                None => assert!(direct.is_none() || src == dst, "missed a reachable pair"),
            }
        }
        assert!(routed > 100, "only {routed} pairs routed");
    }

    #[test]
    fn next_hop_agrees_with_route_second_entry() {
        let topo = field(4);
        let clustering = oracle(&topo, &OracleConfig::default());
        let view = HierarchicalRoutes::new(&topo, clustering);
        let mut rng = StdRng::seed_from_u64(4);
        let mut checked = 0;
        for _ in 0..100 {
            let src = NodeId::new(rng.random_range(0..topo.len() as u32));
            let dst = NodeId::new(rng.random_range(0..topo.len() as u32));
            if src == dst {
                continue;
            }
            if let Some(route) = view.route(&topo, src, dst) {
                let hop = view.next_hop(&topo, src, dst).expect("route implies hop");
                assert_eq!(Some(&hop), route.get(1));
                assert!(topo.has_edge(src, hop), "next hop is a neighbor");
                checked += 1;
            }
        }
        assert!(checked > 50, "only {checked} pairs checked");
    }

    #[test]
    fn flat_routes_are_shortest_paths() {
        let topo = field(5);
        let view = FlatRoutes;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let src = NodeId::new(rng.random_range(0..topo.len() as u32));
            let dst = NodeId::new(rng.random_range(0..topo.len() as u32));
            let direct = traversal::bfs_distances(&topo, src)[dst.index()];
            match (view.route(&topo, src, dst), direct) {
                (Some(route), Some(d)) => assert_eq!(route.len() as u32 - 1, d),
                (None, None) => {}
                (r, d) => panic!("flat route {r:?} vs bfs {d:?}"),
            }
        }
        // Flat stretch is exactly 1 by construction.
        let mut rng = StdRng::seed_from_u64(6);
        let s = mean_stretch_over(&topo, &view, 100, &mut rng).expect("pairs");
        assert!((s - 1.0).abs() < 1e-12, "flat stretch {s} != 1");
    }

    #[test]
    fn intra_cluster_routes_are_shortest_within_the_cluster() {
        let topo = builders::complete(8);
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        // One cluster, complete graph: every route is one hop.
        assert_eq!(router.hops(NodeId::new(1), NodeId::new(5)), Some(1));
    }

    #[test]
    fn self_route_is_trivial() {
        let topo = builders::line(4);
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        assert_eq!(
            router.route(NodeId::new(2), NodeId::new(2)),
            Some(vec![NodeId::new(2)])
        );
        assert_eq!(router.hops(NodeId::new(2), NodeId::new(2)), Some(0));
        let view = HierarchicalRoutes::new(&topo, clustering);
        assert_eq!(view.next_hop(&topo, NodeId::new(2), NodeId::new(2)), None);
    }

    #[test]
    fn cross_component_pairs_are_unroutable() {
        let mut topo = builders::line(6);
        topo.remove_edge(NodeId::new(2), NodeId::new(3));
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        assert_eq!(router.route(NodeId::new(0), NodeId::new(5)), None);
    }

    #[test]
    fn stretch_is_at_least_one_and_moderate() {
        let topo = field(2);
        let clustering = oracle(&topo, &OracleConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let stretch = mean_stretch(&topo, &clustering, 300, &mut rng).expect("pairs exist");
        assert!(stretch >= 1.0, "stretch {stretch} below 1");
        assert!(
            stretch < 3.0,
            "hierarchical routing should not triple path lengths: {stretch}"
        );
    }

    #[test]
    fn stretch_on_tiny_topologies() {
        let topo = Topology::empty(1);
        let clustering = oracle(&topo, &OracleConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(mean_stretch(&topo, &clustering, 10, &mut rng), None);
    }

    use mwn_graph::Topology;
}
