//! Regenerates the paper's Section 5 mobility study (head persistence
//! per 2-second window).

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    eprintln!(
        "mobility: scale {} (use --full for 15-minute runs)",
        scale.runs
    );
    let result = mwn_bench::mobility::run(scale);
    println!("{}", mwn_bench::mobility::render(&result));
    println!();
    let sweep = mwn_bench::mobility::run_speed_sweep(scale);
    println!("{}", mwn_bench::mobility::render_speed_sweep(&sweep));
}
