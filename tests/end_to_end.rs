//! End-to-end integration: the full protocol stack (graph + radio +
//! sim + cluster) across topology families, media and configurations,
//! verified against the centralized oracle and the legitimacy
//! predicate.

use rand::SeedableRng;
use selfstab::prelude::*;

fn topologies() -> Vec<(&'static str, Topology)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    vec![
        ("line", builders::line(12)),
        ("ring", builders::ring(15)),
        ("star", builders::star(10)),
        ("grid", builders::grid(7, 7, 0.22)),
        ("poisson", builders::poisson(250.0, 0.12, &mut rng)),
        ("uniform-dense", builders::uniform(60, 0.3, &mut rng)),
        ("two-components", {
            let mut t = builders::uniform(40, 0.12, &mut rng);
            // Split the square: remove all edges crossing x = 0.5.
            let cross: Vec<(NodeId, NodeId)> = t
                .edges()
                .filter(|&(u, v)| {
                    let a = t.position(u).unwrap().x;
                    let b = t.position(v).unwrap().x;
                    (a < 0.5) != (b < 0.5)
                })
                .collect();
            for (u, v) in cross {
                t.remove_edge(u, v);
            }
            t
        }),
    ]
}

#[test]
fn every_topology_stabilizes_to_the_oracle() {
    let stop = StopWhen::stable_for(3).within(500);
    for (name, topo) in topologies() {
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(42)
            .build()
            .expect("valid scenario");
        let report = net.run_to(&stop);
        assert!(report.is_stable(), "{name}: did not stabilize");
        let got = extract_clustering(net.states()).expect("clean");
        let want = oracle(net.topology(), &OracleConfig::default());
        assert_eq!(got, want, "{name}");
        check_legitimate(&net).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn every_configuration_stabilizes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let topo = builders::uniform(80, 0.16, &mut rng);
    let gamma = NameSpace::delta_squared(topo.max_degree());
    let configs = [
        ("basic", ClusterConfig::default()),
        (
            "incumbency",
            ClusterConfig {
                order: OrderKind::Stable,
                ..ClusterConfig::default()
            },
        ),
        (
            "fusion",
            ClusterConfig {
                rule: HeadRule::Fusion,
                ..ClusterConfig::default()
            },
        ),
        (
            "dag-randomized",
            ClusterConfig {
                dag: Some(DagConfig {
                    gamma,
                    variant: DagVariant::Randomized,
                }),
                ..ClusterConfig::default()
            },
        ),
        (
            "everything",
            ClusterConfig {
                order: OrderKind::Stable,
                rule: HeadRule::Fusion,
                dag: Some(DagConfig {
                    gamma,
                    variant: DagVariant::SmallestIdRedraws,
                }),
                ..ClusterConfig::default()
            },
        ),
        (
            "degree-metric",
            ClusterConfig {
                metric: MetricKind::Degree,
                ..ClusterConfig::default()
            },
        ),
    ];
    let stop = StopWhen::stable_for(5).within(2000);
    for (name, config) in configs {
        let mut net = Scenario::new(DensityCluster::new(config))
            .topology(topo.clone())
            .seed(7)
            .validate(move |t| config.validate_for(t))
            .build()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = net.run_to(&stop);
        assert!(report.is_stable(), "{name}: did not stabilize");
        let clustering = extract_clustering(net.states()).expect("clean");
        assert!(clustering.head_count() >= 1, "{name}");
        check_legitimate(&net).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn fusion_separates_heads_by_three_hops_end_to_end() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let topo = builders::uniform(120, 0.14, &mut rng);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig {
        rule: HeadRule::Fusion,
        ..ClusterConfig::default()
    }))
    .topology(topo)
    .seed(9)
    .build()
    .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(5).within(1000))
        .expect_stable("stabilizes");
    let clustering = extract_clustering(net.states()).unwrap();
    for h in clustering.heads() {
        for q in net.topology().two_hop_neighborhood(h) {
            assert!(!clustering.is_head(q), "heads {h} and {q} within 2 hops");
        }
    }
}

#[test]
fn disconnected_components_cluster_independently() {
    let mut topo = builders::line(9);
    topo.remove_edge(NodeId::new(4), NodeId::new(5));
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo)
        .seed(3)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(3).within(200))
        .expect_stable("stabilizes");
    let clustering = extract_clustering(net.states()).unwrap();
    // Heads on both sides of the cut.
    let left = (0..5).map(NodeId::new).any(|p| clustering.is_head(p));
    let right = (5..9).map(NodeId::new).any(|p| clustering.is_head(p));
    assert!(left && right);
    // No head claim crosses the cut.
    for p in (0..5).map(NodeId::new) {
        assert!(clustering.head(p).value() < 5);
    }
    for p in (5..9).map(NodeId::new) {
        assert!(clustering.head(p).value() >= 5);
    }
}

#[test]
fn statistics_pipeline_runs_over_many_seeds() {
    // graph → sim → cluster → metrics, fanned out over threads.
    let stop = StopWhen::stable_for(3).within(500);
    let head_counts = Sweep::over(16, 5)
        .run(
            |seed| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let topo = builders::poisson(200.0, 0.12, &mut rng);
                Scenario::new(DensityCluster::new(ClusterConfig::default()))
                    .topology(topo)
                    .seed(seed)
            },
            &stop,
            |report, net| {
                assert!(report.is_stable(), "stabilizes");
                let clustering = extract_clustering(net.states()).unwrap();
                clustering.head_count() as f64
            },
        )
        .expect("every scenario builds");
    let stats: RunningStats = head_counts.into_iter().collect();
    assert_eq!(stats.count(), 16);
    assert!(stats.mean() > 1.0, "mean clusters {}", stats.mean());
}

#[test]
fn viz_renders_stable_clusterings() {
    let topo = builders::grid(6, 6, 0.25);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo)
        .seed(4)
        .build()
        .expect("valid scenario");
    net.run(20);
    let clustering = extract_clustering(net.states()).unwrap();
    let svg = svg_clustering(net.topology(), &clustering);
    assert_eq!(svg.matches("<circle").count(), 36);
    let art = ascii_grid_clustering(&clustering, 6, 6);
    assert_eq!(art.lines().count(), 6);
}
