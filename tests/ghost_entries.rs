//! Regression pin for the [`FreshnessPolicy::EventDriven`] **ghost
//! entry gap** — the documented trade-off of silent freshness.
//!
//! Under `EventDriven` freshness the update pass only purges cache
//! entries whose timestamp lies in the *future* (`last_seen > now`):
//! live entries must survive arbitrarily long silence, so there is no
//! wall-clock sweep to kill a **past-stamped** forgery. A corrupted
//! ghost entry naming a node that is not (and never was) a neighbor
//! therefore survives until update pressure from the real neighborhood
//! overwrites whatever the ghost influenced — the entry itself is never
//! evicted.
//!
//! These tests pin the *current, documented* behavior on both the
//! round driver and the actor driver, so the future purge PR flips
//! exactly one assertion per driver
//! (`past_stamped_ghost_survives_silence*`) instead of discovering the
//! gap by accident.

use mwn_cluster::NeighborEntry;
use selfstab::prelude::*;

fn event_driven_config() -> ClusterConfig {
    ClusterConfig::default().event_driven()
}

/// The forged cache entry: a never-existing neighbor with a timestamp
/// `stamp` and an absurd density claim.
fn ghost(stamp: u64) -> NeighborEntry {
    NeighborEntry {
        last_seen: stamp,
        dag_id: 0,
        density: Density::integer(99),
        head: NodeId::new(999),
        view: Vec::new(),
    }
}

#[test]
fn future_stamped_ghost_is_purged_immediately() {
    // The half of the contract that DOES hold under EventDriven: a
    // forged timestamp from the future is swept on the next update.
    let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
        .topology(builders::line(3))
        .seed(13)
        .build()
        .expect("valid scenario");
    net.run(5);
    net.state_mut(NodeId::new(0))
        .cache
        .insert(NodeId::new(999), ghost(u64::MAX));
    net.run(2);
    assert!(
        !net.state(NodeId::new(0))
            .cache
            .contains_key(&NodeId::new(999)),
        "future-stamped ghost must be expired"
    );
}

#[test]
fn past_stamped_ghost_survives_silence() {
    // The gap itself: `retain(|_, e| e.last_seen <= now)` keeps any
    // entry whose stamp is in the past, and silence means no other
    // mechanism ever touches it. When a purge lands (e.g. evicting
    // cache keys outside the adjacency list), flip this assertion.
    let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
        .topology(builders::line(3))
        .seed(13)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(4).within(200))
        .expect_stable("clean stabilization before the forgery");
    let stamp = net.now().saturating_sub(1);
    net.state_mut(NodeId::new(0))
        .cache
        .insert(NodeId::new(999), ghost(stamp));
    // Long quiet stretch: neighbors re-beacon (the mutation reset the
    // node's reception row), states re-settle — the ghost stays.
    net.run(100);
    assert!(
        net.state(NodeId::new(0))
            .cache
            .contains_key(&NodeId::new(999)),
        "documented gap: past-stamped ghosts survive silence — if this \
         fails, the purge PR landed and this test should assert eviction"
    );
}

#[test]
fn past_stamped_ghost_survives_silence_on_the_actor_driver() {
    // Same pin on the actor fabric: the gap is a protocol property, so
    // every driver must exhibit it identically.
    let mut actors = Scenario::new(DensityCluster::new(event_driven_config()))
        .topology(builders::line(3))
        .seed(13)
        .build_actors(2)
        .expect("valid actor scenario");
    actors
        .run_to(&StopWhen::stable_for(4).within(200))
        .expect_stable("clean stabilization before the forgery");
    let stamp = actors.now().saturating_sub(1);
    actors
        .state_mut(NodeId::new(0))
        .cache
        .insert(NodeId::new(999), ghost(stamp));
    actors.run(100);
    assert!(
        actors
            .state(NodeId::new(0))
            .cache
            .contains_key(&NodeId::new(999)),
        "the ghost gap must be driver-independent"
    );
}

#[test]
fn ttl_sweep_still_purges_past_stamped_ghosts() {
    // The legacy policy has no such gap: the TTL sweep kills any entry
    // older than cache_ttl, forged or not — the control group showing
    // the gap is specific to EventDriven freshness.
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(builders::line(3))
        .seed(13)
        .build()
        .expect("valid scenario");
    net.run(10);
    let stamp = net.now().saturating_sub(1);
    net.state_mut(NodeId::new(0))
        .cache
        .insert(NodeId::new(999), ghost(stamp));
    net.run(ClusterConfig::default().cache_ttl + 2);
    assert!(
        !net.state(NodeId::new(0))
            .cache
            .contains_key(&NodeId::new(999)),
        "TtlSweep must expire stale entries regardless of origin"
    );
}
