use std::fmt;

use serde::{Deserialize, Serialize};

/// A node identifier: a unique, totally ordered name for a network node.
///
/// The paper assumes "each node has a unique identifier"; identifiers
/// also serve as the final tie-breaker of the cluster-head election
/// (`"the smallest identity is used to decide"`, Section 3). Nodes are
/// numbered densely from `0`, which lets the simulator index per-node
/// state by `NodeId`.
///
/// # Examples
///
/// ```
/// use mwn_graph::NodeId;
///
/// let a = NodeId::new(3);
/// let b = NodeId::new(7);
/// assert!(a < b);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw identifier value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize` suitable for indexing
    /// per-node state vectors.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(0) < NodeId::new(1));
        assert!(NodeId::new(41) < NodeId::new(42));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }

    #[test]
    fn conversions_round_trip() {
        let id = NodeId::from(9u32);
        assert_eq!(u32::from(id), 9);
        assert_eq!(id.index(), 9);
        assert_eq!(id.value(), 9);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", NodeId::new(12)), "n12");
        assert_eq!(format!("{:?}", NodeId::new(12)), "n12");
    }
}
