//! Scheduled fault injection: declarative "at step k, break X" plans
//! for reproducible robustness experiments.
//!
//! Self-stabilization's fault model is the strongest possible — the
//! adversary may place the system in *any* configuration — but real
//! experiments need orchestrated, reproducible sequences of faults. A
//! [`FaultPlan`] is a sorted script of [`Fault`]s executed while a
//! [`Network`] runs.

use mwn_graph::{NodeId, Topology};
use mwn_radio::Medium;

use crate::{Corruptible, Network};

/// One scheduled fault.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Corrupt the state of one node arbitrarily.
    CorruptNode(NodeId),
    /// Corrupt every node (restart the self-stabilization clock).
    CorruptAll,
    /// Corrupt approximately this fraction of nodes.
    CorruptFraction(f64),
    /// Sever all links of a node (its radio goes dark).
    Isolate(NodeId),
    /// Replace the topology (e.g. restore links, or apply a mobility
    /// snapshot). Must keep the node count.
    SetTopology(Topology),
}

/// A reproducible script of faults, each fired *before* the given step
/// executes.
///
/// # Examples
///
/// ```
/// use mwn_graph::{builders, NodeId};
/// use mwn_radio::PerfectMedium;
/// use mwn_sim::{Fault, FaultPlan, Network, Protocol};
/// use rand::rngs::StdRng;
///
/// # struct Noop;
/// # impl Protocol for Noop {
/// #     type State = u32; type Beacon = u32;
/// #     fn init(&self, n: NodeId, _: &mut StdRng) -> u32 { n.value() }
/// #     fn beacon(&self, _: NodeId, s: &u32) -> u32 { *s }
/// #     fn receive(&self, _: NodeId, s: &mut u32, _: NodeId, b: &u32, _: u64) { *s = (*s).max(*b); }
/// #     fn update(&self, n: NodeId, s: &mut u32, _: u64, _: &mut StdRng) { *s = (*s).max(n.value()); }
/// # }
/// # impl mwn_sim::Corruptible for Noop {
/// #     fn corrupt(&self, _: NodeId, s: &mut u32, _: &mut StdRng) { *s = 0; }
/// # }
/// let mut plan = FaultPlan::new();
/// plan.at(5, Fault::CorruptAll).at(10, Fault::Isolate(NodeId::new(0)));
/// let mut net = Network::new(Noop, PerfectMedium, builders::line(4), 1);
/// plan.run(&mut net, 20);
/// assert_eq!(net.now(), 20);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(u64, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `fault` to fire right before step `step` executes.
    /// Multiple faults may share a step; they fire in insertion order.
    pub fn at(&mut self, step: u64, fault: Fault) -> &mut Self {
        self.events.push((step, fault));
        self.events.sort_by_key(|(s, _)| *s);
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Consumes the plan into its sorted `(step, fault)` script — the
    /// form [`crate::Scenario`] installs into the driver.
    pub(crate) fn into_events(self) -> Vec<(u64, Fault)> {
        self.events
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Runs `net` until `until_step`, firing scheduled faults along the
    /// way. Faults scheduled before the current step fire immediately;
    /// faults scheduled at or after `until_step` do not fire.
    pub fn run<P, M>(&self, net: &mut Network<P, M>, until_step: u64)
    where
        P: Corruptible,
        M: Medium,
    {
        let mut pending = self.events.iter().peekable();
        // Skip/fire anything already due.
        while net.now() < until_step {
            while let Some((step, fault)) = pending.peek() {
                if *step <= net.now() {
                    apply(net, fault);
                    pending.next();
                } else {
                    break;
                }
            }
            net.step();
        }
        // Faults due exactly at the final step boundary still fire (the
        // caller observes the post-fault state).
        while let Some((step, fault)) = pending.peek() {
            if *step <= net.now() {
                apply(net, fault);
                pending.next();
            } else {
                break;
            }
        }
    }
}

fn apply<P, M>(net: &mut Network<P, M>, fault: &Fault)
where
    P: Corruptible,
    M: Medium,
{
    match fault {
        Fault::CorruptNode(p) => net.corrupt(*p),
        Fault::CorruptAll => net.corrupt_all(),
        Fault::CorruptFraction(f) => {
            net.corrupt_fraction(*f);
        }
        Fault::Isolate(p) => net.isolate(*p),
        Fault::SetTopology(topo) => net
            .set_topology(topo.clone())
            .expect("scripted topology keeps the node count"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol;
    use mwn_graph::builders;
    use mwn_radio::PerfectMedium;
    use rand::rngs::StdRng;

    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            *state = (*state).max(node.value());
        }
    }
    impl Corruptible for MaxFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }

    #[test]
    fn faults_fire_in_order_and_heal() {
        let mut plan = FaultPlan::new();
        plan.at(10, Fault::CorruptAll);
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(5), 1);
        plan.run(&mut net, 30);
        assert_eq!(net.now(), 30);
        // 20 steps after the corruption: flood reconverged.
        assert!(net.states().iter().all(|&s| s == 4));
    }

    #[test]
    fn isolation_fault_cuts_traffic() {
        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)));
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(5), 2);
        plan.run(&mut net, 20);
        assert_eq!(*net.state(NodeId::new(0)), 1, "max id cannot cross the cut");
    }

    #[test]
    fn set_topology_fault_restores_links() {
        let topo = builders::line(5);
        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)))
            .at(10, Fault::SetTopology(topo.clone()));
        let mut net = Network::new(MaxFlood, PerfectMedium, topo, 3);
        plan.run(&mut net, 30);
        assert!(net.states().iter().all(|&s| s == 4), "healed after re-link");
    }

    #[test]
    fn fraction_and_single_node_faults() {
        let mut plan = FaultPlan::new();
        plan.at(5, Fault::CorruptFraction(0.5))
            .at(6, Fault::CorruptNode(NodeId::new(0)));
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::ring(8), 4);
        plan.run(&mut net, 40);
        assert!(net.states().iter().all(|&s| s == 7));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_plan_is_plain_run() {
        let plan = FaultPlan::new();
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(3), 5);
        plan.run(&mut net, 7);
        assert_eq!(net.now(), 7);
        assert!(plan.is_empty());
    }
}
