use std::collections::BTreeMap;

use mwn_graph::{traversal, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// A cluster assignment: for every node, its parent `F(p)` and its
/// cluster-head `H(p)`.
///
/// Cluster-heads are exactly the nodes with `H(p) = p` (which also have
/// `F(p) = p`). Every other node joined a parent; parent chains climb
/// the `≺` order and end at the head. Under the Section 4.3 fusion
/// rule, an absorbed local maximum has a *logical* parent two radio
/// hops away (the head that absorbed its cluster, reached through a
/// shared neighbor) — depth computations account for the extra hop.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{oracle, OracleConfig};
/// use mwn_graph::builders::fig1_example;
///
/// let topo = fig1_example();
/// let clustering = oracle(&topo, &OracleConfig::default());
/// assert_eq!(clustering.head_count(), 2); // paper: clusters around h and j
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    parent: Vec<NodeId>,
    head: Vec<NodeId>,
}

impl Clustering {
    /// Builds a clustering from parallel parent/head vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or reference nodes
    /// out of range.
    pub fn new(parent: Vec<NodeId>, head: Vec<NodeId>) -> Self {
        assert_eq!(parent.len(), head.len(), "parallel vectors required");
        let n = parent.len();
        for v in parent.iter().chain(head.iter()) {
            assert!(v.index() < n, "node {v} out of range");
        }
        Clustering { parent, head }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The parent `F(p)`.
    pub fn parent(&self, p: NodeId) -> NodeId {
        self.parent[p.index()]
    }

    /// The cluster-head `H(p)`.
    pub fn head(&self, p: NodeId) -> NodeId {
        self.head[p.index()]
    }

    /// Whether `p` elected itself (`H(p) = p`).
    pub fn is_head(&self, p: NodeId) -> bool {
        self.head[p.index()] == p
    }

    /// All cluster-heads, sorted by id.
    pub fn heads(&self) -> Vec<NodeId> {
        (0..self.len() as u32)
            .map(NodeId::new)
            .filter(|&p| self.is_head(p))
            .collect()
    }

    /// Number of clusters — the paper's "number of cluster-heads per
    /// surface unit" when deployed in the unit square.
    pub fn head_count(&self) -> usize {
        (0..self.len() as u32)
            .map(NodeId::new)
            .filter(|&p| self.is_head(p))
            .count()
    }

    /// Clusters as `(head, sorted members)` pairs (members include the
    /// head), sorted by head id. Nodes whose head claim dangles (claims
    /// a non-head node — possible only in non-stabilized snapshots) are
    /// grouped under the claimed head anyway.
    pub fn clusters(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut map: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for i in 0..self.len() as u32 {
            let p = NodeId::new(i);
            map.entry(self.head(p)).or_default().push(p);
        }
        map.into_iter().collect()
    }

    /// Membership vector: `true` for nodes in the cluster of `head`.
    pub fn members_of(&self, head: NodeId) -> Vec<NodeId> {
        (0..self.len() as u32)
            .map(NodeId::new)
            .filter(|&p| self.head(p) == head)
            .collect()
    }

    /// Depth of `p` in its cluster tree, in **radio hops** along the
    /// parent chain (0 for heads). A parent that is not a 1-neighbor in
    /// `topo` (the fusion rule's logical 2-hop edge) counts as 2 hops.
    ///
    /// Returns `None` if the parent chain does not reach the claimed
    /// head within `n` links (a cycle or a dangling claim — impossible
    /// in stabilized configurations, possible in transient snapshots).
    pub fn depth_in_hops(&self, topo: &Topology, p: NodeId) -> Option<u32> {
        let mut cur = p;
        let mut hops = 0u32;
        let mut remaining = self.len() + 1;
        while cur != self.head(p) {
            let next = self.parent(cur);
            if next == cur || remaining == 0 {
                return None; // stuck before reaching the head
            }
            hops += if topo.has_edge(cur, next) { 1 } else { 2 };
            cur = next;
            remaining -= 1;
        }
        Some(hops)
    }

    /// The paper's "clusterization tree length" for one cluster: the
    /// maximum depth (in radio hops) of any member of `head`'s cluster.
    /// `None` if any member's chain is broken.
    pub fn tree_length(&self, topo: &Topology, head: NodeId) -> Option<u32> {
        self.members_of(head)
            .into_iter()
            .map(|p| self.depth_in_hops(topo, p))
            .try_fold(0u32, |acc, d| d.map(|d| acc.max(d)))
    }

    /// Mean tree length over all clusters; `None` if the clustering has
    /// no nodes or a broken chain.
    pub fn mean_tree_length(&self, topo: &Topology) -> Option<f64> {
        let heads = self.heads();
        if heads.is_empty() {
            return None;
        }
        let mut total = 0u64;
        for h in &heads {
            total += u64::from(self.tree_length(topo, *h)?);
        }
        Some(total as f64 / heads.len() as f64)
    }

    /// The paper's cluster-head eccentricity `e(H(u)/C) =
    /// max_{v ∈ C(u)} d(H(u), v)` in hops, measured inside the
    /// cluster's induced subgraph. Members unreachable inside the
    /// cluster (only possible in non-stabilized snapshots) are skipped.
    pub fn head_eccentricity(&self, topo: &Topology, head: NodeId) -> u32 {
        let dist = traversal::bfs_distances_filtered(topo, head, |v| self.head(v) == head);
        self.members_of(head)
            .into_iter()
            .filter_map(|p| dist[p.index()])
            .max()
            .unwrap_or(0)
    }

    /// Mean head eccentricity over all clusters; `None` when empty.
    pub fn mean_head_eccentricity(&self, topo: &Topology) -> Option<f64> {
        let heads = self.heads();
        if heads.is_empty() {
            return None;
        }
        let total: u64 = heads
            .iter()
            .map(|&h| u64::from(self.head_eccentricity(topo, h)))
            .sum();
        Some(total as f64 / heads.len() as f64)
    }

    /// Mean number of nodes per cluster.
    pub fn mean_cluster_size(&self) -> Option<f64> {
        let heads = self.head_count();
        if heads == 0 {
            None
        } else {
            Some(self.len() as f64 / heads as f64)
        }
    }

    /// Fraction of the cluster-heads of `before` that are still
    /// cluster-heads in `self` — the paper's mobility-stability metric
    /// ("percentage of cluster-heads which remained cluster-heads").
    /// Returns 1.0 when `before` has no heads.
    ///
    /// # Panics
    ///
    /// Panics if the two clusterings cover different node counts.
    pub fn head_persistence_from(&self, before: &Clustering) -> f64 {
        assert_eq!(self.len(), before.len(), "same node set required");
        let prev = before.heads();
        if prev.is_empty() {
            return 1.0;
        }
        let kept = prev.iter().filter(|&&h| self.is_head(h)).count();
        kept as f64 / prev.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0 ← 1 ← 2 (chain into head 0) and singleton 3.
    fn simple() -> Clustering {
        Clustering::new(
            vec![id(0), id(0), id(1), id(3)],
            vec![id(0), id(0), id(0), id(3)],
        )
    }

    #[test]
    fn heads_and_clusters() {
        let c = simple();
        assert_eq!(c.heads(), vec![id(0), id(3)]);
        assert_eq!(c.head_count(), 2);
        let clusters = c.clusters();
        assert_eq!(clusters[0].0, id(0));
        assert_eq!(clusters[0].1, vec![id(0), id(1), id(2)]);
        assert_eq!(clusters[1].1, vec![id(3)]);
        assert_eq!(c.mean_cluster_size(), Some(2.0));
    }

    #[test]
    fn depth_counts_parent_hops() {
        let c = simple();
        let topo = builders::line(4); // 0-1-2-3: all parent links are edges
        assert_eq!(c.depth_in_hops(&topo, id(0)), Some(0));
        assert_eq!(c.depth_in_hops(&topo, id(1)), Some(1));
        assert_eq!(c.depth_in_hops(&topo, id(2)), Some(2));
        assert_eq!(c.tree_length(&topo, id(0)), Some(2));
        assert_eq!(c.tree_length(&topo, id(3)), Some(0));
        assert_eq!(c.mean_tree_length(&topo), Some(1.0));
    }

    #[test]
    fn fusion_edge_counts_two_hops() {
        // Node 2's parent is node 0, two hops away on the line: the
        // logical fusion edge counts double.
        let topo = builders::line(3);
        let c = Clustering::new(vec![id(0), id(0), id(0)], vec![id(0), id(0), id(0)]);
        assert_eq!(c.depth_in_hops(&topo, id(2)), Some(2));
    }

    #[test]
    fn broken_chain_is_detected() {
        // 0 and 1 point at each other but claim head 2: a cycle.
        let c = Clustering::new(vec![id(1), id(0), id(2)], vec![id(2), id(2), id(2)]);
        let topo = builders::line(3);
        assert_eq!(c.depth_in_hops(&topo, id(0)), None);
        assert_eq!(c.tree_length(&topo, id(2)), None);
    }

    #[test]
    fn eccentricity_inside_cluster() {
        // Line 0-1-2-3, all one cluster headed by 0.
        let topo = builders::line(4);
        let c = Clustering::new(vec![id(0), id(0), id(1), id(2)], vec![id(0); 4]);
        assert_eq!(c.head_eccentricity(&topo, id(0)), 3);
        assert_eq!(c.mean_head_eccentricity(&topo), Some(3.0));
    }

    #[test]
    fn eccentricity_does_not_shortcut_through_other_clusters() {
        // Ring of 4: cluster {0,1,3} headed by 0, cluster {2} headed by 2.
        // Inside the cluster, 1 and 3 are adjacent to 0 → ecc 1.
        let topo = builders::ring(4);
        let c = Clustering::new(
            vec![id(0), id(0), id(2), id(0)],
            vec![id(0), id(0), id(2), id(0)],
        );
        assert_eq!(c.head_eccentricity(&topo, id(0)), 1);
    }

    #[test]
    fn head_persistence() {
        let before = simple(); // heads {0, 3}
        let after = Clustering::new(
            vec![id(0), id(0), id(1), id(0)],
            vec![id(0), id(0), id(0), id(0)],
        ); // heads {0}
        assert_eq!(after.head_persistence_from(&before), 0.5);
        assert_eq!(before.head_persistence_from(&before), 1.0);
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::new(vec![], vec![]);
        assert!(c.is_empty());
        assert_eq!(c.head_count(), 0);
        assert_eq!(c.mean_cluster_size(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Clustering::new(vec![id(5)], vec![id(0)]);
    }
}
