//! The gated-contention agreement suite: **gated CSMA ≡ eager CSMA,
//! distributionally**.
//!
//! Contention-coupled media cannot be gated byte-identically (muting a
//! silent sender changes everyone else's collision draws), so the
//! statistical-occupancy contract makes a weaker, still falsifiable
//! claim: folding the silent population into the collision draws — as
//! per-copy Bernoulli phantoms (ALOHA, capture) or a materialized
//! local cohort in the channel race (carrier sense) — reproduces the
//! *distribution* of every observable the paper reports. This suite pins that claim with
//! two-sample Wilson bands ([`wilson_overlap`]) over seed sweeps, per
//! cell of the {medium} × {contention level / τ} × {clock} grid:
//!
//! 1. **Delivery ratio** — the sharpest check, at the medium level:
//!    with half the population active and half occupied, the active
//!    frames' pooled delivery ratio under the statistical fold must
//!    match the same senders' ratio in an eager round where the other
//!    half *really* transmits. (Whole-run pooled ratios are *not*
//!    comparable: the entire point of gating is that the gated run
//!    never sends most of the eager run's frames, so the two
//!    populations differ by construction.)
//! 2. **Stabilization time**: the fraction of seeds stabilizing within
//!    a fixed budget must agree, per cell, on both clocks.
//! 3. **Cluster structure**: the pooled fraction of nodes electing
//!    themselves cluster-head at the end of the run must agree.
//!
//! Slot counts span the paper's τ ∈ [0.55, 0.95] contention range
//! (few slots → heavy contention, many slots → light), and both the
//! synchronous round clock and the continuous event clock are covered.

use mwn_metrics::wilson_overlap;
use rand::SeedableRng;
use selfstab::prelude::*;

const Z: f64 = 1.96;
/// The medium-level marginal leg pools per-copy outcomes, but copies
/// within one round share a single channel-race configuration, so the
/// binomial Wilson bands are narrower than the true sampling spread by
/// an (unknown) design effect. A wider quantile absorbs it; the
/// systematic model error this leg exists to catch is an order of
/// magnitude larger than the band either way.
const Z_MARGINAL: f64 = 3.0;

fn event_driven_config() -> ClusterConfig {
    ClusterConfig::default().event_driven()
}

fn topo_for(seed: u64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC5AA ^ seed);
    builders::uniform(42, 0.2, &mut rng)
}

/// What one protocol run contributes to a cell's pooled comparisons.
#[derive(Clone, Copy, Debug, Default)]
struct RunStats {
    stabilized: bool,
    heads: usize,
    nodes: usize,
}

/// Asserts the Wilson-band agreements between a gated and an eager
/// sample of the same protocol cell.
fn assert_cell_agreement(label: &str, gated: &[RunStats], eager: &[RunStats]) {
    let pool = |runs: &[RunStats]| {
        runs.iter().fold((0usize, 0usize, 0usize), |acc, r| {
            (
                acc.0 + usize::from(r.stabilized),
                acc.1 + r.heads,
                acc.2 + r.nodes,
            )
        })
    };
    let (g_stab, g_heads, g_nodes) = pool(gated);
    let (e_stab, e_heads, e_nodes) = pool(eager);
    assert!(
        wilson_overlap(g_stab, gated.len(), e_stab, eager.len(), Z),
        "{label}: stabilization proportions diverged \
         (gated {g_stab}/{} vs eager {e_stab}/{})",
        gated.len(),
        eager.len()
    );
    assert!(
        wilson_overlap(g_heads, g_nodes, e_heads, e_nodes, Z),
        "{label}: cluster-head proportions diverged \
         (gated {g_heads}/{g_nodes} vs eager {e_heads}/{e_nodes})"
    );
}

/// One round-clock run to output stability (or the step budget).
fn run_round<M: Medium>(medium: M, seed: u64, eager: bool) -> RunStats {
    let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
        .medium(medium)
        .topology(topo_for(seed))
        .seed(seed)
        .build()
        .expect("valid scenario");
    net.set_eager(eager);
    assert_eq!(
        net.is_gated(),
        !eager,
        "gated contention must enable round-driver gating"
    );
    let stabilized = net
        .run_to(&StopWhen::stable_for(6).within(400))
        .stabilized
        .is_some();
    let heads = net
        .topology()
        .nodes()
        .filter(|&p| net.state(p).head == p)
        .count();
    RunStats {
        stabilized,
        heads,
        nodes: net.topology().len(),
    }
}

/// One event-clock run: gated and eager twins both use the medium
/// channel (gating only decides whether silent beacons are scheduled
/// at all), so the same distributional claim applies.
fn run_event<M: Medium>(medium: M, seed: u64, eager: bool) -> RunStats {
    let mut driver = Scenario::new(DensityCluster::new(event_driven_config()))
        .medium(medium)
        .topology(topo_for(seed))
        .seed(seed)
        .build_events(EventConfig::default())
        .expect("valid scenario");
    driver.set_eager(eager);
    assert_eq!(
        driver.is_gated(),
        !eager,
        "gated contention must enable event-driver gating"
    );
    let stabilized = driver.run_until_output_stable(1.0, 8, 250.0).is_some();
    let heads = driver
        .topology()
        .nodes()
        .filter(|&p| driver.state(p).head == p)
        .count();
    RunStats {
        stabilized,
        heads,
        nodes: driver.topology().len(),
    }
}

/// Fans a cell out over seeds with [`Sweep`], gated and eager twins on
/// identical derived seeds.
fn sweep_cell<M, F, R>(
    runs: usize,
    base_seed: u64,
    medium: F,
    run: R,
) -> (Vec<RunStats>, Vec<RunStats>)
where
    M: Medium,
    F: Fn() -> M + Sync,
    R: Fn(M, u64, bool) -> RunStats + Sync,
{
    let sweep = Sweep::over(runs, base_seed);
    let gated = sweep.map(|seed| run(medium(), seed, false));
    let eager = sweep.map(|seed| run(medium(), seed, true));
    (gated, eager)
}

/// The delivery-ratio leg, on identical frame populations: the even
/// nodes transmit, the odd nodes are silent — *really* transmitting in
/// the eager reference, statistically occupied in the gated sample —
/// and the even senders' pooled per-copy delivery ratio must fall in
/// one Wilson band across both.
fn assert_active_marginals_agree<M: Medium>(label: &str, mut medium: M, rounds: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF01D);
    let topo = builders::uniform(60, 0.2, &mut rng);
    let active: Vec<NodeId> = topo.nodes().filter(|p| p.index() % 2 == 0).collect();
    let all: Vec<NodeId> = topo.nodes().collect();
    let mut occupancy = Occupancy::new(topo.len());
    for p in topo.nodes().filter(|p| p.index() % 2 == 1) {
        occupancy.occupy(p, &topo);
    }

    let mut gated = (0u64, 0u64); // (delivered, attempted) for active
    let mut out = selfstab::radio::Delivery::empty(topo.len());
    for tick in 0..rounds {
        let streams = ContentionStreams::new(3, 5, tick);
        out.reset(topo.len());
        medium.deliver_occupied_into(&topo, &active, &occupancy, &streams, &mut out);
        gated.0 += out.delivered as u64;
        gated.1 += out.attempted as u64;
    }

    let mut eager = (0u64, 0u64);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xEA6E);
    for _ in 0..rounds {
        out.reset(topo.len());
        medium.deliver_into(&topo, &all, &mut rng, &mut out);
        for r in topo.nodes() {
            eager.0 += out.heard[r.index()]
                .iter()
                .filter(|s| s.index() % 2 == 0)
                .count() as u64;
        }
    }
    // Attempted copies of the active half are deterministic: their
    // total degree, per round.
    eager.1 = rounds * active.iter().map(|&s| topo.degree(s) as u64).sum::<u64>();
    assert_eq!(gated.1, eager.1, "{label}: active populations must match");

    assert!(
        wilson_overlap(
            gated.0 as usize,
            gated.1 as usize,
            eager.0 as usize,
            eager.1 as usize,
            Z_MARGINAL
        ),
        "{label}: active-sender delivery ratios diverged \
         (gated {}/{} = {:.4} vs eager {}/{} = {:.4})",
        gated.0,
        gated.1,
        gated.0 as f64 / gated.1 as f64,
        eager.0,
        eager.1,
        eager.0 as f64 / eager.1 as f64
    );
}

#[test]
fn statistical_fold_matches_eager_delivery_marginals() {
    for slots in [4usize, 8, 16] {
        assert_active_marginals_agree(
            &format!("slotted-csma/slots={slots}"),
            SlottedCsma::new(slots),
            200,
        );
    }
    assert_active_marginals_agree("capture-csma", CaptureCsma::new(8, 1.5), 200);
    assert_active_marginals_agree(
        "slotted-aloha/slots=8",
        SlottedCsma::new(8).without_carrier_sense(),
        200,
    );
}

#[test]
fn round_clock_slotted_csma_agrees_across_contention_levels() {
    // Slot counts bracket the paper's τ range: 4 slots is heavy
    // contention (τ near the low end), 16 slots light (τ near 0.95).
    for slots in [4usize, 16] {
        let (gated, eager) =
            sweep_cell(16, 7 + slots as u64, || SlottedCsma::new(slots), run_round);
        assert_cell_agreement(&format!("round/slotted-csma/slots={slots}"), &gated, &eager);
    }
}

#[test]
fn round_clock_capture_csma_agrees() {
    let (gated, eager) = sweep_cell(16, 23, || CaptureCsma::new(8, 1.5), run_round);
    assert_cell_agreement("round/capture-csma", &gated, &eager);
}

#[test]
fn event_clock_slotted_csma_agrees() {
    for slots in [4usize, 16] {
        let (gated, eager) =
            sweep_cell(10, 37 + slots as u64, || SlottedCsma::new(slots), run_event);
        assert_cell_agreement(&format!("event/slotted-csma/slots={slots}"), &gated, &eager);
    }
}

#[test]
fn event_clock_capture_csma_agrees() {
    let (gated, eager) = sweep_cell(10, 41, || CaptureCsma::new(8, 1.5), run_event);
    assert_cell_agreement("event/capture-csma", &gated, &eager);
}

#[test]
fn gated_csma_is_totally_silent_after_stabilization() {
    // The point of the whole exercise: a stabilized gated-CSMA network
    // runs quiet steps at zero messages, zero frames, zero guards —
    // where the eager fallback used to re-broadcast every beacon every
    // step forever.
    let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
        .medium(SlottedCsma::new(8))
        .topology(topo_for(99))
        .seed(99)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(10).within(800))
        .expect_stable("CSMA run stabilizes");
    // A few more steps may drain the last pending beacons (quiet
    // output does not instantly imply every neighbor caught up).
    net.run(5);
    let msgs = net.messages_total();
    for _ in 0..50 {
        net.step();
        let a = net.last_activity();
        assert_eq!(a.senders, 0, "quiet step must broadcast nothing");
        assert_eq!(a.frames_attempted, 0);
        assert_eq!(a.updates, 0, "quiet step must run no guards");
    }
    assert_eq!(net.messages_total(), msgs);
    // And every node is statistically occupied, so the phantom fold
    // would still cost nothing: zero senders short-circuits the draw.
    let occ = net.occupancy().expect("gated CSMA maintains occupancy");
    assert_eq!(occ.total(), net.topology().len());
}
