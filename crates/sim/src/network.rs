use mwn_graph::{NodeId, Topology};
use mwn_radio::Medium;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::rng::{derive_seed, node_streams};
use crate::scenario::TopologyDynamics;
use crate::stop::{RunReport, StopWhen};
use crate::{Corruptible, Fault, Observable, Protocol, SimError, StabilityTracker};

/// The boxed corruption hook installed by [`crate::Scenario::faults`]:
/// it captures the [`Corruptible`] capability so scripted faults can
/// fire inside [`Network::step`] without bounding every driver method.
pub(crate) type Corruptor<P> =
    Box<dyn Fn(&P, NodeId, &mut <P as Protocol>::State, &mut StdRng) + Send + Sync>;

/// The synchronous round driver: one call to [`Network::step`] is one
/// of the paper's Δ(τ) "steps" (Section 5).
///
/// Within a step, in order:
///
/// 1. if the scenario attached mobility dynamics, the topology moves;
/// 2. scripted faults due at this step fire;
/// 3. every node takes a snapshot of its shared variables
///    ([`Protocol::beacon`]) — simultaneous, so information moves at
///    most one hop per step, exactly as in the paper's Table 2;
/// 4. the [`Medium`] decides which frame copies arrive;
/// 5. receivers process arrivals ([`Protocol::receive`]);
/// 6. every node executes its enabled guarded assignments
///    ([`Protocol::update`]).
///
/// All randomness comes from per-node streams, one medium stream and
/// one fault stream, all derived from the constructor seed: runs are
/// fully reproducible, and fault injection never perturbs frame
/// delivery.
///
/// Networks are normally built through [`crate::Scenario`]; the
/// constructor and the closure-projection run methods remain available
/// as the low-level interface.
pub struct Network<P: Protocol, M> {
    protocol: P,
    medium: M,
    topo: Topology,
    states: Vec<P::State>,
    node_rngs: Vec<StdRng>,
    medium_rng: StdRng,
    fault_rng: StdRng,
    step: u64,
    /// Every node broadcasts each round; cached to avoid re-collecting.
    senders: Vec<NodeId>,
    /// Per-step beacon snapshot, reused across steps.
    beacon_buf: Vec<P::Beacon>,
    /// Scenario-scripted faults, fired inside [`Network::step`].
    scripted: Vec<(u64, Fault)>,
    next_scripted: usize,
    corruptor: Option<Corruptor<P>>,
    dynamics: Option<Box<dyn TopologyDynamics + Send>>,
}

impl<P: Protocol, M> std::fmt::Debug for Network<P, M>
where
    P: std::fmt::Debug,
    M: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("protocol", &self.protocol)
            .field("medium", &self.medium)
            .field("topo", &self.topo)
            .field("states", &self.states)
            .field("step", &self.step)
            .field("scripted", &self.scripted.len())
            .field("dynamics", &self.dynamics.is_some())
            .finish_non_exhaustive()
    }
}

impl<P: Protocol, M: Medium> Network<P, M> {
    /// Creates a network of cold-start nodes over `topo`.
    pub fn new(protocol: P, medium: M, topo: Topology, seed: u64) -> Self {
        let mut node_rngs = node_streams(seed, topo.len());
        let states = topo
            .nodes()
            .map(|p| protocol.init(p, &mut node_rngs[p.index()]))
            .collect();
        let senders = topo.nodes().collect();
        Network {
            protocol,
            medium,
            topo,
            states,
            node_rngs,
            medium_rng: StdRng::seed_from_u64(derive_seed(seed, u64::MAX)),
            fault_rng: StdRng::seed_from_u64(derive_seed(seed, u64::MAX - 2)),
            step: 0,
            senders,
            beacon_buf: Vec::new(),
            scripted: Vec::new(),
            next_scripted: 0,
            corruptor: None,
            dynamics: None,
        }
    }

    pub(crate) fn install_script(
        &mut self,
        scripted: Vec<(u64, Fault)>,
        corruptor: Option<Corruptor<P>>,
    ) {
        self.scripted = scripted;
        self.next_scripted = 0;
        self.corruptor = corruptor;
    }

    pub(crate) fn install_dynamics(&mut self, dynamics: Box<dyn TopologyDynamics + Send>) {
        self.dynamics = Some(dynamics);
    }

    /// Detaches any topology dynamics attached by
    /// [`crate::Scenario::mobility`] — "the nodes stop moving" — so
    /// the protocol can settle on the final topology. Returns whether
    /// dynamics were attached.
    pub fn stop_dynamics(&mut self) -> bool {
        self.dynamics.take().is_some()
    }

    fn apply_dynamics(&mut self) {
        if let Some(dynamics) = &mut self.dynamics {
            if let Some(topo) = dynamics.next_topology(self.step) {
                assert_eq!(
                    topo.len(),
                    self.topo.len(),
                    "topology dynamics must preserve the node count"
                );
                // clone_from reuses the driver's existing adjacency
                // buffers: no per-step allocation in steady state.
                self.topo.clone_from(topo);
            }
        }
    }

    fn corrupt_scripted(&mut self, p: NodeId) {
        let corruptor = self
            .corruptor
            .as_ref()
            .expect("Scenario::faults installs the corruption hook");
        corruptor(
            &self.protocol,
            p,
            &mut self.states[p.index()],
            &mut self.node_rngs[p.index()],
        );
    }

    /// Deterministically picks ≈ `fraction` of the nodes from the
    /// dedicated fault stream.
    fn pick_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        use rand::Rng;
        self.topo
            .nodes()
            .filter(|_| self.fault_rng.random_bool(fraction.clamp(0.0, 1.0)))
            .collect()
    }

    fn fire_scripted(&mut self) {
        while self.next_scripted < self.scripted.len()
            && self.scripted[self.next_scripted].0 <= self.step
        {
            let fault = self.scripted[self.next_scripted].1.clone();
            self.next_scripted += 1;
            match &fault {
                Fault::CorruptNode(p) => self.corrupt_scripted(*p),
                Fault::CorruptAll => {
                    for p in self.topo.nodes().collect::<Vec<_>>() {
                        self.corrupt_scripted(p);
                    }
                }
                Fault::CorruptFraction(f) => {
                    for p in self.pick_fraction(*f) {
                        self.corrupt_scripted(p);
                    }
                }
                Fault::Isolate(p) => self.isolate(*p),
                Fault::SetTopology(topo) => self
                    .set_topology(topo.clone())
                    .expect("scripted topology keeps the node count"),
            }
        }
    }

    /// Executes one synchronous step; returns the new step count.
    pub fn step(&mut self) -> u64 {
        self.apply_dynamics();
        self.fire_scripted();
        self.beacon_buf.clear();
        for i in 0..self.states.len() {
            self.beacon_buf
                .push(self.protocol.beacon(NodeId::new(i as u32), &self.states[i]));
        }
        let delivery = self
            .medium
            .deliver(&self.topo, &self.senders, &mut self.medium_rng);
        for r in self.topo.nodes() {
            for &s in &delivery.heard[r.index()] {
                self.protocol.receive(
                    r,
                    &mut self.states[r.index()],
                    s,
                    &self.beacon_buf[s.index()],
                    self.step,
                );
            }
        }
        for p in self.topo.nodes() {
            self.protocol.update(
                p,
                &mut self.states[p.index()],
                self.step,
                &mut self.node_rngs[p.index()],
            );
        }
        self.step += 1;
        self.step
    }

    /// Runs `steps` synchronous steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Low-level: runs until the projection of every node state is
    /// unchanged for `quiet` consecutive steps, or the absolute step
    /// count reaches `max_steps`.
    ///
    /// Returns `Some(step)` — the step count after which the projection
    /// last changed (the *stabilization time* in steps) — or `None` on
    /// timeout. Prefer [`Network::run_to`] with
    /// [`StopWhen::stable_for`], which uses the protocol's canonical
    /// [`Observable`] projection instead of a caller-supplied closure.
    pub fn run_until_stable<K, F>(
        &mut self,
        mut project: F,
        quiet: u64,
        max_steps: u64,
    ) -> Option<u64>
    where
        K: PartialEq + Clone,
        F: FnMut(NodeId, &P::State) -> K,
    {
        let mut tracker = StabilityTracker::new(quiet);
        let mut buf: Vec<K> = Vec::with_capacity(self.states.len());
        let mut snapshot = |states: &[P::State], buf: &mut Vec<K>| {
            buf.clear();
            buf.extend(
                states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| project(NodeId::new(i as u32), s)),
            );
        };
        snapshot(&self.states, &mut buf);
        tracker.observe_slice(self.step, &buf);
        while self.step < max_steps {
            self.step();
            snapshot(&self.states, &mut buf);
            if tracker.observe_slice(self.step, &buf) {
                return Some(tracker.last_change());
            }
        }
        None
    }

    /// Low-level: runs until `pred` holds (checked after each step), or
    /// the absolute step count reaches `max_steps`. Returns the step
    /// count at which the predicate first held. Prefer
    /// [`Network::run_to`] with [`StopWhen::predicate`].
    pub fn run_until<F>(&mut self, mut pred: F, max_steps: u64) -> Option<u64>
    where
        F: FnMut(&Self) -> bool,
    {
        if pred(self) {
            return Some(self.step);
        }
        while self.step < max_steps {
            self.step();
            if pred(self) {
                return Some(self.step);
            }
        }
        None
    }

    /// Current step count.
    pub fn now(&self) -> u64 {
        self.step
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Replaces the topology (same node count), e.g. after a mobility
    /// tick moved nodes. States are preserved: the protocol must cope
    /// with neighbors appearing and disappearing — that is the point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeCountMismatch`] if the node count
    /// changes: protocol state is indexed by node, so nodes cannot be
    /// added or removed mid-run.
    pub fn set_topology(&mut self, topo: Topology) -> Result<(), SimError> {
        if topo.len() != self.topo.len() {
            return Err(SimError::NodeCountMismatch {
                expected: self.topo.len(),
                got: topo.len(),
            });
        }
        self.topo = topo;
        Ok(())
    }

    /// All node states, indexed by [`NodeId`].
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The state of one node.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.states[p.index()]
    }

    /// Mutable state access (used by hand-written fault scenarios).
    pub fn state_mut(&mut self, p: NodeId) -> &mut P::State {
        &mut self.states[p.index()]
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Severs every link of `p` by removing its edges — the node's
    /// radio goes dark but its state survives (crash of the *link*
    /// layer). Use [`Network::set_topology`] to restore connectivity.
    pub fn isolate(&mut self, p: NodeId) {
        let nbrs: Vec<NodeId> = self.topo.neighbors(p).to_vec();
        for q in nbrs {
            self.topo.remove_edge(p, q);
        }
    }
}

impl<P: Observable, M: Medium> Network<P, M> {
    /// Projects every node's observable output into `buf` (cleared
    /// first); the buffer can be reused across steps.
    pub fn outputs_into(&self, buf: &mut Vec<P::Output>) {
        buf.clear();
        buf.extend(
            self.states
                .iter()
                .enumerate()
                .map(|(i, s)| self.protocol.output(NodeId::new(i as u32), s)),
        );
    }

    /// The observable output of every node.
    pub fn outputs(&self) -> Vec<P::Output> {
        let mut buf = Vec::with_capacity(self.states.len());
        self.outputs_into(&mut buf);
        buf
    }

    /// Runs until `stop` is satisfied and reports what happened — the
    /// primary run method of the [`crate::Scenario`] API.
    ///
    /// The condition is checked before the first step and after every
    /// step. A condition with no [`StopWhen::MaxSteps`] budget that
    /// never holds runs forever; every long-running experiment should
    /// carry a budget (see [`StopWhen::within`]).
    ///
    /// # Examples
    ///
    /// See the crate-level example.
    pub fn run_to(&mut self, stop: &StopWhen<P>) -> RunReport {
        let start = self.step;
        let mut cursor = stop.cursor();
        // Only project outputs when a StableFor leaf will read them;
        // predicate/budget-only stops skip the per-step O(n) pass.
        let needs_outputs = stop.needs_outputs();
        let mut outputs: Vec<P::Output> = Vec::with_capacity(self.states.len());
        if needs_outputs {
            self.outputs_into(&mut outputs);
        }
        let mut verdict = cursor.observe(self.step, 0, &self.topo, &self.states, &outputs);
        while !verdict.satisfied {
            self.step();
            if needs_outputs {
                self.outputs_into(&mut outputs);
            }
            verdict = cursor.observe(
                self.step,
                self.step - start,
                &self.topo,
                &self.states,
                &outputs,
            );
        }
        RunReport {
            stabilized: cursor.stabilized(),
            steps: self.step - start,
            end_step: self.step,
            satisfied: !verdict.budget_only,
            timed_out: verdict.budget_only,
        }
    }
}

impl<P: Corruptible, M: Medium> Network<P, M> {
    /// Corrupts the state of one node arbitrarily.
    pub fn corrupt(&mut self, p: NodeId) {
        let state = &mut self.states[p.index()];
        self.protocol
            .corrupt(p, state, &mut self.node_rngs[p.index()]);
    }

    /// Corrupts every node: the adversarial "arbitrary initial
    /// configuration" of the self-stabilization definition.
    pub fn corrupt_all(&mut self) {
        let nodes: Vec<NodeId> = self.topo.nodes().collect();
        for p in nodes {
            self.corrupt(p);
        }
    }

    /// Corrupts a deterministic pseudo-random subset of about
    /// `fraction` of the nodes; returns how many were corrupted.
    ///
    /// The subset is drawn from a dedicated fault stream, so injecting
    /// faults never perturbs frame-delivery randomness: two runs with
    /// the same seed see identical deliveries whether or not one of
    /// them injects faults.
    pub fn corrupt_fraction(&mut self, fraction: f64) -> usize {
        let picks = self.pick_fraction(fraction);
        let count = picks.len();
        for p in picks {
            self.corrupt(p);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use mwn_radio::{BernoulliLoss, PerfectMedium};

    /// Stabilizes to the maximum id seen; corruption plants a huge fake
    /// value that only TTL-free re-flooding would *not* fix — so we use
    /// it to test corrupt/convergence mechanics, not the protocol.
    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            // Re-asserting the node's own id is what makes the flood
            // self-stabilizing: corrupted state cannot erase the source.
            *state = (*state).max(node.value());
        }
    }
    impl Corruptible for MaxFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }
    impl Observable for MaxFlood {
        type Output = u32;
        fn output(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
    }

    #[test]
    fn max_flood_converges_on_a_line() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(6), 1);
        let report = net.run_to(&StopWhen::stable_for(3).within(100));
        assert!(net.states().iter().all(|&s| s == 5));
        // Information moves one hop per step: node 0 is 5 hops from node 5.
        assert_eq!(report.expect_stable("converges"), 5);
        assert!(!report.timed_out);
    }

    #[test]
    fn one_hop_per_step_information_speed() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(10), 1);
        net.run(3);
        // After 3 steps the max id (9) can have travelled exactly 3 hops.
        assert_eq!(*net.state(NodeId::new(6)), 9);
        assert_eq!(*net.state(NodeId::new(5)), 8);
    }

    #[test]
    fn lossy_medium_still_converges() {
        let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.3), builders::line(6), 3);
        let report = net.run_to(&StopWhen::stable_for(10).within(2000));
        assert!(report.is_stable(), "τ = 0.3 must still converge w.p. 1");
        assert!(net.states().iter().all(|&s| s == 5));
    }

    #[test]
    fn corruption_then_reconvergence() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::ring(8), 4);
        net.run(10);
        net.corrupt_all();
        assert!(net.states().iter().all(|&s| s == 0));
        net.run(10);
        assert!(net.states().iter().all(|&s| s == 7));
    }

    #[test]
    fn corrupt_fraction_reports_count() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::ring(50), 5);
        let corrupted = net.corrupt_fraction(0.5);
        assert!(corrupted > 5 && corrupted < 45, "got {corrupted}");
    }

    #[test]
    fn fault_stream_is_independent_of_delivery_stream() {
        // Regression: corrupt_fraction used to draw from the medium's
        // stream, so "same seed + one corruption call" changed which
        // frames were later lost. With a dedicated fault stream, a run
        // that injects (zero-effect) faults sees identical deliveries.
        let run = |inject: bool| {
            let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.5), builders::ring(16), 9);
            net.run(3);
            if inject {
                // Draws from the fault stream but corrupts nobody.
                assert_eq!(net.corrupt_fraction(0.0), 0);
            }
            net.run(12);
            net.states().to_vec()
        };
        assert_eq!(
            run(true),
            run(false),
            "fault injection must not perturb delivery randomness"
        );
    }

    #[test]
    fn isolation_stops_information_flow() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(5), 6);
        net.isolate(NodeId::new(2)); // cut the middle
        net.run(20);
        // Max id 4 cannot cross the cut.
        assert_eq!(*net.state(NodeId::new(0)), 1);
        assert_eq!(*net.state(NodeId::new(1)), 1);
    }

    #[test]
    fn runs_are_reproducible_from_seed() {
        let run = |seed| {
            let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.5), builders::ring(12), seed);
            net.run(7);
            net.states().to_vec()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn run_to_predicate() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(4), 1);
        let report = net
            .run_to(&StopWhen::predicate(|_, states| states.iter().all(|&s| s == 3)).within(100));
        assert!(report.satisfied && !report.timed_out);
        assert_eq!(report.end_step, 3);
    }

    #[test]
    fn run_to_budget_reports_timeout() {
        // A predicate that can never hold: only the budget fires.
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(4), 1);
        let report = net.run_to(&StopWhen::predicate(|_, states| states.contains(&99)).within(10));
        assert!(report.timed_out);
        assert!(!report.satisfied);
        assert_eq!(report.steps, 10);
        assert_eq!(report.stabilized, None);
    }

    #[test]
    fn run_to_composes_all_and_any() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(6), 2);
        // Stable AND at least 8 steps executed: forces the run past the
        // 5-step stabilization point.
        let report = net.run_to(
            &StopWhen::stable_for(2)
                .and(StopWhen::max_steps(8))
                .within(100),
        );
        assert_eq!(report.expect_stable("line flood stabilizes"), 5);
        assert!(report.steps >= 8);
    }

    #[test]
    fn stability_streak_spans_run_to_restarts() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(6), 3);
        net.run_to(&StopWhen::stable_for(3).within(100));
        // Re-arming on an already-stable network satisfies quickly and
        // reports the (unchanged-since) current step as last change.
        let report = net.run_to(&StopWhen::stable_for(2).within(10));
        assert!(report.is_stable());
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn set_topology_rejects_resize() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(4), 1);
        let err = net.set_topology(builders::line(5)).unwrap_err();
        assert_eq!(
            err,
            SimError::NodeCountMismatch {
                expected: 4,
                got: 5
            }
        );
        // The rejected swap left the network untouched.
        assert_eq!(net.topology().len(), 4);
        assert!(net.set_topology(builders::line(4)).is_ok());
    }
}
