//! Steady-state allocation audit for the engine's hot loops.
//!
//! The kernel layer's pooling claim, in numbers: once every reusable
//! buffer has reached its high-water mark (one cold-start pass sizes
//! them), the round driver's step loop performs **zero heap
//! allocations** — converging storm and quiet phase alike — and the
//! sharded pass allocates only the constant thread-spawn overhead,
//! independent of network size.
//!
//! The audit covers the paper's own protocol too: with the pooled
//! `beacon_into` rebuild, a `DensityCluster` converging wave (states
//! scrambled, caches intact) re-runs N1/R1/R2 across the whole grid
//! without touching the heap. Only cache *re-discovery* — a cleared
//! cache re-learning its neighborhood — may allocate, which is why the
//! protocol phase perturbs states directly instead of `corrupt_all`.
//!
//! The audit installs a counting [`GlobalAlloc`] wrapper around the
//! system allocator. All phases run inside a single `#[test]` so no
//! concurrent test pollutes the process-wide counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use mwn_sim::Activity;
use rand::rngs::StdRng;
use selfstab::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed while stepping `net` for `steps` steps.
fn allocs_during<P, M>(net: &mut mwn_sim::Network<P, M>, steps: u64) -> usize
where
    P: Protocol,
    M: Medium,
{
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..steps {
        net.step();
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A heap-free gated max-flood: plain `u32` state and beacon, so every
/// allocation the audit sees belongs to the engine, not the protocol.
struct GatedFlood;

impl Protocol for GatedFlood {
    type State = u32;
    type Beacon = u32;
    fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
        node.value()
    }
    fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
    fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
        *state = (*state).max(*beacon);
    }
    fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
        *state = (*state).max(node.value());
    }
    fn activity(&self) -> Activity {
        Activity::Gated
    }
    fn beacon_changed(&self, old: &u32, new: &u32) -> bool {
        old != new
    }
}

impl Corruptible for GatedFlood {
    fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
        *state = 0;
    }
}

impl Observable for GatedFlood {
    type Output = u32;
    fn output(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
}

/// Builds an 8-neighborhood grid network with every buffer warmed: one
/// full converge (cold start activates every node, so the dirty sets,
/// delivery rows and shard arenas all reach their high-water marks).
fn warmed(side: usize, shards: Option<usize>) -> mwn_sim::Network<GatedFlood, PerfectMedium> {
    let mut net = Scenario::new(GatedFlood)
        .topology(builders::grid(side, side, 1.45 / (side - 1) as f64))
        .seed(7)
        .build()
        .expect("valid scenario");
    net.set_shards(shards);
    net.run_to(&StopWhen::stable_for(3).within(10_000))
        .expect_stable("the flood converges");
    net.run(3); // drain the last pending beacons
    net
}

#[test]
fn steady_state_loops_do_not_allocate() {
    // --- Serial, converging storm -----------------------------------
    // corrupt_all wakes every node; the re-convergence that follows is
    // exactly the cold-start converging phase, but with warmed buffers:
    // it must run allocation-free, step after step.
    let mut net = warmed(40, Some(1));
    net.corrupt_all();
    assert!(
        allocs_during(&mut net, 2) < 50,
        "warmup steps right after corruption stay near-free"
    );
    let storm = allocs_during(&mut net, 25);
    assert_eq!(
        storm, 0,
        "serial converging loop must not allocate ({storm} allocs in 25 storm steps)"
    );
    assert!(
        net.last_activity().updates > 0,
        "the audit window must actually cover converging work"
    );

    // --- Serial, eager (every node active every step) ---------------
    // Eager mode is the cost model of the converging phase: the whole
    // network runs receives + updates each step, forever.
    net.set_eager(true);
    net.run(2);
    let eager = allocs_during(&mut net, 10);
    assert_eq!(eager, 0, "eager full-network steps must not allocate");
    net.set_eager(false);

    // --- Serial, quiet ----------------------------------------------
    net.run_to(&StopWhen::stable_for(3).within(10_000))
        .expect_stable("re-converges");
    net.run(3);
    let quiet = allocs_during(&mut net, 50);
    assert_eq!(quiet, 0, "quiet steps must not allocate");

    // --- Sharded: constant overhead, independent of network size ----
    // The pooled arenas make the sharded pass's only steady-state
    // allocations the scoped-thread spawns: a per-step constant. An
    // O(active) allocation pattern would scale ~16× between these
    // sizes; the spawn overhead does not scale at all.
    let steps = 12u64;
    let per_step = |side: usize| {
        let mut net = warmed(side, Some(4));
        net.set_eager(true); // full active set every step
        net.run(2);
        allocs_during(&mut net, steps) as f64 / steps as f64
    };
    let small = per_step(10); // n = 100
    let large = per_step(40); // n = 1600
    assert!(
        large <= small + 2.0,
        "sharded per-step allocations must not grow with n \
         (n=100: {small:.1}/step, n=1600: {large:.1}/step)"
    );

    // --- DensityCluster: converging phase, caches intact ------------
    // The paper's protocol under the gated engine. Repeated rounds of
    // state scrambling (wrong density, wrong head, wrong dag id on
    // every node) kick off genuine converging waves: the polluted
    // beacons propagate, neighbors overwrite cache entries in place,
    // elections re-run — and with `beacon_into` pooling the view
    // rebuild, none of it allocates. Cache *structure* never changes,
    // so every view buffer keeps its settled capacity.
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(builders::grid(20, 20, 1.45 / 19.0))
        .seed(7)
        .build()
        .expect("valid scenario");
    net.set_shards(Some(1));
    net.run_to(&StopWhen::stable_for(3).within(10_000))
        .expect_stable("the clustering converges");
    net.run(3);
    let nodes = net.states().len() as u32;
    let scramble = |net: &mut mwn_sim::Network<DensityCluster, PerfectMedium>, round: u32| {
        for i in 0..nodes {
            let node = NodeId::new(i);
            let state = net.state_mut(node);
            state.dag_id = u32::MAX - round;
            state.density = Density::integer(round);
            state.head = NodeId::new((i + 7 * (round + 1)) % nodes);
        }
    };
    // Warmup storms: the swapped beacon buffers circulate between
    // nodes, so each one's view capacity climbs to the global maximum
    // over a few storms (~1 realloc per step while climbing).
    for round in 0..5u32 {
        scramble(&mut net, round);
        assert!(
            allocs_during(&mut net, 5) < 50,
            "protocol warmup storms stay near-free"
        );
    }
    // Measured storms: every buffer is at its high-water mark; the
    // full N1/R1/R2 re-convergence must not touch the heap.
    let mut converging_steps = 0usize;
    for round in 5..9u32 {
        scramble(&mut net, round);
        for _ in 0..4 {
            let before = ALLOCS.load(Ordering::Relaxed);
            net.step();
            let during = ALLOCS.load(Ordering::Relaxed) - before;
            if net.last_activity().updates > 0 {
                converging_steps += 1;
            }
            assert_eq!(
                during, 0,
                "DensityCluster converging step allocated {during} times"
            );
        }
    }
    assert!(
        converging_steps >= 10,
        "the protocol audit window must cover real converging work \
         ({converging_steps} active steps seen)"
    );
}
