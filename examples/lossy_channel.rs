//! The paper's radio hypothesis, end to end: run the protocol over
//! media of decreasing quality — perfect, slotted CSMA/CA (τ emergent
//! from collisions), and Bernoulli loss at harsh τ — and over the
//! continuous-time event driver, confirming convergence every time.
//! Closes with a weak-stabilization estimate (Devismes et al.): the
//! probability of stabilizing within a fixed step budget at harsh τ,
//! with a Wilson 95% confidence interval.
//!
//! ```sh
//! cargo run --example lossy_channel
//! ```

use rand::SeedableRng;
use selfstab::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let topo = builders::poisson(400.0, 0.1, &mut rng);
    println!(
        "{} nodes, δ = {}; reference fixpoint computed centrally\n",
        topo.len(),
        topo.max_degree()
    );
    let want = oracle(&topo, &OracleConfig::default());

    // Perfect medium.
    run_over(
        "perfect medium (τ = 1)",
        PerfectMedium,
        ClusterConfig::default(),
        &topo,
        &want,
    );

    // Slotted CSMA with hidden terminals; measure its τ first.
    let mut csma = SlottedCsma::new(16);
    let tau = measure_tau(&mut csma, &topo, 40, &mut rng);
    run_over(
        &format!("slotted CSMA/CA, measured τ ≈ {tau:.2}"),
        csma,
        ClusterConfig {
            cache_ttl: 16,
            ..ClusterConfig::default()
        },
        &topo,
        &want,
    );

    // The worst medium the proofs allow: iid loss at τ = 0.5.
    run_over(
        "Bernoulli loss, τ = 0.5",
        BernoulliLoss::new(0.5),
        ClusterConfig {
            cache_ttl: 30,
            ..ClusterConfig::default()
        },
        &topo,
        &want,
    );

    // Continuous time: randomized beacons, frames with duration. The
    // event driver honors the scenario's medium — here Bernoulli loss
    // at τ = 0.65, roughly what overlap collisions used to cost.
    // The TTL must cover the longest plausible run of lost beacons:
    // at 35% loss, 30 periods keeps false expiries to ~1e-13 per
    // entry.
    let mut driver = Scenario::new(DensityCluster::new(ClusterConfig {
        cache_ttl: 30,
        ..ClusterConfig::default()
    }))
    .medium(BernoulliLoss::new(0.65))
    .topology(topo.clone())
    .seed(3)
    .build_events(EventConfig::default())
    .expect("valid event scenario");
    let t = driver
        .run_until_output_stable(1.0, 10, 2000.0)
        .expect("event-driven run stabilizes");
    let got = extract_clustering(driver.states()).expect("clean");
    println!(
        "event driver: stabilized at t ≈ {t:.0} beacon periods, measured τ ≈ {:.2}, {} clusters{}",
        driver.measured_tau(),
        got.head_count(),
        if got == want {
            " — matches the fixpoint"
        } else {
            ""
        }
    );

    // Weak/probabilistic stabilization: what *fraction* of runs reach a
    // stable output within a tight budget at τ = 0.5? The Sweep
    // convergence helper fans the estimate over seeds; the Wilson score
    // interval says how much 40 samples are worth.
    println!();
    let budget = 250;
    let estimate = Sweep::over(40, 20050610)
        .convergence(
            |seed| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let deployment = builders::poisson(150.0, 0.12, &mut rng);
                Scenario::new(DensityCluster::new(ClusterConfig {
                    cache_ttl: 30,
                    ..ClusterConfig::default()
                }))
                .medium(BernoulliLoss::new(0.5))
                .topology(deployment)
                .seed(seed)
            },
            &StopWhen::stable_for(25).within(budget),
        )
        .expect("all scenarios build");
    let (low, high) = mwn_metrics::wilson_interval(estimate.stabilized, estimate.runs, 1.96);
    println!(
        "P(stable within {budget} steps at τ = 0.5) ≈ {:.2} \
         ({}/{} seeds; Wilson 95%: [{low:.2}, {high:.2}])",
        estimate.fraction(),
        estimate.stabilized,
        estimate.runs,
    );
}

fn run_over<M: Medium>(
    label: &str,
    medium: M,
    config: ClusterConfig,
    topo: &Topology,
    want: &Clustering,
) {
    let mut net = Scenario::new(DensityCluster::new(config))
        .medium(medium)
        .topology(topo.clone())
        .seed(9)
        .build()
        .expect("valid scenario");
    let report = net.run_to(&StopWhen::stable_for(25).within(50_000));
    let steps = report.expect_stable("stabilizes for any τ > 0");
    let got = extract_clustering(net.states()).expect("clean");
    println!(
        "{label:<38} stabilized in {steps:>4} steps, {} clusters{}",
        got.head_count(),
        if got == *want {
            " — matches the fixpoint"
        } else {
            ""
        }
    );
}
