//! Traffic over a healing network: the headline number for the
//! traffic plane. A relief deployment self-organizes, data flows over
//! the stabilized overlay, then the most popular sink goes dark for
//! longer than the packets' TTL. Every byte lost while the structure
//! re-stabilizes is accounted for — the `loss_during_restabilization`
//! column — and delivery resumes once the protocol heals.
//!
//! ```sh
//! cargo run --release --example traffic_relief
//! ```

use rand::SeedableRng;
use selfstab::graph::traversal::connected_components;
use selfstab::prelude::*;
use selfstab::traffic::hottest_sink;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2005);
    let topo = builders::poisson(600.0, 0.08, &mut rng);
    println!(
        "relief network: {} radios, {} links",
        topo.len(),
        topo.edge_count()
    );

    // Self-organize first: traffic rides *on* the stabilized overlay.
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(topo.clone())
        .seed(7)
        .build()
        .expect("valid scenario");
    let steps = net
        .run_to(&StopWhen::stable_for(5).within(20_000))
        .expect_stable("stabilizes");
    println!("overlay stable after {steps} steps");

    // Heavy-tailed demand (Zipf sinks × Pareto flow sizes), confined
    // to the giant component so every flow is routable when quiet.
    let component = connected_components(&topo)
        .into_iter()
        .max_by_key(|c| c.len())
        .expect("non-empty");
    let model = DemandModel {
        flows: 48,
        mean_packets: 300.0,
        max_packets: 2_000,
        start_spread: 500,
        ..DemandModel::default()
    };
    let flows: Vec<FlowSpec> = model
        .generate(component.len(), 42)
        .into_iter()
        .map(|f| FlowSpec {
            src: component[f.src.index()],
            dst: component[f.dst.index()],
            ..f
        })
        .collect();
    let hot = hottest_sink(&flows).expect("non-empty workload");
    println!(
        "workload: {} flows, hottest sink is node {hot}",
        flows.len()
    );

    let mut plane = TrafficPlane::new(
        topo.len(),
        TrafficConfig {
            ttl: 64,
            ..TrafficConfig::default()
        },
    );
    plane.add_flows(&flows);
    let view = |topo: &Topology, states: &[ClusterState]| {
        extract_clustering(states).and_then(|c| HierarchicalRoutes::try_new(topo, c))
    };

    // Phase 1 — quiet operation.
    let quiet = run_rounds(&mut net, &mut plane, 200, view);
    println!(
        "quiet:  {} delivered / {} injected, p50 latency {:.0} steps, {:.1} mean hops",
        quiet.delivered, quiet.injected, quiet.latency_p50, quiet.mean_hops
    );

    // Phase 2 — the hottest sink goes dark for longer than the TTL.
    net.isolate(hot);
    let outage = run_rounds(&mut net, &mut plane, 150, view);
    println!(
        "outage: node {hot} dark for 150 steps (TTL 64): {} packets stranded so far",
        outage.dropped_stranded
    );

    // Phase 3 — links restored; the protocol re-stabilizes and the
    // backlog drains.
    net.set_topology(topo).expect("same node count");
    let healed = run_rounds(&mut net, &mut plane, 100_000, view);
    println!(
        "healed: {} delivered / {} injected ({:.1}% delivery), p99 latency {:.0} steps",
        healed.delivered,
        healed.injected,
        100.0 * healed.delivered_fraction,
        healed.latency_p99
    );
    println!(
        "\nheadline — loss during restabilization: {:.3}% of injected packets ({} stranded)",
        100.0 * healed.loss_during_restabilization,
        healed.dropped_stranded
    );
    assert!(
        healed.dropped_stranded > 0,
        "the outage outlives the TTL, so some loss is structural"
    );
}
