//! Statistics and experiment-harness utilities for the `selfstab-mwn`
//! workspace.
//!
//! The paper's evaluation reports averages "over 1000 simulations"
//! (Section 5). This crate provides the pieces that turn raw simulation
//! outputs into the paper's tables: numerically stable running
//! statistics ([`RunningStats`]), histograms ([`Histogram`]),
//! paper-style ASCII tables ([`Table`]), serializable result records
//! ([`Summary`]), and a deterministic multi-seed parallel runner
//! ([`run_seeds`]).
//!
//! # Examples
//!
//! ```
//! use mwn_metrics::{run_seeds, RunningStats};
//!
//! // Average a (toy) per-seed measurement over many deterministic runs.
//! let results = run_seeds(100, 42, |seed| (seed % 7) as f64);
//! let stats: RunningStats = results.into_iter().collect();
//! assert_eq!(stats.count(), 100);
//! assert!(stats.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod runner;
mod running;
mod table;

pub use histogram::Histogram;
pub use runner::run_seeds;
pub use running::{RunningStats, Summary};
pub use table::Table;
