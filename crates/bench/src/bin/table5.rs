//! Regenerates the paper's Table 5 (adversarial grid).

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    eprintln!(
        "table 5: {} runs per cell (use --full for the paper's 1000)",
        scale.runs
    );
    let result = mwn_bench::table5::run(scale);
    println!("{}", mwn_bench::table5::render(&result));
}
