use mwn_graph::{NodeId, Point2, Topology, TopologyDelta};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::MobilityModel;

/// A mobile network: a unit-disk topology whose nodes move under a
/// [`MobilityModel`], with links rebuilt after every advance.
///
/// # Examples
///
/// ```
/// use mwn_graph::builders;
/// use mwn_mobility::{MobileScenario, RandomDirection};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let topo = builders::uniform(50, 0.1, &mut rng);
/// let model = RandomDirection::new(50, 0.0..=0.01, 10.0);
/// let mut scenario = MobileScenario::new(topo, model, 2);
/// let edges_before = scenario.topology().edge_count();
/// for _ in 0..60 {
///     scenario.advance(1.0);
/// }
/// // The topology is still a valid unit-disk graph of the same nodes.
/// assert_eq!(scenario.topology().len(), 50);
/// let _ = edges_before;
/// ```
#[derive(Debug)]
pub struct MobileScenario<M> {
    topo: Topology,
    model: M,
    rng: StdRng,
    elapsed: f64,
    /// Scratch position buffer the model advances.
    scratch: Vec<Point2>,
    /// The most recent tick's move list (nodes that actually moved).
    moves: Vec<(NodeId, Point2)>,
}

impl<M: MobilityModel> MobileScenario<M> {
    /// Wraps a unit-disk topology and a model.
    ///
    /// # Panics
    ///
    /// Panics if `topo` carries no positions or no radius (it must be
    /// built by [`Topology::unit_disk`]).
    pub fn new(topo: Topology, model: M, seed: u64) -> Self {
        assert!(
            topo.positions().is_some() && topo.radius().is_some(),
            "mobility requires a unit-disk topology with positions"
        );
        MobileScenario {
            topo,
            model,
            rng: StdRng::seed_from_u64(seed),
            elapsed: 0.0,
            scratch: Vec::new(),
            moves: Vec::new(),
        }
    }

    /// Moves all nodes forward `dt` seconds and incrementally updates
    /// the links ([`Topology::apply_moves`]): only nodes that actually
    /// moved are re-binned, and the returned delta names exactly the
    /// links that changed — what an activity-driven driver needs to
    /// wake the right nodes.
    pub fn advance(&mut self, dt: f64) -> TopologyDelta {
        // The model advances a scratch copy, so the topology's spatial
        // hash is updated through the move list instead of being
        // invalidated by in-place mutation.
        self.scratch.clear();
        self.scratch.extend_from_slice(
            self.topo
                .positions()
                .expect("constructor checked positions"),
        );
        self.model.step(&mut self.scratch, dt, &mut self.rng);
        self.moves.clear();
        let positions = self
            .topo
            .positions()
            .expect("constructor checked positions");
        for (i, (&old, &new)) in positions.iter().zip(&self.scratch).enumerate() {
            if old != new {
                self.moves.push((NodeId::new(i as u32), new));
            }
        }
        self.elapsed += dt;
        self.topo.apply_moves(&self.moves)
    }

    /// The move list of the most recent [`MobileScenario::advance`]
    /// tick (already applied to this scenario's topology).
    pub fn last_moves(&self) -> &[(NodeId, Point2)] {
        &self.moves
    }

    /// The current topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Seconds simulated so far.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// The mobility model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Turns the scenario into a per-step topology driver for the
    /// simulators: each protocol step advances the nodes by
    /// `seconds_per_step` and rebuilds the links. Plug the result into
    /// `mwn_sim::Scenario::mobility` to run a protocol over a moving
    /// network — under the synchronous round driver (one tick per
    /// step) or the continuous-time event driver (one tick per beacon
    /// period, at logical-step boundaries).
    pub fn into_dynamics(self, seconds_per_step: f64) -> MobilityDynamics<M> {
        assert!(seconds_per_step > 0.0, "seconds per step must be positive");
        MobilityDynamics {
            scenario: self,
            seconds_per_step,
        }
    }
}

/// Adapter driving a [`MobileScenario`] from the round simulator's
/// step clock; see [`MobileScenario::into_dynamics`].
#[derive(Debug)]
pub struct MobilityDynamics<M> {
    scenario: MobileScenario<M>,
    seconds_per_step: f64,
}

impl<M: MobilityModel> mwn_sim::TopologyDynamics for MobilityDynamics<M> {
    fn next_topology(&mut self, _step: u64) -> Option<&Topology> {
        self.scenario.advance(self.seconds_per_step);
        // Hand the driver a borrow; it copies into its own reused
        // buffers, so advancing allocates nothing per step here.
        Some(self.scenario.topology())
    }

    fn next_moves(&mut self, _step: u64) -> Option<&[(NodeId, Point2)]> {
        // Advance our own topology copy with the same move list the
        // driver will apply to its copy: both evolve identically, and
        // the driver wakes only the nodes the tick touched.
        self.scenario.advance(self.seconds_per_step);
        Some(self.scenario.last_moves())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{meters_per_second, RandomWaypoint};
    use mwn_graph::builders;

    #[test]
    fn advancing_changes_edges_eventually() {
        let mut rng = StdRng::seed_from_u64(4);
        let topo = builders::uniform(80, 0.1, &mut rng);
        let before = topo.clone();
        let model = RandomWaypoint::new(80, 0.0..=meters_per_second(10.0), 0.0);
        let mut scenario = MobileScenario::new(topo, model, 4);
        for _ in 0..120 {
            scenario.advance(2.0);
        }
        assert_ne!(
            before.edges().collect::<Vec<_>>(),
            scenario.topology().edges().collect::<Vec<_>>(),
            "4 minutes at vehicular speed must change some links"
        );
        assert!((scenario.elapsed() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn static_model_preserves_topology() {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = builders::uniform(40, 0.1, &mut rng);
        let before = topo.clone();
        let model = RandomWaypoint::new(40, 0.0..=0.0, 0.0);
        let mut scenario = MobileScenario::new(topo, model, 5);
        scenario.advance(100.0);
        assert_eq!(before, *scenario.topology());
    }

    #[test]
    #[should_panic(expected = "unit-disk topology")]
    fn edge_list_topology_rejected() {
        let topo = Topology::from_edges(3, &[(0, 1)]).unwrap();
        let model = RandomWaypoint::new(3, 0.0..=0.0, 0.0);
        let _ = MobileScenario::new(topo, model, 0);
    }
}
