//! `selfstab` — command-line front end: deploy a topology, run the
//! self-stabilizing clustering, inspect or render the result.
//!
//! ```text
//! selfstab topology --lambda 1000 --radius 0.1 [--seed N]
//! selfstab cluster  --lambda 1000 --radius 0.1 [--fusion] [--stable]
//!                   [--metric density|degree|unit] [--dag] [--svg out.svg]
//! selfstab cluster  --grid 32 --radius 0.05 --dag [--ascii]
//! selfstab dag      --grid 32 --radius 0.05 [--gamma N]
//! selfstab route    --lambda 500 --radius 0.1 --pairs 200
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use rand::SeedableRng;
use selfstab::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, opts)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "topology" => cmd_topology(&opts),
        "cluster" => cmd_cluster(&opts),
        "dag" => cmd_dag(&opts),
        "route" => cmd_route(&opts),
        "hierarchy" => cmd_hierarchy(&opts),
        "energy" => cmd_energy(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "selfstab — self-stabilizing density clustering (Mitton et al., ICDCS 2005)

USAGE:
    selfstab <COMMAND> [OPTIONS]

COMMANDS:
    topology   deploy and describe a topology
    cluster    run the clustering and report/render it
    dag        run only the N1 DAG renaming
    route      measure hierarchical-routing stretch
    hierarchy  build the recursive cluster hierarchy
    energy     battery-aware rotation vs static election
    help       show this text

DEPLOYMENT OPTIONS (shared):
    --lambda <f>    Poisson intensity over the unit square
    --nodes <n>     exactly n uniform nodes (alternative to --lambda)
    --grid <side>   side×side grid with row-major ids
    --radius <f>    radio range (default 0.1)
    --seed <n>      RNG seed (default 1)

CLUSTER OPTIONS:
    --metric <m>    density (default) | degree | unit
    --fusion        enable the 2-hop head-fusion rule (Section 4.3)
    --stable        enable the incumbency tie-break (Section 4.3)
    --dag           enable the constant-height DAG renaming
    --gamma <n>     DAG name-space size (default δ²)
    --silent        event-driven cache freshness: the activity-driven
                    engine gates stabilized regions (zero messages)
    --driver <d>    rounds (default) | events | actors — the same
                    scenario on synchronous steps, the continuous
                    clock, or real message-passing actor processes
    --threads <n>   worker threads for --driver actors (default 2)
    --svg <path>    write an SVG rendering
    --ascii         print ASCII art (grids only)

ROUTE OPTIONS:
    --pairs <n>     random pairs to sample (default 200)";

type Opts = BTreeMap<String, String>;

/// Splits `args` into a subcommand and `--key value` / `--flag` pairs.
fn parse(args: &[String]) -> Option<(String, Opts)> {
    let mut iter = args.iter().peekable();
    let command = iter.next()?.clone();
    let mut opts = Opts::new();
    while let Some(arg) = iter.next() {
        let key = arg.strip_prefix("--")?.to_string();
        let value = match iter.peek() {
            Some(next) if !next.starts_with("--") => iter.next()?.clone(),
            _ => "true".to_string(),
        };
        opts.insert(key, value);
    }
    Some((command, opts))
}

fn opt_f64(opts: &Opts, key: &str) -> Result<Option<f64>, String> {
    opts.get(key)
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("--{key} wants a number, got `{v}`"))
        })
        .transpose()
}

fn opt_u64(opts: &Opts, key: &str) -> Result<Option<u64>, String> {
    opts.get(key)
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--{key} wants an integer, got `{v}`"))
        })
        .transpose()
}

fn flag(opts: &Opts, key: &str) -> bool {
    opts.get(key).is_some_and(|v| v == "true")
}

/// Builds the topology from the shared deployment options.
fn deploy(opts: &Opts) -> Result<Topology, String> {
    let radius = opt_f64(opts, "radius")?.unwrap_or(0.1);
    let seed = opt_u64(opts, "seed")?.unwrap_or(1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    if let Some(side) = opt_u64(opts, "grid")? {
        if side < 2 {
            return Err("--grid needs a side of at least 2".into());
        }
        Ok(builders::grid(side as usize, side as usize, radius))
    } else if let Some(n) = opt_u64(opts, "nodes")? {
        Ok(builders::uniform(n as usize, radius, &mut rng))
    } else {
        let lambda = opt_f64(opts, "lambda")?.unwrap_or(500.0);
        Ok(builders::poisson(lambda, radius, &mut rng))
    }
}

fn cluster_config(opts: &Opts, topo: &Topology) -> Result<ClusterConfig, String> {
    let metric = match opts.get("metric").map(String::as_str) {
        None | Some("density") => MetricKind::Density,
        Some("degree") => MetricKind::Degree,
        Some("unit") | Some("lowest-id") => MetricKind::Unit,
        Some(other) => return Err(format!("unknown metric `{other}`")),
    };
    let dag = if flag(opts, "dag") {
        let gamma = match opt_u64(opts, "gamma")? {
            Some(g) => NameSpace::of_size(g as u32),
            None => NameSpace::delta_squared(topo.max_degree().max(1)),
        };
        Some(DagConfig {
            gamma,
            variant: DagVariant::SmallestIdRedraws,
        })
    } else {
        None
    };
    let config = ClusterConfig {
        metric,
        order: if flag(opts, "stable") {
            OrderKind::Stable
        } else {
            OrderKind::Basic
        },
        rule: if flag(opts, "fusion") {
            HeadRule::Fusion
        } else {
            HeadRule::Basic
        },
        dag,
        cache_ttl: 4,
        freshness: if flag(opts, "silent") {
            FreshnessPolicy::EventDriven
        } else {
            FreshnessPolicy::TtlSweep
        },
    };
    config.validate_for(topo)?;
    Ok(config)
}

fn cmd_topology(opts: &Opts) -> Result<(), String> {
    let topo = deploy(opts)?;
    let stats = selfstab::graph::stats::DegreeStats::of(&topo);
    let mut table = Table::new("topology");
    table.set_headers(["property", "value"]);
    table.add_row("nodes", vec![topo.len().to_string()]);
    table.add_row("links", vec![topo.edge_count().to_string()]);
    table.add_row("max degree (δ)", vec![stats.max.to_string()]);
    table.add_row("mean degree", vec![format!("{:.2}", stats.mean)]);
    table.add_row("isolated nodes", vec![stats.isolated.to_string()]);
    table.add_row(
        "connected",
        vec![selfstab::graph::traversal::is_connected(&topo).to_string()],
    );
    println!("{table}");
    Ok(())
}

fn cmd_cluster(opts: &Opts) -> Result<(), String> {
    let topo = deploy(opts)?;
    let config = cluster_config(opts, &topo)?;
    let seed = opt_u64(opts, "seed")?.unwrap_or(1);
    let scenario = || {
        Scenario::new(DensityCluster::new(config))
            .topology(topo.clone())
            .seed(seed)
    };
    let stop = StopWhen::stable_for(4).within(10_000);
    // One scenario, three drivers: the same deployment and seed run on
    // synchronous rounds, the continuous clock, or real message-passing
    // actors — and (for this protocol) produce the same clustering.
    let (summary, states) = match opts.get("driver").map(String::as_str) {
        None | Some("rounds") => {
            let mut net = scenario().build().map_err(|e| e.to_string())?;
            let steps = net
                .run_to(&stop)
                .stabilized
                .ok_or("the protocol did not stabilize within 10000 steps")?;
            (
                format!("stabilized after {steps} steps"),
                net.states().to_vec(),
            )
        }
        Some("events") => {
            let mut driver = scenario()
                .build_events(EventConfig::default())
                .map_err(|e| e.to_string())?;
            let time = driver
                .run_until_output_stable(1.0, 4, 10_000.0)
                .ok_or("the protocol did not stabilize within t = 10000")?;
            (
                format!("stabilized by t = {time:.1}"),
                driver.states().to_vec(),
            )
        }
        Some("actors") => {
            let threads = opt_u64(opts, "threads")?.unwrap_or(2) as usize;
            let mut actors = scenario()
                .build_actors(threads)
                .map_err(|e| e.to_string())?;
            let periods = actors
                .run_to(&stop)
                .stabilized
                .ok_or("the protocol did not stabilize within 10000 periods")?;
            (
                format!("stabilized after {periods} periods, {threads} threads"),
                actors.states().to_vec(),
            )
        }
        Some(other) => return Err(format!("unknown driver `{other}` (rounds|events|actors)")),
    };
    let clustering = extract_clustering(&states).ok_or("non-stabilized state extracted")?;
    let stats = ClusteringStats::of(&topo, &clustering).ok_or("empty clustering")?;
    let mut table = Table::new(format!("clustering ({summary})"));
    table.set_headers(["property", "value"]);
    table.add_row("clusters", vec![format!("{}", stats.clusters)]);
    table.add_row(
        "mean cluster size",
        vec![format!("{:.2}", stats.mean_cluster_size)],
    );
    table.add_row(
        "mean tree length",
        vec![format!("{:.2}", stats.mean_tree_length)],
    );
    table.add_row(
        "mean head eccentricity",
        vec![format!("{:.2}", stats.mean_head_eccentricity)],
    );
    println!("{table}");
    if let Some(path) = opts.get("svg") {
        write_svg_clustering(path, &topo, &clustering)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if flag(opts, "ascii") {
        let side = opt_u64(opts, "grid")?.ok_or("--ascii requires --grid")? as usize;
        print!("{}", ascii_grid_clustering(&clustering, side, side));
    }
    Ok(())
}

fn cmd_dag(opts: &Opts) -> Result<(), String> {
    let topo = deploy(opts)?;
    let gamma = match opt_u64(opts, "gamma")? {
        Some(g) => NameSpace::of_size(g as u32),
        None => NameSpace::delta_squared(topo.max_degree().max(1)),
    };
    let seed = opt_u64(opts, "seed")?.unwrap_or(1);
    let mut net = Scenario::new(DagProtocol::new(gamma, DagVariant::SmallestIdRedraws, 4))
        .topology(topo)
        .seed(seed)
        .build()
        .map_err(|e| e.to_string())?;
    let steps = net
        .run_to(&StopWhen::stable_for(4).within(10_000))
        .stabilized
        .ok_or("N1 did not stabilize within 10000 steps")?;
    let names: Vec<u32> = net.states().iter().map(|s| s.dag_id).collect();
    let unique = selfstab::cluster::is_locally_unique(net.topology(), &names);
    let height = selfstab::cluster::name_dag_height(net.topology(), &names);
    println!(
        "N1 over |γ| = {}: stabilized after {steps} steps; proper coloring: {unique}; \
         DAG height {height} (bound |γ|+1 = {})",
        gamma.size(),
        gamma.size() + 1
    );
    Ok(())
}

fn cmd_route(opts: &Opts) -> Result<(), String> {
    let topo = deploy(opts)?;
    let pairs = opt_u64(opts, "pairs")?.unwrap_or(200) as usize;
    let seed = opt_u64(opts, "seed")?.unwrap_or(1);
    let clustering = oracle(&topo, &OracleConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF00D);
    let stretch = selfstab::cluster::mean_stretch(&topo, &clustering, pairs, &mut rng)
        .ok_or("no routable pairs sampled (disconnected or tiny topology)")?;
    println!(
        "hierarchical routing over {} clusters: mean stretch {stretch:.3} ({pairs} pairs)",
        clustering.head_count()
    );
    Ok(())
}

fn cmd_hierarchy(opts: &Opts) -> Result<(), String> {
    let topo = deploy(opts)?;
    let h = selfstab::cluster::build_hierarchy(&topo, &OracleConfig::default(), 10);
    let mut table = Table::new(format!("hierarchy ({} levels)", h.depth()));
    table.set_headers(["level", "nodes", "clusters"]);
    for (k, level) in h.levels().iter().enumerate() {
        table.add_row(
            k.to_string(),
            vec![
                level.members.len().to_string(),
                level.clustering.head_count().to_string(),
            ],
        );
    }
    println!("{table}");
    println!(
        "top-level roots: {}",
        h.top_heads()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

fn cmd_energy(opts: &Opts) -> Result<(), String> {
    let topo = deploy(opts)?;
    let rounds = opt_u64(opts, "rounds")?.unwrap_or(400);
    let model = EnergyModel {
        initial: 50.0,
        head_cost: 1.0,
        member_cost: 0.01,
        bands: 25,
    };
    let mut table = Table::new(format!("energy-aware rotation vs static ({rounds} rounds)"));
    table.set_headers(["", "rotating", "static"]);
    let rotating = simulate_rotation(&topo, &model, &OracleConfig::default(), rounds, true);
    let fixed = simulate_rotation(&topo, &model, &OracleConfig::default(), rounds, false);
    let death = |d: Option<u64>| d.map_or("none".to_string(), |r| r.to_string());
    table.add_row(
        "first node death (round)",
        vec![death(rotating.first_death), death(fixed.first_death)],
    );
    table.add_row(
        "min battery at end",
        vec![
            format!("{:.1}", rotating.min_battery),
            format!("{:.1}", fixed.min_battery),
        ],
    );
    table.add_row(
        "distinct heads served",
        vec![
            rotating.distinct_heads.to_string(),
            fixed.distinct_heads.to_string(),
        ],
    );
    println!("{table}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parser_splits_command_and_options() {
        let (cmd, opts) = parse(&argv("cluster --lambda 500 --fusion --seed 7")).unwrap();
        assert_eq!(cmd, "cluster");
        assert_eq!(opts.get("lambda").map(String::as_str), Some("500"));
        assert_eq!(opts.get("seed").map(String::as_str), Some("7"));
        assert!(flag(&opts, "fusion"));
        assert!(!flag(&opts, "dag"));
    }

    #[test]
    fn parser_rejects_stray_positional() {
        assert!(parse(&argv("cluster oops")).is_none());
        assert!(parse(&[]).is_none());
    }

    #[test]
    fn numeric_options_validate() {
        let (_, opts) = parse(&argv("cluster --lambda abc")).unwrap();
        assert!(opt_f64(&opts, "lambda").is_err());
        let (_, opts) = parse(&argv("cluster --seed 12")).unwrap();
        assert_eq!(opt_u64(&opts, "seed").unwrap(), Some(12));
        assert_eq!(opt_u64(&opts, "missing").unwrap(), None);
    }

    #[test]
    fn deploy_grid_and_uniform() {
        let (_, opts) = parse(&argv("topology --grid 5 --radius 0.3")).unwrap();
        assert_eq!(deploy(&opts).unwrap().len(), 25);
        let (_, opts) = parse(&argv("topology --nodes 40")).unwrap();
        assert_eq!(deploy(&opts).unwrap().len(), 40);
    }

    #[test]
    fn config_validation_bubbles_up() {
        let (_, opts) = parse(&argv("cluster --grid 6 --radius 0.5 --dag --gamma 2")).unwrap();
        let topo = deploy(&opts).unwrap();
        assert!(cluster_config(&opts, &topo).is_err(), "γ=2 < δ must fail");
    }

    #[test]
    fn commands_run_end_to_end() {
        let (_, opts) = parse(&argv("topology --nodes 30 --radius 0.2 --seed 3")).unwrap();
        cmd_topology(&opts).unwrap();
        let (_, opts) = parse(&argv("cluster --nodes 30 --radius 0.2 --seed 3")).unwrap();
        cmd_cluster(&opts).unwrap();
        let (_, opts) = parse(&argv(
            "cluster --nodes 30 --radius 0.2 --seed 3 --driver events",
        ))
        .unwrap();
        cmd_cluster(&opts).unwrap();
        let (_, opts) = parse(&argv(
            "cluster --nodes 30 --radius 0.2 --seed 3 --silent --driver actors --threads 2",
        ))
        .unwrap();
        cmd_cluster(&opts).unwrap();
        let (_, opts) = parse(&argv("cluster --nodes 30 --driver warp")).unwrap();
        assert!(cmd_cluster(&opts).is_err(), "unknown driver must fail");
        let (_, opts) = parse(&argv("dag --grid 6 --radius 0.25 --seed 3")).unwrap();
        cmd_dag(&opts).unwrap();
        let (_, opts) = parse(&argv("route --nodes 60 --radius 0.2 --seed 3")).unwrap();
        cmd_route(&opts).unwrap();
        let (_, opts) = parse(&argv("hierarchy --nodes 80 --radius 0.12 --seed 3")).unwrap();
        cmd_hierarchy(&opts).unwrap();
        let (_, opts) =
            parse(&argv("energy --nodes 40 --radius 0.2 --rounds 60 --seed 3")).unwrap();
        cmd_energy(&opts).unwrap();
    }
}
