use std::fmt::Write as _;
use std::io;
use std::path::Path;

use mwn_cluster::Clustering;
use mwn_graph::Topology;

/// Renders a clustering as an SVG document.
///
/// Radio links are drawn as light gray lines, cluster-tree edges
/// (parent pointers) as heavier lines in the cluster's color, member
/// nodes as filled circles and cluster-heads as larger, stroked
/// circles. Cluster colors are spread over the hue wheel by the
/// golden-angle trick so neighboring clusters are easy to tell apart —
/// giving the same reading as the paper's Figures 2 and 3.
///
/// # Panics
///
/// Panics if the topology carries no positions.
pub fn svg_clustering(topo: &Topology, clustering: &Clustering) -> String {
    let positions = topo.positions().expect("rendering requires node positions");
    let size = 800.0;
    let margin = 20.0;
    let place = |i: usize| {
        let p = positions[i];
        (
            margin + p.x * (size - 2.0 * margin),
            // SVG y grows downward; the paper's grids grow upward.
            size - margin - p.y * (size - 2.0 * margin),
        )
    };
    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{size}\" height=\"{size}\" \
         viewBox=\"0 0 {size} {size}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    );
    // Radio links.
    let _ = writeln!(out, "<g stroke=\"#dddddd\" stroke-width=\"0.5\">");
    for (u, v) in topo.edges() {
        let (x1, y1) = place(u.index());
        let (x2, y2) = place(v.index());
        let _ = writeln!(
            out,
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\"/>"
        );
    }
    let _ = writeln!(out, "</g>");
    // Tree edges, colored by cluster.
    let _ = writeln!(out, "<g stroke-width=\"1.6\">");
    for p in topo.nodes() {
        let f = clustering.parent(p);
        if f != p {
            let (x1, y1) = place(p.index());
            let (x2, y2) = place(f.index());
            let color = cluster_color(clustering.head(p).value());
            let _ = writeln!(
                out,
                "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" stroke=\"{color}\"/>"
            );
        }
    }
    let _ = writeln!(out, "</g>");
    // Nodes.
    for p in topo.nodes() {
        let (x, y) = place(p.index());
        let color = cluster_color(clustering.head(p).value());
        if clustering.is_head(p) {
            let _ = writeln!(
                out,
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"7\" fill=\"{color}\" \
                 stroke=\"black\" stroke-width=\"2\"/>"
            );
        } else {
            let _ = writeln!(
                out,
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3.5\" fill=\"{color}\"/>"
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Renders and writes the SVG to `path`.
///
/// # Errors
///
/// Propagates any I/O error from writing the file.
pub fn write_svg_clustering(
    path: impl AsRef<Path>,
    topo: &Topology,
    clustering: &Clustering,
) -> io::Result<()> {
    std::fs::write(path, svg_clustering(topo, clustering))
}

/// A well-spread color for cluster `seed`: golden-angle hue walk.
fn cluster_color(seed: u32) -> String {
    let hue = (f64::from(seed) * 137.507_764) % 360.0;
    format!("hsl({hue:.0}, 70%, 45%)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_cluster::{oracle, OracleConfig};
    use mwn_graph::builders;

    #[test]
    fn svg_contains_every_node() {
        let topo = builders::grid(4, 4, 0.4);
        let c = oracle(&topo, &OracleConfig::default());
        let svg = svg_clustering(&topo, &c);
        assert_eq!(svg.matches("<circle").count(), 16);
        assert!(svg.contains("stroke=\"black\""), "head markers present");
    }

    #[test]
    fn heads_get_distinct_colors() {
        assert_ne!(cluster_color(0), cluster_color(1));
        assert_ne!(cluster_color(1), cluster_color(2));
    }

    #[test]
    fn write_roundtrip() {
        let topo = builders::grid(3, 3, 0.6);
        let c = oracle(&topo, &OracleConfig::default());
        let dir = std::env::temp_dir().join("mwn_viz_test.svg");
        write_svg_clustering(&dir, &topo, &c).unwrap();
        let body = std::fs::read_to_string(&dir).unwrap();
        assert!(body.starts_with("<svg"));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    #[should_panic(expected = "positions")]
    fn positionless_topology_panics() {
        let topo = mwn_graph::Topology::from_edges(2, &[(0, 1)]).unwrap();
        let c = oracle(&topo, &OracleConfig::default());
        let _ = svg_clustering(&topo, &c);
    }
}
