//! Property-based tests of the topology substrate: the structural
//! invariants of the paper's system model (Section 3) must hold for any
//! generated topology.

use mwn_graph::{builders, traversal, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing a random unit-disk topology.
fn unit_disk_strategy() -> impl Strategy<Value = Topology> {
    (1usize..80, 2u64..u64::MAX, 2u32..15).prop_map(|(n, seed, r)| {
        let mut rng = StdRng::seed_from_u64(seed);
        builders::uniform(n, f64::from(r) / 100.0, &mut rng)
    })
}

/// Strategy producing a random G(n,p) topology (non-geometric).
fn gnp_strategy() -> impl Strategy<Value = Topology> {
    (1usize..60, 2u64..u64::MAX, 0.0f64..1.0).prop_map(|(n, seed, p)| {
        let mut rng = StdRng::seed_from_u64(seed);
        builders::gnp(n, p, &mut rng)
    })
}

proptest! {
    /// Links are bidirectional: q ∈ N_p ⇔ p ∈ N_q.
    #[test]
    fn adjacency_is_symmetric(topo in unit_disk_strategy()) {
        for p in topo.nodes() {
            for &q in topo.neighbors(p) {
                prop_assert!(topo.neighbors(q).contains(&p));
            }
        }
    }

    /// p ∉ N_p: the model forbids self-loops.
    #[test]
    fn no_self_loops(topo in gnp_strategy()) {
        for p in topo.nodes() {
            prop_assert!(!topo.neighbors(p).contains(&p));
        }
    }

    /// Unit-disk edges exist exactly when distance ≤ R.
    #[test]
    fn unit_disk_edge_iff_in_range(topo in unit_disk_strategy()) {
        let radius = topo.radius().unwrap();
        let positions = topo.positions().unwrap();
        for p in topo.nodes() {
            for q in topo.nodes() {
                if p == q { continue; }
                let within = positions[p.index()].distance(positions[q.index()]) <= radius;
                prop_assert_eq!(topo.has_edge(p, q), within);
            }
        }
    }

    /// N^i_p is monotone in i and N^1_p = N_p.
    #[test]
    fn k_neighborhood_monotone(topo in gnp_strategy()) {
        for p in topo.nodes() {
            let n1 = topo.k_neighborhood(p, 1);
            prop_assert_eq!(n1.as_slice(), topo.neighbors(p));
            let mut prev = n1;
            for k in 2..5 {
                let nk = topo.k_neighborhood(p, k);
                for q in &prev {
                    prop_assert!(nk.contains(q));
                }
                prev = nk;
            }
        }
    }

    /// The i-neighborhood definition agrees with BFS distances:
    /// q ∈ N^i_p ⇔ 1 ≤ d(p, q) ≤ i.
    #[test]
    fn k_neighborhood_matches_bfs(topo in gnp_strategy(), k in 1usize..5) {
        for p in topo.nodes() {
            let nk = topo.k_neighborhood(p, k);
            let dist = traversal::bfs_distances(&topo, p);
            for q in topo.nodes() {
                let expected = match dist[q.index()] {
                    Some(d) => d >= 1 && d as usize <= k,
                    None => false,
                };
                prop_assert_eq!(nk.contains(&q), expected);
            }
        }
    }

    /// Definition-1 link counts: deg(p) ≤ links(p) ≤ deg(p)·(deg(p)+1)/2.
    #[test]
    fn neighborhood_links_bounds(topo in unit_disk_strategy()) {
        for p in topo.nodes() {
            let deg = topo.degree(p);
            let links = topo.neighborhood_links(p);
            prop_assert!(links >= deg);
            prop_assert!(links <= deg + deg * deg.saturating_sub(1) / 2);
        }
    }

    /// Edges iterator agrees with edge_count and has_edge.
    #[test]
    fn edges_iterator_consistent(topo in gnp_strategy()) {
        let edges: Vec<_> = topo.edges().collect();
        prop_assert_eq!(edges.len(), topo.edge_count());
        for (u, v) in edges {
            prop_assert!(u < v);
            prop_assert!(topo.has_edge(u, v));
            prop_assert!(topo.has_edge(v, u));
        }
    }

    /// Components partition the node set.
    #[test]
    fn components_partition_nodes(topo in gnp_strategy()) {
        let comps = traversal::connected_components(&topo);
        let mut seen = vec![false; topo.len()];
        for comp in &comps {
            for q in comp {
                prop_assert!(!seen[q.index()], "node in two components");
                seen[q.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Removing an edge then re-adding it restores the topology.
    #[test]
    fn edge_removal_roundtrip(topo in gnp_strategy()) {
        let mut edited = topo.clone();
        let edges: Vec<_> = topo.edges().collect();
        if let Some(&(u, v)) = edges.first() {
            edited.remove_edge(u, v);
            prop_assert!(!edited.has_edge(u, v));
            edited.add_edge(u, v).unwrap();
            prop_assert_eq!(edited, topo);
        }
    }

    /// Incremental unit-disk maintenance is exact: after any sequence
    /// of random moves, `apply_moves` leaves the same edge set as a
    /// full `rebuild_unit_disk_edges`, and the reported delta is the
    /// symmetric difference of the before/after edge sets.
    #[test]
    fn apply_moves_equals_full_rebuild(
        topo in unit_disk_strategy(),
        seed in 0u64..u64::MAX,
        rounds in 1usize..4,
    ) {
        use mwn_graph::Point2;
        use rand::Rng;
        let mut incremental = topo.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..rounds {
            let n = incremental.len();
            let movers = rng.random_range(0..=n.min(10));
            let moves: Vec<(NodeId, Point2)> = (0..movers)
                .map(|_| {
                    let p = NodeId::new(rng.random_range(0..n as u32));
                    (p, Point2::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                })
                .collect();
            let before: Vec<_> = incremental.edges().collect();
            let delta = incremental.apply_moves(&moves);
            let after: Vec<_> = incremental.edges().collect();
            // The delta is exactly the symmetric difference.
            for e in &delta.added {
                prop_assert!(!before.contains(e) && after.contains(e));
            }
            for e in &delta.removed {
                prop_assert!(before.contains(e) && !after.contains(e));
            }
            let churn = delta.added.len() + delta.removed.len();
            let sym_diff = before.iter().filter(|e| !after.contains(e)).count()
                + after.iter().filter(|e| !before.contains(e)).count();
            prop_assert_eq!(churn, sym_diff);
            // And the incremental graph matches a from-scratch rebuild.
            let mut reference = incremental.clone();
            reference.rebuild_unit_disk_edges();
            prop_assert_eq!(&incremental, &reference);
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |d(s,u) - d(s,v)| ≤ 1 for every edge (u,v) in the same component.
    #[test]
    fn bfs_is_metric_along_edges(topo in unit_disk_strategy()) {
        let src = NodeId::new(0);
        let dist = traversal::bfs_distances(&topo, src);
        for (u, v) in topo.edges() {
            if let (Some(du), Some(dv)) = (dist[u.index()], dist[v.index()]) {
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
    }
}
