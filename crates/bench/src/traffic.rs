//! **Traffic experiment**: the production question behind the paper's
//! clustering — how much *data* does the overlay carry, and how much
//! is lost while the control plane re-stabilizes?
//!
//! Each size point runs the same heavy-tailed workload twice over a
//! stabilized density clustering:
//!
//! * **quiet** — no faults: every injected packet must be delivered
//!   (100%), and the run is repeated with the forwarding pass forced
//!   to 4 shards to check byte-identical reports (the data plane
//!   inherits the sharded ≡ serial discipline);
//! * **churn** — a scripted fault burst isolates the workload's
//!   hottest sink mid-run and restores it after the packet TTL has
//!   passed: packets caught without a route strand, which is the
//!   reported (and asserted non-zero) loss-during-restabilization.

use mwn_cluster::{extract_clustering, ClusterConfig, DensityCluster, HierarchicalRoutes};
use mwn_graph::{builders, traversal, NodeId, Topology};
use mwn_sim::{Network, Scenario, StopWhen};
use mwn_traffic::{
    hottest_sink, run_rounds, DemandModel, FlowSpec, TrafficConfig, TrafficPlane, TrafficReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One network size's traffic measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficPoint {
    /// Poisson intensity requested.
    pub intensity: usize,
    /// Actual node count of the deployment.
    pub nodes: usize,
    /// Undirected link count.
    pub edges: usize,
    /// Node count of the giant component the workload lives in.
    pub component_nodes: usize,
    /// Steps the election needed to stabilize before traffic started.
    pub stabilization_steps: u64,
    /// The quiet (fault-free) run.
    pub quiet: TrafficReport,
    /// Quiet run repeated with the forward pass forced to 4 shards:
    /// `true` when its report is byte-identical to the serial one.
    pub sharded_identical: bool,
    /// The fault-burst run (hottest sink isolated, then restored).
    pub churn: TrafficReport,
}

fn radius_for(n: usize, degree_target: f64) -> f64 {
    (degree_target / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// Maps a workload generated over giant-component indices onto the
/// component's real node ids, so every flow is routable on a quiet
/// network.
fn remap(flows: Vec<FlowSpec>, component: &[NodeId]) -> Vec<FlowSpec> {
    flows
        .into_iter()
        .map(|f| FlowSpec {
            src: component[f.src.index()],
            dst: component[f.dst.index()],
            ..f
        })
        .collect()
}

/// Builds a stabilized control plane over `topo`; returns the network
/// and its stabilization step count.
fn stabilized_net(
    topo: &Topology,
    seed: u64,
) -> (Network<DensityCluster, mwn_radio::PerfectMedium>, u64) {
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(topo.clone())
        .seed(seed)
        .build()
        .expect("valid scenario");
    let report = net.run_to(&StopWhen::stable_for(5).within(10_000));
    let steps = report.expect_stable("the election stabilizes (Lemma 2)");
    // Drain trailing beacons so traffic starts on a silent network.
    net.run(5);
    (net, steps)
}

/// The view factory every traffic run uses: routes exist only when the
/// clustering snapshot is extractable *and* internally consistent —
/// mid-restabilization it is not, which is precisely what the plane's
/// stranded-loss accounting measures.
fn cluster_view(
    topo: &Topology,
    states: &[mwn_cluster::ClusterState],
) -> Option<HierarchicalRoutes> {
    extract_clustering(states).and_then(|c| HierarchicalRoutes::try_new(topo, c))
}

/// Runs the quiet workload on a fresh stabilized network, with the
/// forward pass forced to `shards` shards.
fn quiet_run(
    topo: &Topology,
    seed: u64,
    flows: &[FlowSpec],
    cfg: TrafficConfig,
    budget: u64,
    shards: usize,
) -> TrafficReport {
    let (mut net, _) = stabilized_net(topo, seed);
    let mut plane = TrafficPlane::new(topo.len(), cfg);
    plane.set_shards(Some(shards));
    plane.add_flows(flows);
    run_rounds(&mut net, &mut plane, budget, cluster_view)
}

/// Runs the traffic measurement at one Poisson intensity.
///
/// # Panics
///
/// Panics if the election fails to stabilize, the deployment's giant
/// component is degenerate, or the workload has no hottest sink.
pub fn run_point(intensity: usize, seed: u64, quick: bool) -> TrafficPoint {
    let radius = radius_for(intensity, 8.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = builders::poisson(intensity as f64, radius, &mut rng);
    let nodes = topo.len();
    let edges = topo.edge_count();

    let mut components = traversal::connected_components(&topo);
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let component = components.first().cloned().unwrap_or_default();
    assert!(component.len() >= 16, "degenerate giant component");

    // Heavy-tailed demand over the giant component, starts staggered
    // so the instantaneous load stays within the service capacity.
    let model = DemandModel {
        flows: (component.len() / 16).max(8),
        zipf_exponent: 0.9,
        pareto_shape: 1.5,
        mean_packets: if quick { 60.0 } else { 200.0 },
        max_packets: if quick { 600 } else { 4_000 },
        start_spread: if quick { 400 } else { 2_000 },
    };
    let flows = remap(model.generate(component.len(), seed ^ 0x7AFF), &component);

    // Quiet run: effectively unbounded queues and TTL, so the only
    // possible loss would be control-plane loss — and there is none.
    let quiet_cfg = TrafficConfig {
        queue_capacity: 1 << 20,
        service_rate: 16,
        ttl: u64::MAX / 4,
        inject_rate: 1,
    };
    let budget = model.max_packets + model.start_spread + 20_000;
    let quiet = quiet_run(&topo, seed, &flows, quiet_cfg, budget, 1);
    let sharded = quiet_run(&topo, seed, &flows, quiet_cfg, budget, 4);
    let sharded_identical = sharded.to_json() == quiet.to_json();

    // Churn run: bounded queues, a TTL shorter than the outage window,
    // and a fault burst that severs the hottest sink mid-run.
    let churn_cfg = TrafficConfig {
        queue_capacity: 256,
        service_rate: 16,
        ttl: 64,
        inject_rate: 1,
    };
    let hot = hottest_sink(&flows).expect("non-empty workload");
    let (mut net, stabilization_steps) = stabilized_net(&topo, seed);
    let mut plane = TrafficPlane::new(topo.len(), churn_cfg);
    plane.add_flows(&flows);
    // Phase A: normal operation.
    run_rounds(&mut net, &mut plane, 150, cluster_view);
    // Phase B: the burst — the hottest sink drops off the network for
    // an outage longer than the TTL, so packets caught without a
    // route age out as stranded.
    net.isolate(hot);
    run_rounds(&mut net, &mut plane, 150, cluster_view);
    // Phase C: restore and let the protocol re-stabilize; traffic
    // resumes and the backlog drains.
    net.set_topology(topo.clone()).expect("same node count");
    let churn = run_rounds(&mut net, &mut plane, budget, cluster_view);

    TrafficPoint {
        intensity,
        nodes,
        edges,
        component_nodes: component.len(),
        stabilization_steps,
        quiet,
        sharded_identical,
        churn,
    }
}

/// Runs the full size sweep.
pub fn run(sizes: &[usize], seed: u64, quick: bool) -> Vec<TrafficPoint> {
    sizes.iter().map(|&n| run_point(n, seed, quick)).collect()
}

/// Renders the results as a JSON array (hand-rolled: the vendored
/// `serde` shim has no serializer) — the `BENCH_traffic.json` payload
/// CI archives.
pub fn to_json(points: &[TrafficPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"intensity\": {}, \"nodes\": {}, \"edges\": {}, ",
                "\"component_nodes\": {}, \"stabilization_steps\": {}, ",
                "\"sharded_identical\": {}, ",
                "\"quiet\": {}, \"churn\": {}}}{}"
            ),
            p.intensity,
            p.nodes,
            p.edges,
            p.component_nodes,
            p.stabilization_steps,
            p.sharded_identical,
            p.quiet.to_json(),
            p.churn.to_json(),
            if i + 1 == points.len() { "" } else { "," }
        ));
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders a human-readable table.
pub fn render(points: &[TrafficPoint]) -> mwn_metrics::Table {
    let mut table = mwn_metrics::Table::new("Traffic over the stabilized overlay: quiet vs churn");
    let mut headers = vec!["n".to_string()];
    headers.extend(points.iter().map(|p| p.nodes.to_string()));
    table.set_headers(headers);
    let col = |f: fn(&TrafficPoint) -> f64| points.iter().map(f).collect::<Vec<_>>();
    table.add_numeric_row(
        "quiet delivered %",
        &col(|p| p.quiet.delivered_fraction * 100.0),
        2,
    );
    table.add_numeric_row("quiet throughput pkt/step", &col(|p| p.quiet.throughput), 1);
    table.add_numeric_row("quiet latency p50", &col(|p| p.quiet.latency_p50), 0);
    table.add_numeric_row("quiet latency p95", &col(|p| p.quiet.latency_p95), 0);
    table.add_numeric_row("quiet latency p99", &col(|p| p.quiet.latency_p99), 0);
    table.add_numeric_row("quiet mean hops", &col(|p| p.quiet.mean_hops), 2);
    table.add_numeric_row(
        "churn stranded pkts",
        &col(|p| p.churn.dropped_stranded as f64),
        0,
    );
    table.add_numeric_row(
        "churn overflow pkts",
        &col(|p| p.churn.dropped_overflow as f64),
        0,
    );
    table.add_numeric_row(
        "churn restab. loss %",
        &col(|p| p.churn.loss_during_restabilization * 100.0),
        3,
    );
    table.add_numeric_row(
        "sharded == serial",
        &col(|p| if p.sharded_identical { 1.0 } else { 0.0 }),
        0,
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_point_delivers_quiet_and_loses_under_churn() {
        let p = run_point(300, 11, true);
        assert!(p.nodes > 200);
        assert_eq!(
            p.quiet.delivered_fraction, 1.0,
            "quiet network must deliver everything: {:?}",
            p.quiet
        );
        assert_eq!(p.quiet.injected, p.quiet.delivered);
        assert!(p.sharded_identical, "sharded forwarding diverged");
        assert!(
            p.churn.dropped_stranded > 0,
            "fault burst produced no restabilization loss: {:?}",
            p.churn
        );
        assert!(p.churn.loss_during_restabilization > 0.0);
        assert!(p.quiet.latency_p50 <= p.quiet.latency_p95);
        assert!(p.quiet.latency_p95 <= p.quiet.latency_p99);
        assert!(p.quiet.mean_hops >= 1.0);
    }

    #[test]
    fn json_embeds_both_reports() {
        let p = run_point(200, 3, true);
        let json = to_json(&[p]);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert!(json.contains("\"quiet\": {"));
        assert!(json.contains("\"churn\": {"));
        assert!(json.contains("\"loss_during_restabilization\""));
        assert!(!render(&[run_point(200, 3, true)]).to_string().is_empty());
    }
}
