//! The continuous-time engine's scaling story: once a silent protocol
//! stabilizes, the rewritten `EventDriver`'s queue drains — a quiet
//! interval processes zero events and zero messages, while the eager
//! reference keeps firing O(n) beacon slots per period.
//!
//! ```sh
//! cargo run --release -p mwn-bench --bin scaling_events             # 1k/10k/50k
//! cargo run --release -p mwn-bench --bin scaling_events -- --quick  # 1k (CI smoke)
//! ```
//!
//! Writes `BENCH_events.json` next to the working directory.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes: Vec<usize> = if quick {
        vec![1_000]
    } else {
        vec![1_000, 10_000, 50_000]
    };
    let quiet_periods = if quick { 500.0 } else { 2_000.0 };
    let points = mwn_bench::scaling_events::run(&sizes, 20050610, quiet_periods);
    println!("{}", mwn_bench::scaling_events::render(&points));
    for p in &points {
        assert_eq!(
            p.quiet_messages_gated, 0,
            "silence violated at n = {}",
            p.nodes
        );
        assert_eq!(
            p.quiet_events_gated, 0,
            "O(active) violated at n = {}: events fired during a quiet interval",
            p.nodes
        );
    }
    let json = mwn_bench::scaling_events::to_json(&points);
    let path = "BENCH_events.json";
    std::fs::write(path, &json).expect("write BENCH_events.json");
    println!("\nwrote {path}");
}
