use mwn_cluster::Clustering;

/// Renders a grid clustering as ASCII art: one character per node,
/// letters cycling per cluster, heads upper-cased and members
/// lower-cased. Row 0 (bottom of the paper's grids) is printed last so
/// the picture matches the paper's orientation.
///
/// Node `(x, y)` must have id `y * nx + x` (the layout produced by
/// `mwn_graph::builders::grid`).
///
/// # Panics
///
/// Panics if `nx * ny` differs from the clustering's node count.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{oracle, OracleConfig};
/// use mwn_graph::builders;
/// use mwn_viz::ascii_grid_clustering;
///
/// let topo = builders::grid(5, 4, 0.3);
/// let clustering = oracle(&topo, &OracleConfig::default());
/// let art = ascii_grid_clustering(&clustering, 5, 4);
/// assert_eq!(art.lines().count(), 4);
/// ```
pub fn ascii_grid_clustering(clustering: &Clustering, nx: usize, ny: usize) -> String {
    assert_eq!(
        nx * ny,
        clustering.len(),
        "grid dimensions must match the clustering"
    );
    // Stable letter per head: position in the sorted head list.
    let heads = clustering.heads();
    let letter_of = |head: mwn_graph::NodeId| -> char {
        let idx = heads.binary_search(&head).unwrap_or(0);
        (b'a' + (idx % 26) as u8) as char
    };
    let mut out = String::with_capacity((nx + 1) * ny);
    for y in (0..ny).rev() {
        for x in 0..nx {
            let p = mwn_graph::NodeId::new((y * nx + x) as u32);
            let c = letter_of(clustering.head(p));
            out.push(if clustering.is_head(p) {
                c.to_ascii_uppercase()
            } else {
                c
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_cluster::{oracle, OracleConfig};
    use mwn_graph::builders;

    #[test]
    fn dimensions_match() {
        let topo = builders::grid(6, 3, 0.4);
        let c = oracle(&topo, &OracleConfig::default());
        let art = ascii_grid_clustering(&c, 6, 3);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 6));
    }

    #[test]
    fn exactly_one_uppercase_per_cluster() {
        let topo = builders::grid(5, 5, 0.3);
        let c = oracle(&topo, &OracleConfig::default());
        let art = ascii_grid_clustering(&c, 5, 5);
        let uppers = art.chars().filter(|ch| ch.is_ascii_uppercase()).count();
        assert_eq!(uppers, c.head_count());
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn wrong_dimensions_panic() {
        let topo = builders::grid(4, 4, 0.4);
        let c = oracle(&topo, &OracleConfig::default());
        let _ = ascii_grid_clustering(&c, 3, 3);
    }
}
