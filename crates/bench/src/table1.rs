//! **Table 1 + Figure 1**: the illustrative example — per-node
//! neighbor counts, link counts and densities on the reconstructed
//! Figure 1 graph, and the resulting two-cluster organization.

use mwn_cluster::{density_of, oracle, OracleConfig};
use mwn_graph::builders::{fig1_example, FIG1_LABELS};
use mwn_graph::NodeId;
use mwn_metrics::Table;

/// One row of Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// The paper's node label (a–j).
    pub label: char,
    /// `|N_p|`.
    pub neighbors: usize,
    /// Links of Definition 1.
    pub links: usize,
    /// The density `d_p`.
    pub density: f64,
}

/// The full experiment output: the density table and the clusters.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Result {
    /// Rows in the paper's label order (a, b, c, d, e, f, h, i, j).
    pub rows: Vec<Table1Row>,
    /// `(head label, member labels)` per cluster.
    pub clusters: Vec<(char, Vec<char>)>,
}

/// Runs the Table 1 computation.
pub fn run() -> Table1Result {
    let topo = fig1_example();
    let by_label = |c: char| NodeId::new(FIG1_LABELS.iter().position(|&l| l == c).unwrap() as u32);
    // The paper's row order (it omits g from the table).
    let rows = "abcdefhij"
        .chars()
        .map(|label| {
            let p = by_label(label);
            Table1Row {
                label,
                neighbors: topo.degree(p),
                links: topo.neighborhood_links(p),
                density: density_of(&topo, p).as_f64(),
            }
        })
        .collect();
    let clustering = oracle(&topo, &OracleConfig::default());
    let clusters = clustering
        .clusters()
        .into_iter()
        .map(|(head, members)| {
            (
                FIG1_LABELS[head.index()],
                members
                    .into_iter()
                    .map(|p| FIG1_LABELS[p.index()])
                    .collect(),
            )
        })
        .collect();
    Table1Result { rows, clusters }
}

/// Formats the result in the paper's layout.
pub fn render(result: &Table1Result) -> Table {
    let mut table = Table::new("Table 1: heuristic results on the illustrative example (Fig. 1)");
    let mut headers = vec!["Nodes".to_string()];
    headers.extend(result.rows.iter().map(|r| r.label.to_string()));
    table.set_headers(headers);
    table.add_row(
        "# Neighbors",
        result
            .rows
            .iter()
            .map(|r| r.neighbors.to_string())
            .collect(),
    );
    table.add_row(
        "# Links",
        result.rows.iter().map(|r| r.links.to_string()).collect(),
    );
    table.add_row(
        "1-density",
        result
            .rows
            .iter()
            .map(|r| format!("{:.2}", r.density))
            .collect(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_values() {
        let result = run();
        // Paper Table 1, with the documented exception of node d.
        let expect = [
            ('a', 2, 2, 1.0),
            ('b', 4, 5, 1.25),
            ('c', 1, 1, 1.0),
            ('d', 3, 3, 1.0), // paper prints 4/5/1.25; see EXPERIMENTS.md
            ('e', 1, 1, 1.0),
            ('f', 2, 3, 1.5),
            ('h', 2, 3, 1.5),
            ('i', 4, 5, 1.25),
            ('j', 2, 3, 1.5),
        ];
        for ((label, nbrs, links, dens), row) in expect.iter().zip(&result.rows) {
            assert_eq!(row.label, *label);
            assert_eq!(row.neighbors, *nbrs, "neighbors of {label}");
            assert_eq!(row.links, *links, "links of {label}");
            assert!((row.density - dens).abs() < 1e-12, "density of {label}");
        }
    }

    #[test]
    fn clusters_match_figure_1_right_side() {
        let result = run();
        assert_eq!(result.clusters.len(), 2);
        let heads: Vec<char> = result.clusters.iter().map(|(h, _)| *h).collect();
        assert!(heads.contains(&'h'));
        assert!(heads.contains(&'j'));
        let j_cluster = &result.clusters.iter().find(|(h, _)| *h == 'j').unwrap().1;
        assert!(j_cluster.contains(&'f'));
        assert!(j_cluster.contains(&'g'));
    }

    #[test]
    fn render_includes_all_labels() {
        let table = render(&run());
        let s = table.to_string();
        assert!(s.contains("1-density"));
        assert!(s.contains("1.25"));
    }
}
