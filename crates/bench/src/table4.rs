//! **Table 4**: cluster features on random geometric graphs — number
//! of clusters, mean cluster-head eccentricity ẽ(H(u)/C(u)) and mean
//! clusterization tree length, with and without the DAG renaming, for
//! λ = 1000 and R ∈ {0.05, 0.08, 0.1}.
//!
//! The paper's observation: on random deployments the DAG brings
//! little (densities are rarely equal, so the id tie-break is rarely
//! exercised) — both columns should be nearly identical.

use mwn_cluster::{oracle, ClusteringStats, DagVariant, OracleConfig};
use mwn_graph::builders;
use mwn_metrics::{RunningStats, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{gamma_for, run_dag, ExperimentScale, TABLE45_RADII};

/// The three Table 4/5 statistics for one configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClusterFeatures {
    /// Mean number of clusters.
    pub clusters: f64,
    /// Mean cluster-head eccentricity.
    pub eccentricity: f64,
    /// Mean clusterization tree length.
    pub tree_length: f64,
}

/// Table 4 (or 5) content: per radius, features with and without DAG.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterFeatureTable {
    /// The transmission ranges measured.
    pub radii: Vec<f64>,
    /// Features with the DAG renaming enabled.
    pub with_dag: Vec<ClusterFeatures>,
    /// Features with plain unique-id tie-breaks.
    pub without_dag: Vec<ClusterFeatures>,
}

/// Computes the stable clustering's features for one deployment,
/// optionally running N1 first to obtain DAG tie-break ids.
///
/// The distributed protocol provably stabilizes to the [`oracle`]
/// fixpoint (a tested invariant), so the 1000-run feature averages are
/// computed from the oracle — the DAG renaming, whose outcome is
/// genuinely distributed, *is* simulated.
pub fn features_one_run(
    topo: mwn_graph::Topology,
    with_dag: bool,
    seed: u64,
) -> Option<ClusterFeatures> {
    let tiebreak = if with_dag {
        let gamma = gamma_for(&topo);
        let (names, _) = run_dag(
            topo.clone(),
            gamma,
            DagVariant::SmallestIdRedraws,
            seed,
            1000,
        );
        Some(names)
    } else {
        None
    };
    let clustering = oracle(
        &topo,
        &OracleConfig {
            tiebreak,
            ..OracleConfig::default()
        },
    );
    let stats = ClusteringStats::of(&topo, &clustering)?;
    Some(ClusterFeatures {
        clusters: stats.clusters,
        eccentricity: stats.mean_head_eccentricity,
        tree_length: stats.mean_tree_length,
    })
}

/// Runs the Table 4 experiment.
pub fn run(scale: ExperimentScale) -> ClusterFeatureTable {
    let mut result = ClusterFeatureTable {
        radii: TABLE45_RADII.to_vec(),
        ..ClusterFeatureTable::default()
    };
    for &radius in &TABLE45_RADII {
        for with_dag in [true, false] {
            let runs = scale.sweep_with(scale.seed ^ 0x44AA).map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let topo = builders::poisson(scale.lambda, radius, &mut rng);
                features_one_run(topo, with_dag, seed)
            });
            let mut clusters = RunningStats::new();
            let mut ecc = RunningStats::new();
            let mut tree = RunningStats::new();
            for f in runs.into_iter().flatten() {
                clusters.push(f.clusters);
                ecc.push(f.eccentricity);
                tree.push(f.tree_length);
            }
            let features = ClusterFeatures {
                clusters: clusters.mean(),
                eccentricity: ecc.mean(),
                tree_length: tree.mean(),
            };
            if with_dag {
                result.with_dag.push(features);
            } else {
                result.without_dag.push(features);
            }
        }
    }
    result
}

/// Formats a cluster-feature table in the paper's layout.
pub fn render(title: &str, result: &ClusterFeatureTable) -> Table {
    let mut table = Table::new(title);
    let mut headers = vec!["".to_string()];
    for r in &result.radii {
        headers.push(format!("R={r} DAG"));
        headers.push(format!("R={r} noDAG"));
    }
    table.set_headers(headers);
    let row = |f: fn(&ClusterFeatures) -> f64| -> Vec<f64> {
        result
            .radii
            .iter()
            .enumerate()
            .flat_map(|(i, _)| [f(&result.with_dag[i]), f(&result.without_dag[i])])
            .collect()
    };
    table.add_numeric_row("# clusters", &row(|f| f.clusters), 1);
    table.add_numeric_row("e~(H(u)/C(u))", &row(|f| f.eccentricity), 1);
    table.add_numeric_row("avg tree length", &row(|f| f.tree_length), 1);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_geometry_features_have_paper_shape() {
        let result = run(ExperimentScale {
            runs: 8,
            lambda: 500.0,
            ..ExperimentScale::quick()
        });
        for i in 0..result.radii.len() {
            let (w, wo) = (&result.with_dag[i], &result.without_dag[i]);
            // The paper's key observation: on random geometry the DAG
            // changes almost nothing.
            assert!(
                (w.clusters - wo.clusters).abs() <= wo.clusters * 0.25 + 2.0,
                "R={}: DAG {} vs noDAG {} clusters",
                result.radii[i],
                w.clusters,
                wo.clusters
            );
            assert!(w.clusters >= 1.0);
            assert!(w.eccentricity < 10.0, "eccentricity stays small");
            assert!(w.tree_length < 12.0, "tree length stays small");
        }
        // More range ⇒ fewer clusters (paper: 61 → 19 → 12).
        let c: Vec<f64> = result.without_dag.iter().map(|f| f.clusters).collect();
        assert!(
            c[0] > c[1] && c[1] > c[2],
            "clusters must shrink with R: {c:?}"
        );
    }

    #[test]
    fn render_layout() {
        let features = ClusterFeatures {
            clusters: 61.0,
            eccentricity: 2.6,
            tree_length: 2.7,
        };
        let result = ClusterFeatureTable {
            radii: vec![0.05],
            with_dag: vec![features],
            without_dag: vec![features],
        };
        let s = render("Table 4", &result).to_string();
        assert!(s.contains("61.0"));
        assert!(s.contains("# clusters"));
    }
}
