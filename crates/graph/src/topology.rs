use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId, Point2};

/// The edge churn produced by one incremental topology mutation
/// ([`Topology::apply_moves`]): which links appeared, which vanished,
/// and which nodes moved.
///
/// Each undirected edge is reported exactly once as `(u, v)` with
/// `u < v`. Activity-driven simulation drivers consume deltas to wake
/// only the nodes a mobility step actually touched, instead of
/// rescheduling the whole network.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopologyDelta {
    /// Links that came into radio range, each as `(u, v)` with `u < v`.
    pub added: Vec<(NodeId, NodeId)>,
    /// Links that left radio range, each as `(u, v)` with `u < v`.
    pub removed: Vec<(NodeId, NodeId)>,
    /// Nodes whose position changed (whether or not any link changed).
    pub moved: Vec<NodeId>,
}

impl TopologyDelta {
    /// `true` when no link changed (positions may still have moved).
    pub fn is_quiet(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Every node incident to an added or removed link, sorted and
    /// deduplicated — the set a scheduler must mark dirty.
    pub fn touched(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .added
            .iter()
            .chain(&self.removed)
            .flat_map(|&(u, v)| [u, v])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Empties the delta while keeping its buffers.
    pub fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
        self.moved.clear();
    }
}

/// Spatial hash over node positions with cells of side `cell` (the
/// radio range): the 1-neighbors of any point live in the 3×3 block of
/// cells around it. Kept alongside the adjacency lists so moving a few
/// nodes re-bins only those nodes instead of rebuilding the hash.
#[derive(Clone, Debug)]
struct SpatialGrid {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<u32>>,
}

impl SpatialGrid {
    fn cell_of(cell: f64, p: Point2) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    fn build(positions: &[Point2], cell: f64) -> Self {
        let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, &p) in positions.iter().enumerate() {
            buckets
                .entry(Self::cell_of(cell, p))
                .or_default()
                .push(i as u32);
        }
        SpatialGrid { cell, buckets }
    }

    /// Re-bins node `i` from position `from` to position `to`.
    fn relocate(&mut self, i: u32, from: Point2, to: Point2) {
        let old_cell = Self::cell_of(self.cell, from);
        let new_cell = Self::cell_of(self.cell, to);
        if old_cell == new_cell {
            return;
        }
        if let Some(bucket) = self.buckets.get_mut(&old_cell) {
            if let Some(pos) = bucket.iter().position(|&x| x == i) {
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.buckets.remove(&old_cell);
                }
            }
        }
        self.buckets.entry(new_cell).or_default().push(i);
    }

    /// All nodes within `radius` of `p` (excluding `skip`), sorted.
    fn neighbors_of(&self, positions: &[Point2], p: Point2, radius: f64, skip: u32) -> Vec<NodeId> {
        let (cx, cy) = Self::cell_of(self.cell, p);
        let r2 = radius * radius;
        let mut out = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &j in bucket {
                    if j != skip && p.distance_squared(positions[j as usize]) <= r2 {
                        out.push(NodeId::new(j));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// An undirected network graph with optional node positions.
///
/// This is the paper's system model (Section 3): a set `V` of nodes,
/// each node `p` with a neighborhood `N_p ⊆ V` determined by radio
/// range, bidirectional links (`q ∈ N_p ⇔ p ∈ N_q`) and no self-loops
/// (`p ∉ N_p`). Adjacency lists are kept sorted so membership tests are
/// logarithmic and iteration order is deterministic.
///
/// # Examples
///
/// ```
/// use mwn_graph::{NodeId, Topology};
///
/// let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(topo.degree(NodeId::new(1)), 2);
/// assert!(topo.has_edge(NodeId::new(2), NodeId::new(1)));
/// assert_eq!(topo.edge_count(), 3);
/// # Ok::<(), mwn_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    adj: Vec<Vec<NodeId>>,
    positions: Option<Vec<Point2>>,
    radius: Option<f64>,
    /// Cached spatial hash for incremental unit-disk maintenance.
    /// Rebuilt lazily; never part of equality or serialization.
    grid: Option<SpatialGrid>,
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        // The grid is derived state: two topologies are equal iff their
        // graphs (and geometry) are.
        self.adj == other.adj && self.positions == other.positions && self.radius == other.radius
    }
}

impl Topology {
    /// Creates a topology with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Topology {
            adj: vec![Vec::new(); n],
            positions: None,
            radius: None,
            grid: None,
        }
    }

    /// Creates a topology from an explicit undirected edge list.
    ///
    /// Duplicate edges are collapsed. The resulting topology has no
    /// positions; attach them later with [`Topology::with_positions`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`
    /// and [`GraphError::SelfLoop`] for an edge `(u, u)`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut topo = Topology::empty(n);
        for &(u, v) in edges {
            topo.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(topo)
    }

    /// Creates the unit-disk graph over `positions`: nodes `p` and `q`
    /// are linked iff their Euclidean distance is at most `radius`.
    ///
    /// This is how the paper deploys its simulation topologies: points
    /// in the unit square with transmission ranges `R ∈ [0.05, 0.1]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidRadius`] if `radius` is not finite
    /// and positive.
    pub fn unit_disk(positions: Vec<Point2>, radius: f64) -> Result<Self, GraphError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(GraphError::InvalidRadius { radius });
        }
        let n = positions.len();
        let mut topo = Topology {
            adj: vec![Vec::new(); n],
            positions: Some(positions),
            radius: Some(radius),
            grid: None,
        };
        topo.rebuild_unit_disk_edges();
        Ok(topo)
    }

    /// Attaches positions to an edge-list topology (e.g. for rendering).
    ///
    /// # Panics
    ///
    /// Panics if `positions.len()` differs from the node count.
    pub fn with_positions(mut self, positions: Vec<Point2>) -> Self {
        assert_eq!(
            positions.len(),
            self.adj.len(),
            "positions must cover every node"
        );
        self.positions = Some(positions);
        self.grid = None;
        self
    }

    /// Recomputes all unit-disk edges from the current positions.
    ///
    /// Used by the mobility substrate after moving nodes. A spatial
    /// hash grid keeps the rebuild near-linear in the node count for
    /// the sparse deployments the paper considers.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no positions or no radius (i.e. it was
    /// not built by [`Topology::unit_disk`]).
    pub fn rebuild_unit_disk_edges(&mut self) {
        let radius = self.radius.expect("unit-disk rebuild requires a radius");
        let positions = self
            .positions
            .as_ref()
            .expect("unit-disk rebuild requires positions");
        let n = positions.len();
        for list in &mut self.adj {
            list.clear();
        }
        if n == 0 {
            self.grid = Some(SpatialGrid::build(&[], radius));
            return;
        }
        // Spatial hash: cells of side `radius`, so neighbors of a point
        // can only live in the 3×3 block of cells around it. The hash
        // is kept for [`Topology::apply_moves`] to update incrementally.
        let grid = SpatialGrid::build(positions, radius);
        let r2 = radius * radius;
        for (i, &p) in positions.iter().enumerate() {
            let (cx, cy) = SpatialGrid::cell_of(radius, p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = grid.buckets.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in bucket {
                        if (j as usize) > i && p.distance_squared(positions[j as usize]) <= r2 {
                            self.adj[i].push(NodeId::new(j));
                            self.adj[j as usize].push(NodeId::new(i as u32));
                        }
                    }
                }
            }
        }
        for list in &mut self.adj {
            list.sort_unstable();
        }
        self.grid = Some(grid);
    }

    /// Moves the given nodes and incrementally updates the unit-disk
    /// edge set, re-binning only the moved nodes in the cached spatial
    /// hash. Returns the exact edge churn as a [`TopologyDelta`].
    ///
    /// Only links incident to a moved node can change, so the cost is
    /// proportional to the moved set (and its local density) instead of
    /// the whole network — `rebuild_unit_disk_edges` stays O(n) and is
    /// only needed after wholesale position rewrites.
    ///
    /// The result is always identical to calling
    /// [`Topology::rebuild_unit_disk_edges`] after the same moves
    /// (property-tested in `tests/properties.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no positions or radius (it was not
    /// built by [`Topology::unit_disk`]) or if a moved node is out of
    /// range.
    pub fn apply_moves(&mut self, moves: &[(NodeId, Point2)]) -> TopologyDelta {
        let radius = self.radius.expect("apply_moves requires a radius");
        assert!(
            self.positions.is_some(),
            "apply_moves requires node positions"
        );
        let mut delta = TopologyDelta::default();
        if moves.is_empty() {
            return delta;
        }
        if self.grid.is_none() {
            // Positions were rewritten wholesale since the last
            // rebuild; pay O(n) once, then go incremental.
            let positions = self.positions.as_ref().expect("checked above");
            self.grid = Some(SpatialGrid::build(positions, radius));
        }
        let grid = self.grid.as_mut().expect("built above");
        let positions = self.positions.as_mut().expect("checked above");
        // Phase 1: re-bin every moved node, so neighborhood queries in
        // phase 2 see the final geometry no matter the move order.
        for &(p, to) in moves {
            let from = positions[p.index()];
            if from == to {
                continue;
            }
            grid.relocate(p.value(), from, to);
            positions[p.index()] = to;
            delta.moved.push(p);
        }
        // Phase 2: recompute each moved node's neighborhood and diff it
        // against the adjacency list. Links between two unmoved nodes
        // cannot have changed.
        let mut adds: Vec<(NodeId, NodeId)> = Vec::new();
        let mut removes: Vec<(NodeId, NodeId)> = Vec::new();
        for &p in &delta.moved {
            let grid = self.grid.as_ref().expect("built above");
            let positions = self.positions.as_ref().expect("checked above");
            let want = grid.neighbors_of(positions, positions[p.index()], radius, p.value());
            let have = &self.adj[p.index()];
            // Both lists are sorted: two-pointer diff.
            let (mut i, mut j) = (0, 0);
            adds.clear();
            removes.clear();
            while i < have.len() || j < want.len() {
                match (have.get(i), want.get(j)) {
                    (Some(&h), Some(&w)) if h == w => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&h), Some(&w)) if h < w => {
                        removes.push((p, h));
                        i += 1;
                    }
                    (Some(_), Some(&w)) => {
                        adds.push((p, w));
                        j += 1;
                    }
                    (Some(&h), None) => {
                        removes.push((p, h));
                        i += 1;
                    }
                    (None, Some(&w)) => {
                        adds.push((p, w));
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            // When both endpoints moved, the first one processed
            // already fixed the edge; the has_edge guards keep the
            // delta duplicate-free.
            for &(u, v) in &removes {
                if self.has_edge(u, v) {
                    self.remove_edge(u, v);
                    delta.removed.push((u.min(v), u.max(v)));
                }
            }
            for &(u, v) in &adds {
                if !self.has_edge(u, v) {
                    self.add_edge(u, v).expect("grid candidates are in range");
                    delta.added.push((u.min(v), u.max(v)));
                }
            }
        }
        delta.added.sort_unstable();
        delta.removed.sort_unstable();
        delta
    }

    /// Adds the undirected edge `(u, v)`; a no-op if already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let n = self.adj.len();
        for node in [u, v] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfRange { node, len: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if let Err(pos) = self.adj[u.index()].binary_search(&v) {
            self.adj[u.index()].insert(pos, v);
            let pos = self.adj[v.index()]
                .binary_search(&u)
                .expect_err("adjacency lists must stay symmetric");
            self.adj[v.index()].insert(pos, u);
        }
        Ok(())
    }

    /// Removes the undirected edge `(u, v)`; a no-op if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        if u.index() >= self.adj.len() || v.index() >= self.adj.len() {
            return;
        }
        if let Ok(pos) = self.adj[u.index()].binary_search(&v) {
            self.adj[u.index()].remove(pos);
            if let Ok(pos) = self.adj[v.index()].binary_search(&u) {
                self.adj[v.index()].remove(pos);
            }
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterator over all node identifiers, in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId::new)
    }

    /// The 1-neighborhood `N_p`, sorted by identifier. `p ∉ N_p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn neighbors(&self, p: NodeId) -> &[NodeId] {
        &self.adj[p.index()]
    }

    /// The degree `|N_p|`.
    #[inline]
    pub fn degree(&self, p: NodeId) -> usize {
        self.adj[p.index()].len()
    }

    /// The maximum degree `δ` over all nodes (0 for an empty graph).
    ///
    /// The paper assumes a known constant `δ` bounding every `|N_p|`;
    /// the DAG name space γ is sized from it (|γ| = δ or δ²).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean degree over all nodes (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        let total: usize = self.adj.iter().map(Vec::len).sum();
        total as f64 / self.adj.len() as f64
    }

    /// `true` iff `u` and `v` are linked.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Iterator over undirected edges, each reported once as `(u, v)`
    /// with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            topo: self,
            node: 0,
            pos: 0,
        }
    }

    /// The i-neighborhood `N^i_p` of Section 3: all nodes reachable from
    /// `p` in at most `i` hops, excluding `p` itself. Sorted by id.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwn_graph::{NodeId, Topology};
    ///
    /// let line = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
    /// let n2 = line.k_neighborhood(NodeId::new(0), 2);
    /// assert_eq!(n2, vec![NodeId::new(1), NodeId::new(2)]);
    /// # Ok::<(), mwn_graph::GraphError>(())
    /// ```
    pub fn k_neighborhood(&self, p: NodeId, k: usize) -> Vec<NodeId> {
        let mut seen = vec![false; self.adj.len()];
        seen[p.index()] = true;
        let mut frontier = vec![p];
        let mut out = Vec::new();
        for _ in 0..k {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        out.push(v);
                        next.push(v);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out.sort_unstable();
        out
    }

    /// The 2-neighborhood `N²_p`, used by the fusion rule of
    /// Section 4.3. Equivalent to `k_neighborhood(p, 2)`.
    pub fn two_hop_neighborhood(&self, p: NodeId) -> Vec<NodeId> {
        self.k_neighborhood(p, 2)
    }

    /// Counts the links of Definition 1: edges `(v, w)` with `v ∈ N_p`
    /// and `w ∈ {p} ∪ N_p`, each undirected edge counted once. This is
    /// `deg(p)` plus the number of edges among `p`'s neighbors.
    pub fn neighborhood_links(&self, p: NodeId) -> usize {
        let nbrs = self.neighbors(p);
        let mut count = nbrs.len();
        for (i, &u) in nbrs.iter().enumerate() {
            for &v in &nbrs[i + 1..] {
                if self.has_edge(u, v) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Position of node `p`, if the topology carries positions.
    pub fn position(&self, p: NodeId) -> Option<Point2> {
        self.positions.as_ref().map(|ps| ps[p.index()])
    }

    /// All node positions, if present.
    pub fn positions(&self) -> Option<&[Point2]> {
        self.positions.as_deref()
    }

    /// Mutable access to node positions (used by mobility models).
    /// Call [`Topology::rebuild_unit_disk_edges`] afterwards; prefer
    /// [`Topology::apply_moves`], which re-bins only the moved nodes.
    pub fn positions_mut(&mut self) -> Option<&mut [Point2]> {
        // Arbitrary rewrites invalidate the cached spatial hash.
        self.grid = None;
        self.positions.as_deref_mut()
    }

    /// The radio range, if the topology is a unit-disk graph.
    pub fn radius(&self) -> Option<f64> {
        self.radius
    }
}

/// Iterator over the undirected edges of a [`Topology`], created by
/// [`Topology::edges`]. Each edge appears once as `(u, v)` with `u < v`.
#[derive(Debug)]
pub struct Edges<'a> {
    topo: &'a Topology,
    node: u32,
    pos: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if (self.node as usize) >= self.topo.adj.len() {
                return None;
            }
            let u = NodeId::new(self.node);
            let list = &self.topo.adj[u.index()];
            while self.pos < list.len() {
                let v = list[self.pos];
                self.pos += 1;
                if u < v {
                    return Some((u, v));
                }
            }
            self.node += 1;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Topology::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2), (1, 0)]).unwrap();
        assert_eq!(topo.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(
            topo.neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(topo.edge_count(), 2);
    }

    #[test]
    fn self_loop_is_rejected() {
        assert_eq!(
            Topology::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(matches!(
            Topology::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn unit_disk_links_by_distance() {
        let positions = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.05, 0.0),
            Point2::new(0.2, 0.0),
        ];
        let topo = Topology::unit_disk(positions, 0.06).unwrap();
        assert!(topo.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!topo.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!topo.has_edge(NodeId::new(1), NodeId::new(2)));
        assert_eq!(topo.radius(), Some(0.06));
    }

    #[test]
    fn unit_disk_rejects_bad_radius() {
        assert!(matches!(
            Topology::unit_disk(vec![], 0.0),
            Err(GraphError::InvalidRadius { .. })
        ));
        assert!(matches!(
            Topology::unit_disk(vec![], f64::NAN),
            Err(GraphError::InvalidRadius { .. })
        ));
    }

    #[test]
    fn remove_edge_is_symmetric() {
        let mut topo = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        topo.remove_edge(NodeId::new(1), NodeId::new(0));
        assert!(!topo.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(topo.neighbors(NodeId::new(0)).is_empty());
        assert_eq!(topo.edge_count(), 1);
        // removing a missing edge is a no-op
        topo.remove_edge(NodeId::new(0), NodeId::new(2));
        assert_eq!(topo.edge_count(), 1);
    }

    #[test]
    fn k_neighborhood_grows_monotonically() {
        let topo = line(6);
        let p = NodeId::new(0);
        let mut prev = 0;
        for k in 1..=6 {
            let nk = topo.k_neighborhood(p, k).len();
            assert!(nk >= prev);
            prev = nk;
        }
        assert_eq!(topo.k_neighborhood(p, 5).len(), 5);
        assert_eq!(topo.k_neighborhood(p, 50).len(), 5);
    }

    #[test]
    fn neighborhood_links_counts_definition_one() {
        // Triangle plus a pendant: for the pendant node p, N_p = {0},
        // links = just the edge (p, 0).
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]).unwrap();
        assert_eq!(topo.neighborhood_links(NodeId::new(3)), 1);
        // For node 0: N_0 = {1, 2, 3}; edges to them = 3, plus (1,2) = 4.
        assert_eq!(topo.neighborhood_links(NodeId::new(0)), 4);
        // For node 1: N_1 = {0, 2}; edges to them = 2, plus (0,2) = 3.
        assert_eq!(topo.neighborhood_links(NodeId::new(1)), 3);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let edges: Vec<_> = topo.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in edges {
            assert!(u < v);
            assert!(topo.has_edge(u, v));
        }
    }

    #[test]
    fn rebuild_after_moving_positions() {
        let positions = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let mut topo = Topology::unit_disk(positions, 0.1).unwrap();
        assert_eq!(topo.edge_count(), 0);
        topo.positions_mut().unwrap()[1] = Point2::new(0.05, 0.0);
        topo.rebuild_unit_disk_edges();
        assert_eq!(topo.edge_count(), 1);
    }

    #[test]
    fn apply_moves_matches_full_rebuild() {
        let positions = vec![
            Point2::new(0.1, 0.1),
            Point2::new(0.15, 0.1),
            Point2::new(0.5, 0.5),
            Point2::new(0.55, 0.5),
        ];
        let mut topo = Topology::unit_disk(positions, 0.08).unwrap();
        assert_eq!(topo.edge_count(), 2);
        // Move node 1 next to node 2: loses (0,1), gains (1,2) and (1,3).
        let moves = vec![(NodeId::new(1), Point2::new(0.52, 0.48))];
        let delta = topo.apply_moves(&moves);
        assert_eq!(delta.removed, vec![(NodeId::new(0), NodeId::new(1))]);
        assert_eq!(
            delta.added,
            vec![
                (NodeId::new(1), NodeId::new(2)),
                (NodeId::new(1), NodeId::new(3)),
            ]
        );
        assert_eq!(delta.moved, vec![NodeId::new(1)]);
        let mut reference = topo.clone();
        reference.rebuild_unit_disk_edges();
        assert_eq!(topo, reference, "incremental must equal full rebuild");
    }

    #[test]
    fn apply_moves_of_both_endpoints_reports_each_edge_once() {
        let positions = vec![Point2::new(0.1, 0.1), Point2::new(0.9, 0.9)];
        let mut topo = Topology::unit_disk(positions, 0.1).unwrap();
        let delta = topo.apply_moves(&[
            (NodeId::new(0), Point2::new(0.5, 0.5)),
            (NodeId::new(1), Point2::new(0.52, 0.5)),
        ]);
        assert_eq!(delta.added, vec![(NodeId::new(0), NodeId::new(1))]);
        assert!(delta.removed.is_empty());
        assert_eq!(delta.touched(), vec![NodeId::new(0), NodeId::new(1)]);
        assert!(topo.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn apply_moves_without_displacement_is_quiet() {
        let positions = vec![Point2::new(0.2, 0.2), Point2::new(0.25, 0.2)];
        let mut topo = Topology::unit_disk(positions, 0.1).unwrap();
        let delta = topo.apply_moves(&[(NodeId::new(0), Point2::new(0.2, 0.2))]);
        assert!(delta.is_quiet());
        assert!(delta.moved.is_empty());
        let delta = topo.apply_moves(&[]);
        assert!(delta.is_quiet());
    }

    #[test]
    fn apply_moves_after_positions_mut_rebuilds_the_grid() {
        let positions = vec![Point2::new(0.1, 0.1), Point2::new(0.9, 0.9)];
        let mut topo = Topology::unit_disk(positions, 0.1).unwrap();
        // Wholesale rewrite through positions_mut invalidates the hash…
        topo.positions_mut().unwrap()[0] = Point2::new(0.85, 0.9);
        topo.rebuild_unit_disk_edges();
        assert_eq!(topo.edge_count(), 1);
        // …after which incremental maintenance still works.
        let delta = topo.apply_moves(&[(NodeId::new(0), Point2::new(0.1, 0.1))]);
        assert_eq!(delta.removed.len(), 1);
        assert_eq!(topo.edge_count(), 0);
    }

    #[test]
    fn empty_topology_properties() {
        let topo = Topology::empty(0);
        assert!(topo.is_empty());
        assert_eq!(topo.max_degree(), 0);
        assert_eq!(topo.mean_degree(), 0.0);
        assert_eq!(topo.edges().count(), 0);
    }

    #[test]
    fn mean_and_max_degree() {
        let topo = Topology::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(topo.max_degree(), 3);
        assert!((topo.mean_degree() - 1.5).abs() < 1e-12);
    }
}
