//! Binomial-proportion confidence intervals for convergence-probability
//! experiments.
//!
//! Weak/probabilistic stabilization experiments (Devismes et al.)
//! estimate "the system stabilizes within k steps with probability p"
//! from Bernoulli trials over seeds. The Wilson score interval is the
//! standard small-sample interval for such proportions: unlike the
//! naive normal approximation it never leaves `[0, 1]` and behaves at
//! p̂ ∈ {0, 1}.

/// The Wilson score confidence interval for a binomial proportion:
/// `successes` out of `trials`, at normal quantile `z` (1.96 ≈ 95%).
///
/// Returns `(low, high)` with `0 ≤ low ≤ high ≤ 1`. With zero trials
/// the interval is the uninformative `(0, 1)`.
///
/// # Examples
///
/// ```
/// use mwn_metrics::wilson_interval;
///
/// let (low, high) = wilson_interval(95, 100, 1.96);
/// assert!(low > 0.88 && low < 0.95);
/// assert!(high > 0.95 && high < 1.0);
/// ```
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Whether two binomial samples are statistically compatible: their
/// Wilson score intervals (at quantile `z`) overlap.
///
/// This is the acceptance predicate of the cross-driver and
/// gated-vs-eager agreement suites: two implementations that realize
/// the *same* distribution should produce overlapping intervals for
/// any proportion-valued observable (stabilization within `k` steps,
/// per-copy delivery, head agreement). Interval overlap is a
/// deliberately conservative equivalence test — strictly weaker than a
/// two-proportion z-test, so it under-rejects rather than flakes.
///
/// Degenerate samples with zero trials have the uninformative interval
/// `(0, 1)` and therefore overlap everything.
///
/// # Examples
///
/// ```
/// use mwn_metrics::wilson_overlap;
///
/// assert!(wilson_overlap(48, 100, 53, 100, 1.96));
/// assert!(!wilson_overlap(10, 100, 90, 100, 1.96));
/// ```
pub fn wilson_overlap(
    successes_a: usize,
    trials_a: usize,
    successes_b: usize,
    trials_b: usize,
    z: f64,
) -> bool {
    let (lo_a, hi_a) = wilson_interval(successes_a, trials_a, z);
    let (lo_b, hi_b) = wilson_interval(successes_b, trials_b, z);
    lo_a <= hi_b && lo_b <= hi_a
}

/// A counted proportion with its 95% Wilson interval — the record a
/// convergence-probability sweep reports per parameter point.
///
/// # Examples
///
/// ```
/// use mwn_metrics::Proportion;
///
/// let p = Proportion::new(98, 100);
/// assert_eq!(p.fraction(), 0.98);
/// let (low, high) = p.wilson95();
/// assert!(low < 0.98 && 0.98 < high);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Proportion {
    /// Number of successes.
    pub successes: usize,
    /// Number of trials.
    pub trials: usize,
}

impl Proportion {
    /// Wraps `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: usize, trials: usize) -> Self {
        assert!(
            successes <= trials,
            "successes ({successes}) cannot exceed trials ({trials})"
        );
        Proportion { successes, trials }
    }

    /// The point estimate (1.0 for zero trials).
    pub fn fraction(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The 95% Wilson score interval.
    pub fn wilson95(&self) -> (f64, f64) {
        wilson_interval(self.successes, self.trials, 1.96)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_the_point_estimate() {
        for &(k, n) in &[(0usize, 10usize), (5, 10), (10, 10), (999, 1000)] {
            let (low, high) = wilson_interval(k, n, 1.96);
            let p = k as f64 / n as f64;
            assert!(low <= p + 1e-12 && p <= high + 1e-12, "k={k} n={n}");
            assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
        }
    }

    #[test]
    fn more_trials_narrow_the_interval() {
        let (l1, h1) = wilson_interval(8, 10, 1.96);
        let (l2, h2) = wilson_interval(800, 1000, 1.96);
        assert!(h2 - l2 < h1 - l1);
    }

    #[test]
    fn degenerate_extremes_stay_in_unit_range() {
        let (low, high) = wilson_interval(0, 20, 1.96);
        assert_eq!(low, 0.0);
        assert!(high > 0.0 && high < 0.3, "upper bound {high}");
        let (low, high) = wilson_interval(20, 20, 1.96);
        assert!(low > 0.7 && low < 1.0, "lower bound {low}");
        assert_eq!(high, 1.0);
    }

    #[test]
    fn zero_trials_is_uninformative() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        assert_eq!(Proportion::new(0, 0).fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn more_successes_than_trials_rejected() {
        let _ = Proportion::new(3, 2);
    }

    #[test]
    fn overlap_accepts_identical_samples() {
        assert!(wilson_overlap(37, 80, 37, 80, 1.96));
    }

    #[test]
    fn overlap_is_symmetric() {
        for &(a, b) in &[(40usize, 55usize), (5, 90), (0, 100), (100, 0)] {
            assert_eq!(
                wilson_overlap(a, 100, b, 100, 1.96),
                wilson_overlap(b, 100, a, 100, 1.96),
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn overlap_rejects_clearly_different_proportions() {
        assert!(!wilson_overlap(5, 200, 180, 200, 1.96));
        assert!(!wilson_overlap(0, 100, 100, 100, 1.96));
    }

    #[test]
    fn overlap_accepts_nearby_proportions_at_small_n() {
        // Small samples → wide intervals → 40% vs 60% of 20 overlap.
        assert!(wilson_overlap(8, 20, 12, 20, 1.96));
    }

    #[test]
    fn zero_trials_overlap_everything() {
        assert!(wilson_overlap(0, 0, 0, 150, 1.96));
        assert!(wilson_overlap(0, 0, 150, 150, 1.96));
    }

    #[test]
    fn wider_quantile_overlaps_more() {
        // A borderline pair separated at z = 1 but not at z = 3.
        let (a, na, b, nb) = (30usize, 100usize, 48usize, 100usize);
        assert!(!wilson_overlap(a, na, b, nb, 1.0));
        assert!(wilson_overlap(a, na, b, nb, 3.0));
    }
}
