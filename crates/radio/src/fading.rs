use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{Delivery, Medium};

/// A distance-dependent lossy medium: frame copies to nearby neighbors
/// almost always arrive, copies near the edge of the radio range fade.
///
/// The per-copy success probability over a link of length `d` in a
/// unit-disk topology of range `R` is
///
/// `p(d) = max(floor, 1 − (d/R)^alpha)`
///
/// so `alpha` controls how sharply the edge of coverage degrades and
/// `floor > 0` preserves the paper's hypothesis (every frame succeeds
/// with probability at least τ = `floor`).
///
/// # Examples
///
/// ```
/// use mwn_radio::DistanceFading;
///
/// let m = DistanceFading::new(2.0, 0.2);
/// assert!(m.success_probability(0.0) > 0.99);
/// assert_eq!(m.success_probability(1.0), 0.2); // at the range edge
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceFading {
    alpha: f64,
    floor: f64,
}

impl DistanceFading {
    /// Creates the medium with path-loss exponent `alpha` and minimum
    /// success probability `floor` (the τ of the paper's hypothesis).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0` and `0 < floor <= 1`.
    pub fn new(alpha: f64, floor: f64) -> Self {
        assert!(alpha > 0.0, "path-loss exponent must be positive");
        assert!(
            floor > 0.0 && floor <= 1.0,
            "the success floor must be in (0, 1] to satisfy τ > 0"
        );
        DistanceFading { alpha, floor }
    }

    /// The success probability at normalized distance `d_over_r`
    /// (link length divided by the radio range).
    pub fn success_probability(&self, d_over_r: f64) -> f64 {
        (1.0 - d_over_r.clamp(0.0, 1.0).powf(self.alpha)).max(self.floor)
    }
}

impl Medium for DistanceFading {
    /// # Panics
    ///
    /// Panics if the topology carries no positions or radius (fading
    /// needs link lengths; build the topology with
    /// [`Topology::unit_disk`]).
    fn deliver_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        for &s in senders {
            self.deliver_from(topo, s, rng, out);
        }
    }

    fn deliver_from(
        &mut self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        let positions = topo
            .positions()
            .expect("distance fading requires node positions");
        let radius = topo
            .radius()
            .expect("distance fading requires a radio range");
        for &r in topo.neighbors(sender) {
            out.attempted += 1;
            let d = positions[sender.index()].distance(positions[r.index()]);
            if rng.random_bool(self.success_probability(d / radius)) {
                out.record(r, sender);
            }
        }
    }

    fn independent_fates(&self) -> bool {
        true
    }

    fn proxyable(&self) -> bool {
        true
    }

    fn proxy_fates(
        &self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut StdRng,
        heard: &mut Vec<NodeId>,
    ) -> usize {
        let positions = topo
            .positions()
            .expect("distance fading requires node positions");
        let radius = topo
            .radius()
            .expect("distance fading requires a radio range");
        for &r in topo.neighbors(sender) {
            let d = positions[sender.index()].distance(positions[r.index()]);
            if rng.random_bool(self.success_probability(d / radius)) {
                heard.push(r);
            }
        }
        topo.degree(sender)
    }

    fn name(&self) -> &'static str {
        "distance-fading"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_tau;
    use mwn_graph::{builders, Point2};
    use rand::SeedableRng;

    #[test]
    fn close_links_beat_far_links() {
        // Three collinear nodes: 1 is close to 0, 2 is at the edge.
        let positions = vec![
            Point2::new(0.0, 0.5),
            Point2::new(0.01, 0.5),
            Point2::new(0.099, 0.5),
        ];
        let topo = Topology::unit_disk(positions, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut medium = DistanceFading::new(2.0, 0.05);
        let mut near = 0;
        let mut far = 0;
        for _ in 0..500 {
            let d = medium.deliver(&topo, &[NodeId::new(0)], &mut rng);
            if d.heard[1].contains(&NodeId::new(0)) {
                near += 1;
            }
            if d.heard[2].contains(&NodeId::new(0)) {
                far += 1;
            }
        }
        assert!(near > 450, "near link should almost always work: {near}");
        assert!(far < near, "edge link must fade: far={far} near={near}");
        assert!(far > 0, "the τ floor keeps the edge link alive");
    }

    #[test]
    fn measured_tau_respects_the_floor() {
        let mut rng = StdRng::seed_from_u64(2);
        let topo = builders::uniform(80, 0.12, &mut rng);
        let tau = measure_tau(&mut DistanceFading::new(2.0, 0.3), &topo, 60, &mut rng);
        assert!(tau >= 0.3, "τ = {tau} below the configured floor");
        assert!(tau < 1.0, "some fading must occur");
    }

    #[test]
    fn probability_curve_shape() {
        let m = DistanceFading::new(2.0, 0.1);
        assert!(m.success_probability(0.2) > m.success_probability(0.8));
        assert_eq!(m.success_probability(2.0), 0.1); // clamped past range
    }

    #[test]
    #[should_panic(expected = "requires node positions")]
    fn positionless_topology_panics() {
        let topo = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = DistanceFading::new(2.0, 0.5).deliver(&topo, &[NodeId::new(0)], &mut rng);
    }

    #[test]
    #[should_panic(expected = "τ > 0")]
    fn zero_floor_rejected() {
        let _ = DistanceFading::new(2.0, 0.0);
    }

    use mwn_graph::Topology;
}
