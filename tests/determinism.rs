//! Whole-stack reproducibility: every pipeline in the repository is a
//! pure function of its seed. This is what makes the 1000-run
//! experiment averages, the regression tests and the EXPERIMENTS.md
//! numbers meaningful.

use rand::SeedableRng;
use selfstab::prelude::*;

fn pipeline(seed: u64) -> (Vec<NodeId>, Vec<u32>, String) {
    // deploy → DAG-enabled clustering over CSMA → render
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let topo = builders::poisson(200.0, 0.12, &mut rng);
    let gamma = NameSpace::delta_squared(topo.max_degree().max(1));
    let config = ClusterConfig {
        dag: Some(DagConfig {
            gamma,
            variant: DagVariant::Randomized,
        }),
        cache_ttl: 16,
        ..ClusterConfig::default()
    };
    let mut net = Network::new(
        DensityCluster::new(config),
        SlottedCsma::new(16),
        topo,
        seed,
    );
    net.run_until_stable(|_, s| (s.dag_id, s.head, s.parent), 20, 20_000)
        .expect("stabilizes");
    let clustering = extract_clustering(net.states()).expect("clean");
    let svg = svg_clustering(net.topology(), &clustering);
    (clustering.heads(), extract_dag_ids(net.states()), svg)
}

#[test]
fn full_pipeline_is_a_function_of_the_seed() {
    let a = pipeline(77);
    let b = pipeline(77);
    assert_eq!(a.0, b.0, "heads differ across identical runs");
    assert_eq!(a.1, b.1, "DAG names differ across identical runs");
    assert_eq!(a.2, b.2, "even the SVG bytes must match");
    let c = pipeline(78);
    assert_ne!(a.1, c.1, "different seeds explore different randomness");
}

#[test]
fn mobility_pipeline_is_deterministic() {
    let run = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builders::poisson(150.0, 0.1, &mut rng);
        let n = topo.len();
        let model = RandomWaypoint::new(n, 0.0..=meters_per_second(5.0), 1.0);
        let mut scenario = MobileScenario::new(topo, model, seed);
        let mut persistence = Vec::new();
        let mut prev = oracle(scenario.topology(), &OracleConfig::default());
        for _ in 0..20 {
            scenario.advance(2.0);
            let next = oracle(scenario.topology(), &OracleConfig::default());
            persistence.push((next.head_persistence_from(&prev) * 1e6) as u64);
            prev = next;
        }
        persistence
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn parallel_seed_runner_is_schedule_independent() {
    // The same experiment through run_seeds twice — thread scheduling
    // must not leak into results.
    let experiment = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builders::poisson(120.0, 0.12, &mut rng);
        oracle(&topo, &OracleConfig::default()).head_count()
    };
    let a = run_seeds(24, 9, experiment);
    let b = run_seeds(24, 9, experiment);
    assert_eq!(a, b);
}

#[test]
fn event_driver_trajectories_replay_exactly() {
    let run = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builders::poisson(100.0, 0.12, &mut rng);
        let mut driver = EventDriver::new(
            DensityCluster::new(ClusterConfig {
                cache_ttl: 10,
                ..ClusterConfig::default()
            }),
            topo,
            EventConfig::default(),
            seed,
        );
        driver.run_until_time(40.0);
        (
            driver.measured_tau(),
            driver.states().iter().map(|s| s.output()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(3), run(3));
}
