//! One scenario, three drivers: the same deployment, seed and lossy
//! medium run on synchronous rounds, the continuous-time clock, and
//! real message-passing actor processes — and all three agree.
//!
//! ```sh
//! cargo run --release --example three_drivers
//! ```

use rand::SeedableRng;
use selfstab::prelude::*;

fn main() {
    // One deployment, one lossy medium, one seed.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2005);
    let topo = builders::poisson(600.0, 0.12, &mut rng);
    println!(
        "deployed {} nodes, {} links over a Bernoulli(τ = 0.7) medium",
        topo.len(),
        topo.edge_count()
    );
    let scenario = || {
        Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
            .medium(BernoulliLoss::new(0.7))
            .topology(topo.clone())
            .seed(7)
    };
    let stop = StopWhen::stable_for(4).within(2_000);

    // Driver 1: synchronous rounds — the paper's model, the reference.
    let mut rounds = scenario().build().expect("valid scenario");
    let round_report = rounds.run_to(&stop);
    let round_steps = round_report.expect_stable("rounds stabilize");
    println!(
        "rounds: stabilized after {round_steps} steps, {} broadcasts",
        rounds.messages_total()
    );

    // Driver 2: the continuous clock — jittered beacon slots, frames
    // with airtime, the same guarded assignments.
    let mut events = scenario()
        .build_events(EventConfig::default())
        .expect("valid event scenario");
    let time = events
        .run_until_output_stable(1.0, 4, 2_000.0)
        .expect("events stabilize");
    println!(
        "events: stabilized by t = {time:.1}, {} broadcasts",
        events.messages_total()
    );

    // Driver 3: the actor fabric — every node a concurrent process
    // over bounded mailboxes, wired through the same medium decisions.
    let mut actors = scenario().build_actors(4).expect("valid actor scenario");
    let actor_report = actors.run_to(&stop);
    let actor_steps = actor_report.expect_stable("actors stabilize");
    println!(
        "actors: stabilized after {actor_steps} periods (4 threads), {} broadcasts",
        actors.messages_total()
    );

    // The agreement claims. Rounds and actors replay the same derived
    // randomness and the protocol's receives commute, so they agree
    // byte for byte; the continuous clock agrees on the fixpoint.
    assert_eq!(round_report, actor_report, "reports must agree exactly");
    assert_eq!(
        rounds.states(),
        actors.states(),
        "states must agree byte for byte"
    );
    assert_eq!(
        rounds.messages_total(),
        actors.messages_total(),
        "message totals must agree"
    );
    let reference = extract_clustering(rounds.states()).expect("stable");
    let continuous = extract_clustering(events.states()).expect("stable");
    assert_eq!(
        reference, continuous,
        "the continuous clock reaches the same clustering fixpoint"
    );
    println!(
        "all three drivers agree: {} clusters, identical head sets",
        reference.head_count()
    );
}
