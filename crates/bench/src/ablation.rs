//! **Ablations**: (a) the election-metric comparison behind the
//! paper's Section 3 "Features" claim — the density metric yields
//! fewer, more mobility-stable cluster-heads than the degree and
//! max-min metrics (established in reference \[16\]); (b) the
//! contribution of each Section 4.3 improvement (incumbency, fusion)
//! separately.

use mwn_baselines::{highest_degree_config, lowest_id_config, max_min_clustering};
use mwn_cluster::{oracle, HeadRule, OracleConfig, OrderKind};
use mwn_metrics::Table;

use crate::common::ExperimentScale;
use crate::mobility::{persistence_under_mobility, Clusterer};

/// Persistence and cluster-count per clustering policy.
#[derive(Clone, Debug, PartialEq)]
pub struct AblationResult {
    /// Policy names.
    pub policies: Vec<String>,
    /// Mean head persistence (%) per 2 s window under pedestrian
    /// mobility.
    pub persistence: Vec<f64>,
    /// Mean number of clusters.
    pub clusters: Vec<f64>,
}

fn metric_policies() -> Vec<(String, Box<Clusterer>)> {
    vec![
        (
            "density (paper)".to_string(),
            Box::new(|topo: &_, _: Option<&_>| oracle(topo, &OracleConfig::default())),
        ),
        (
            "degree".to_string(),
            Box::new(|topo: &_, _: Option<&_>| oracle(topo, &highest_degree_config())),
        ),
        (
            "lowest-id".to_string(),
            Box::new(|topo: &_, _: Option<&_>| oracle(topo, &lowest_id_config())),
        ),
        (
            "max-min d=2".to_string(),
            Box::new(|topo: &_, _: Option<&_>| max_min_clustering(topo, 2)),
        ),
    ]
}

fn rule_policies() -> Vec<(String, Box<Clusterer>)> {
    let with_prev = |order: OrderKind, rule: HeadRule| -> Box<Clusterer> {
        Box::new(
            move |topo: &mwn_graph::Topology, prev: Option<&mwn_cluster::Clustering>| {
                let prev_heads = if order == OrderKind::Stable {
                    prev.map(|c| topo.nodes().map(|p| c.is_head(p)).collect())
                } else {
                    None
                };
                oracle(
                    topo,
                    &OracleConfig {
                        order,
                        rule,
                        prev_heads,
                        ..OracleConfig::default()
                    },
                )
            },
        )
    };
    vec![
        (
            "basic".to_string(),
            with_prev(OrderKind::Basic, HeadRule::Basic),
        ),
        (
            "+ incumbency".to_string(),
            with_prev(OrderKind::Stable, HeadRule::Basic),
        ),
        (
            "+ fusion".to_string(),
            with_prev(OrderKind::Basic, HeadRule::Fusion),
        ),
        (
            "+ both (4.3)".to_string(),
            with_prev(OrderKind::Stable, HeadRule::Fusion),
        ),
    ]
}

fn run_policies(
    scale: &ExperimentScale,
    policies: Vec<(String, Box<Clusterer>)>,
) -> AblationResult {
    let duration = if scale.runs >= 50 { 120.0 } else { 30.0 };
    let seeds = (scale.runs / 20).clamp(2, 30);
    let mut result = AblationResult {
        policies: Vec::new(),
        persistence: Vec::new(),
        clusters: Vec::new(),
    };
    for (name, policy) in policies {
        let (persistence, clusters) =
            persistence_under_mobility(scale, 1.6, duration, 2.0, seeds, policy.as_ref());
        result.policies.push(name);
        result.persistence.push(persistence);
        result.clusters.push(clusters);
    }
    result
}

/// Ablation (a): election metrics under pedestrian mobility.
pub fn run_metrics(scale: ExperimentScale) -> AblationResult {
    run_policies(&scale, metric_policies())
}

/// Ablation (b): the Section 4.3 improvements, separately and jointly.
pub fn run_rules(scale: ExperimentScale) -> AblationResult {
    run_policies(&scale, rule_policies())
}

/// Formats an ablation result.
pub fn render(title: &str, result: &AblationResult) -> Table {
    let mut table = Table::new(title);
    table.set_headers(["policy", "head persistence / 2 s", "mean #clusters"]);
    for i in 0..result.policies.len() {
        table.add_row(
            result.policies[i].clone(),
            vec![
                format!("{:.1}%", result.persistence[i]),
                format!("{:.1}", result.clusters[i]),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentScale {
        ExperimentScale {
            runs: 40,
            lambda: 400.0,
            ..ExperimentScale::quick()
        }
    }

    #[test]
    fn density_is_more_stable_than_degree() {
        let result = run_metrics(quick());
        let idx = |name: &str| {
            result
                .policies
                .iter()
                .position(|p| p.contains(name))
                .unwrap()
        };
        // The paper's Section 3 claim (from [16]): density beats the
        // degree metric on head stability under mobility.
        assert!(
            result.persistence[idx("density")] >= result.persistence[idx("degree")] - 1.0,
            "density {:.1}% vs degree {:.1}%",
            result.persistence[idx("density")],
            result.persistence[idx("degree")]
        );
        assert!(result.persistence.iter().all(|&p| p > 0.0 && p <= 100.0));
    }

    #[test]
    fn both_improvements_beat_basic() {
        let result = run_rules(quick());
        let basic = result.persistence[0];
        let both = *result.persistence.last().unwrap();
        assert!(
            both >= basic - 2.0,
            "4.3 rules ({both:.1}%) should not lose to basic ({basic:.1}%)"
        );
        // Fusion reduces the number of clusters (heads ≥ 3 hops apart).
        assert!(result.clusters[2] <= result.clusters[0] + 0.5);
    }

    #[test]
    fn render_lists_policies() {
        let result = AblationResult {
            policies: vec!["density".into()],
            persistence: vec![80.0],
            clusters: vec![20.0],
        };
        let s = render("Ablation", &result).to_string();
        assert!(s.contains("density"));
        assert!(s.contains("80.0%"));
    }
}
