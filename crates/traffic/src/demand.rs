//! Heavy-tailed flow workloads: who talks to whom, and how much.
//!
//! Real ad-hoc traffic is not uniform — a few sinks (gateways,
//! collection points) attract most flows and a few elephant flows
//! carry most bytes. [`DemandModel`] reproduces both skews:
//!
//! * **sink popularity** is Zipf-distributed over a seeded random
//!   ranking of the nodes (rank-r sink drawn with probability
//!   ∝ 1/rᵉ);
//! * **flow sizes** are Pareto-distributed (shape α, scaled to a
//!   target mean, capped so one sample cannot swallow the experiment).
//!
//! Generation is a pure function of `(model, n, seed)` — the same
//! workload replays byte-identically across runs, shard counts and
//! machines.

use mwn_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One source→sink flow: `packets` packets injected at `src` from step
/// `start` on, addressed to `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node (≠ `src`).
    pub dst: NodeId,
    /// Total packets this flow will inject.
    pub packets: u64,
    /// First step at which injection may happen.
    pub start: u64,
}

/// A heavy-tailed (Zipf sinks × Pareto sizes) demand model; see the
/// module docs.
///
/// # Examples
///
/// ```
/// use mwn_traffic::DemandModel;
///
/// let flows = DemandModel {
///     flows: 100,
///     ..DemandModel::default()
/// }
/// .generate(50, 7);
/// assert_eq!(flows.len(), 100);
/// assert!(flows.iter().all(|f| f.src != f.dst && f.packets >= 1));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DemandModel {
    /// Number of flows to generate.
    pub flows: usize,
    /// Zipf exponent for sink popularity (0 = uniform; ~1 = strongly
    /// skewed).
    pub zipf_exponent: f64,
    /// Pareto shape α for flow sizes (must be > 1 for a finite mean;
    /// smaller = heavier tail).
    pub pareto_shape: f64,
    /// Target mean flow size in packets.
    pub mean_packets: f64,
    /// Hard cap on one flow's size (tames the Pareto tail).
    pub max_packets: u64,
    /// Flow starts drawn uniformly from `[0, start_spread]` steps.
    pub start_spread: u64,
}

impl Default for DemandModel {
    fn default() -> Self {
        DemandModel {
            flows: 64,
            zipf_exponent: 0.9,
            pareto_shape: 1.5,
            mean_packets: 100.0,
            max_packets: 10_000,
            start_spread: 0,
        }
    }
}

impl DemandModel {
    /// Generates the workload for an `n`-node network,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `n < 2` (a flow needs two distinct endpoints) or
    /// the Pareto shape is ≤ 1.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<FlowSpec> {
        assert!(n >= 2, "flows need at least two nodes");
        assert!(
            self.pareto_shape > 1.0,
            "Pareto shape must exceed 1 for a finite mean"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Seeded popularity ranking: a Fisher–Yates permutation maps
        // Zipf rank r to a concrete node.
        let mut rank_to_node: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..(i as u32 + 1)) as usize;
            rank_to_node.swap(i, j);
        }

        // Cumulative Zipf weights over ranks.
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(self.zipf_exponent);
            cum.push(total);
        }

        // Pareto scale for the target mean: E[X] = x_m · α / (α − 1).
        let x_m = self.mean_packets * (self.pareto_shape - 1.0) / self.pareto_shape;

        (0..self.flows)
            .map(|_| {
                let u: f64 = rng.random_range(0.0..total);
                let rank = cum.partition_point(|&c| c < u).min(n - 1);
                let dst = rank_to_node[rank];
                let src = loop {
                    let s = rng.random_range(0..n as u32);
                    if s != dst {
                        break s;
                    }
                };
                let u: f64 = rng.random_range(0.0..1.0);
                let size = (x_m * (1.0 - u).powf(-1.0 / self.pareto_shape)).round() as u64;
                let start = if self.start_spread == 0 {
                    0
                } else {
                    rng.random_range(0..self.start_spread + 1)
                };
                FlowSpec {
                    src: NodeId::new(src),
                    dst: NodeId::new(dst),
                    packets: size.clamp(1, self.max_packets),
                    start,
                }
            })
            .collect()
    }
}

/// The most popular sink of a workload (the destination of the most
/// flows, ties to the lowest id) — the natural target for a scripted
/// fault burst, since severing it maximizes traffic caught
/// mid-restabilization.
pub fn hottest_sink(flows: &[FlowSpec]) -> Option<NodeId> {
    let max_id = flows.iter().map(|f| f.dst.index()).max()?;
    let mut counts = vec![0u64; max_id + 1];
    for f in flows {
        counts[f.dst.index()] += 1;
    }
    let (best, _) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))?;
    Some(NodeId::new(best as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let m = DemandModel {
            flows: 200,
            start_spread: 10,
            ..DemandModel::default()
        };
        assert_eq!(m.generate(64, 42), m.generate(64, 42));
        assert_ne!(m.generate(64, 42), m.generate(64, 43));
    }

    #[test]
    fn endpoints_are_distinct_and_sizes_bounded() {
        let m = DemandModel {
            flows: 500,
            max_packets: 1_000,
            ..DemandModel::default()
        };
        for f in m.generate(10, 1) {
            assert_ne!(f.src, f.dst);
            assert!(f.src.index() < 10 && f.dst.index() < 10);
            assert!((1..=1_000).contains(&f.packets));
            assert_eq!(f.start, 0);
        }
    }

    #[test]
    fn sink_popularity_is_heavy_tailed() {
        let m = DemandModel {
            flows: 2_000,
            zipf_exponent: 1.2,
            ..DemandModel::default()
        };
        let flows = m.generate(100, 3);
        let hot = hottest_sink(&flows).expect("non-empty");
        let hot_count = flows.iter().filter(|f| f.dst == hot).count();
        // Uniform demand would give ~20 flows per sink; Zipf(1.2)
        // concentrates far more on the head.
        assert!(
            hot_count > 100,
            "hottest sink got only {hot_count}/2000 flows"
        );
    }

    #[test]
    fn flow_sizes_are_heavy_tailed_around_the_mean() {
        let m = DemandModel {
            flows: 4_000,
            mean_packets: 100.0,
            max_packets: 100_000,
            ..DemandModel::default()
        };
        let flows = m.generate(50, 9);
        let mean = flows.iter().map(|f| f.packets as f64).sum::<f64>() / flows.len() as f64;
        assert!(
            (30.0..300.0).contains(&mean),
            "empirical mean {mean} far from target"
        );
        let max = flows.iter().map(|f| f.packets).max().unwrap();
        assert!(max > 500, "no elephant flows in {} samples", flows.len());
    }

    #[test]
    fn zipf_zero_is_roughly_uniform() {
        let m = DemandModel {
            flows: 3_000,
            zipf_exponent: 0.0,
            ..DemandModel::default()
        };
        let flows = m.generate(10, 5);
        let hot = hottest_sink(&flows).expect("non-empty");
        let hot_count = flows.iter().filter(|f| f.dst == hot).count();
        assert!(hot_count < 600, "uniform sinks skewed: {hot_count}/3000");
    }
}
