//! Experiment harness: regenerates **every table and figure** of the
//! paper's evaluation (Section 5) plus the theorems' quantitative
//! claims, as runnable binaries and Criterion benches.
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Table 1 + Figure 1 | [`table1`] | `cargo run -p mwn-bench --bin table1` |
//! | Table 2 | [`table2`] | `cargo run -p mwn-bench --bin table2` |
//! | Table 3 | [`table3`] | `cargo run -p mwn-bench --bin table3` |
//! | Table 4 | [`table4`] | `cargo run -p mwn-bench --bin table4` |
//! | Table 5 | [`table5`] | `cargo run -p mwn-bench --bin table5` |
//! | Figures 2 & 3 | [`figures`] | `cargo run -p mwn-bench --bin figures` |
//! | §5 mobility study | [`mobility`] | `cargo run -p mwn-bench --bin mobility` |
//! | Theorem 1 / Lemmas 1–2 | [`stabilization`] | `cargo run -p mwn-bench --bin stabilization` |
//! | §3 "features" (\[16\] comparison) | [`ablation`] | `cargo run -p mwn-bench --bin ablation` |
//! | activity-driven engine scaling | [`scaling`] | `cargo run -p mwn-bench --bin scaling` |
//! | continuous-time engine scaling | [`scaling_events`] | `cargo run -p mwn-bench --bin scaling_events` |
//! | actor fabric vs synchronous reference | [`actors`] | `cargo run -p mwn-bench --bin actors` |
//! | hierarchy extension (conclusion) | [`hierarchy_exp`] | `cargo run -p mwn-bench --bin hierarchy` |
//! | energy extension (conclusion) | [`energy_exp`] | `cargo run -p mwn-bench --bin energy` |
//! | hierarchical-routing stretch (§1 motivation) | [`routing_exp`] | `cargo run -p mwn-bench --bin routing` |
//! | traffic plane: throughput / latency / loss under churn | [`traffic`] | `cargo run -p mwn-bench --bin traffic` |
//!
//! Every experiment takes an [`ExperimentScale`]; binaries accept
//! `--quick` (seconds, for smoke tests) and `--runs N` (the paper uses
//! 1000-run averages).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod actors;
pub mod chaos;
pub mod common;
pub mod energy_exp;
pub mod figures;
pub mod hierarchy_exp;
pub mod mobility;
pub mod routing_exp;
pub mod scaling;
pub mod scaling_events;
pub mod stabilization;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod traffic;

pub use common::ExperimentScale;
