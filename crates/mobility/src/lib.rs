//! Mobility models for multihop wireless network simulation.
//!
//! The paper's stability experiment (Section 5) moves nodes "randomly
//! at a randomly chosen speed during 15 minutes" and measures how many
//! cluster-heads survive each 2-second window, for pedestrian
//! (0–1.6 m/s) and vehicular (0–10 m/s) speed ranges. This crate
//! provides the two standard models matching that description —
//! [`RandomWaypoint`] and [`RandomDirection`] — plus the unit mapping
//! (the 1×1 simulation square is read as 1 km × 1 km, so `R = 0.05`
//! is a 50 m radio range) and a [`MobileScenario`] that moves nodes
//! and rebuilds the unit-disk links.
//!
//! # Examples
//!
//! ```
//! use mwn_mobility::{meters_per_second, MobileScenario, RandomWaypoint};
//! use mwn_graph::builders;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let topo = builders::uniform(100, 0.05, &mut rng);
//! let model = RandomWaypoint::new(100, meters_per_second(0.0)..=meters_per_second(1.6), 0.0);
//! let mut scenario = MobileScenario::new(topo, model, 5);
//! scenario.advance(2.0); // one 2-second window
//! assert_eq!(scenario.topology().len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod direction;
mod model;
mod scenario;
mod waypoint;

pub use direction::RandomDirection;
pub use model::{meters_per_second, MobilityModel, UNIT_SQUARE_METERS};
pub use scenario::{MobileScenario, MobilityDynamics};
pub use waypoint::RandomWaypoint;
