//! The activity-driven engine's scaling story: once a silent protocol
//! stabilizes, dirty-set scheduling drops per-step messages to zero
//! and steps/sec by orders of magnitude versus re-running every guard.
//!
//! ```sh
//! cargo run --release -p mwn-bench --bin scaling             # 1k..1M sweep
//! cargo run --release -p mwn-bench --bin scaling -- --quick  # 1k (CI smoke)
//! cargo run --release -p mwn-bench --bin scaling -- --smoke  # 10k converging smoke
//! ```
//!
//! `--smoke` is the CI guard for the kernelized converging phase: one
//! n = 10k point with a short post-stabilization window, plus the
//! assertion that the converging-throughput column is present and
//! non-zero (a silent regression to an unmeasured column would
//! otherwise slip through).
//!
//! Writes `BENCH_scaling.json` next to the working directory.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let sizes: Vec<usize> = if quick {
        vec![1_000]
    } else if smoke {
        vec![10_000]
    } else {
        vec![1_000, 10_000, 50_000, 250_000, 1_000_000]
    };
    let post_steps = if quick || smoke { 200 } else { 1_000 };
    let points = mwn_bench::scaling::run(&sizes, 20050610, post_steps);
    println!("{}", mwn_bench::scaling::render(&points));
    for p in &points {
        assert_eq!(
            p.messages_per_step_stable_gated, 0.0,
            "silence violated at n = {}",
            p.nodes
        );
        assert!(
            p.converging_steps_per_sec > 0.0,
            "converging throughput missing at n = {}",
            p.nodes
        );
    }
    let json = mwn_bench::scaling::to_json(&points);
    assert!(
        json.contains("converging_steps_per_sec"),
        "BENCH_scaling.json must carry the converging-throughput column"
    );
    let path = "BENCH_scaling.json";
    std::fs::write(path, &json).expect("write BENCH_scaling.json");
    println!("\nwrote {path}");
}
