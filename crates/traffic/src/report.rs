//! The data-plane scorecard: what the network delivered, how fast,
//! and what it lost — and to whom (congestion vs. the control plane).

/// Accounting snapshot of one traffic run, produced by
/// [`crate::TrafficPlane::report`].
///
/// The headline production number is
/// [`TrafficReport::loss_during_restabilization`]: the fraction of
/// injected packets that died *because the control plane had no
/// answer* (no route, or a route over a vanished link) — as opposed
/// to [`TrafficReport::dropped_overflow`] /
/// [`TrafficReport::dropped_expired`], which are congestion.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficReport {
    /// Network size.
    pub nodes: usize,
    /// Flows registered.
    pub flows: usize,
    /// Traffic steps executed.
    pub steps: u64,
    /// Packets injected into source queues.
    pub injected: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets still queued when the report was taken.
    pub in_flight: u64,
    /// Injection attempts deferred at a full source queue (these are
    /// retried, not lost).
    pub deferred: u64,
    /// Packets dropped at a full next-hop queue.
    pub dropped_overflow: u64,
    /// Packets that out-lived their TTL *without* a usable next hop —
    /// the restabilization loss.
    pub dropped_stranded: u64,
    /// Packets that out-lived their TTL despite a usable next hop
    /// (service starvation).
    pub dropped_expired: u64,
    /// `delivered / injected` (1.0 when nothing was injected).
    pub delivered_fraction: f64,
    /// Delivered packets per step.
    pub throughput: f64,
    /// Median delivery latency in steps (histogram upper edge).
    pub latency_p50: f64,
    /// 95th-percentile delivery latency in steps.
    pub latency_p95: f64,
    /// 99th-percentile delivery latency in steps.
    pub latency_p99: f64,
    /// Mean delivery latency in steps (exact).
    pub latency_mean: f64,
    /// Mean hop count of delivered packets.
    pub mean_hops: f64,
    /// Largest hop count of any delivered packet.
    pub max_hops: u64,
    /// `dropped_stranded / injected`.
    pub loss_during_restabilization: f64,
    /// Full-route resolutions performed against the control plane.
    pub route_resolutions: u64,
}

/// Formats a float as JSON: finite values with fixed precision,
/// non-finite as `null` (empty runs have `NaN` percentiles).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl TrafficReport {
    /// Renders the report as one JSON object. Hand-rolled (the
    /// workspace's vendored `serde` has no serializer) and fully
    /// deterministic — the byte-identity tests compare these strings.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"nodes\":{},\"flows\":{},\"steps\":{},",
                "\"injected\":{},\"delivered\":{},\"in_flight\":{},\"deferred\":{},",
                "\"dropped_overflow\":{},\"dropped_stranded\":{},\"dropped_expired\":{},",
                "\"delivered_fraction\":{},\"throughput\":{},",
                "\"latency_p50\":{},\"latency_p95\":{},\"latency_p99\":{},\"latency_mean\":{},",
                "\"mean_hops\":{},\"max_hops\":{},",
                "\"loss_during_restabilization\":{},\"route_resolutions\":{}}}"
            ),
            self.nodes,
            self.flows,
            self.steps,
            self.injected,
            self.delivered,
            self.in_flight,
            self.deferred,
            self.dropped_overflow,
            self.dropped_stranded,
            self.dropped_expired,
            num(self.delivered_fraction),
            num(self.throughput),
            num(self.latency_p50),
            num(self.latency_p95),
            num(self.latency_p99),
            num(self.latency_mean),
            num(self.mean_hops),
            self.max_hops,
            num(self.loss_during_restabilization),
            self.route_resolutions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrafficReport {
        TrafficReport {
            nodes: 10,
            flows: 2,
            steps: 50,
            injected: 100,
            delivered: 90,
            in_flight: 0,
            deferred: 3,
            dropped_overflow: 4,
            dropped_stranded: 5,
            dropped_expired: 1,
            delivered_fraction: 0.9,
            throughput: 1.8,
            latency_p50: 4.0,
            latency_p95: 9.0,
            latency_p99: 12.0,
            latency_mean: 4.5,
            mean_hops: 3.2,
            max_hops: 7,
            loss_during_restabilization: 0.05,
            route_resolutions: 12,
        }
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let a = sample().to_json();
        assert_eq!(a, sample().to_json());
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert!(a.contains("\"loss_during_restabilization\":0.050000"));
        assert!(a.contains("\"dropped_stranded\":5"));
    }

    #[test]
    fn nan_percentiles_render_as_null() {
        let mut r = sample();
        r.latency_p50 = f64::NAN;
        assert!(r.to_json().contains("\"latency_p50\":null"));
    }
}
