use std::ops::RangeInclusive;

use mwn_graph::Point2;
use rand::rngs::StdRng;
use rand::Rng;

use crate::MobilityModel;

/// The random-direction model: each node walks in a uniformly random
/// direction at a uniformly drawn speed for an exponential-ish leg
/// duration, reflecting off the unit-square borders.
///
/// Compared to [`crate::RandomWaypoint`], this model does not
/// concentrate nodes in the middle of the area, which keeps the
/// spatial node intensity closer to the Poisson field the paper
/// deploys.
#[derive(Clone, Debug)]
pub struct RandomDirection {
    speed_range: RangeInclusive<f64>,
    mean_leg: f64,
    legs: Vec<Option<Leg>>,
}

#[derive(Clone, Copy, Debug)]
struct Leg {
    vx: f64,
    vy: f64,
    time_left: f64,
}

impl RandomDirection {
    /// Creates the model for `n` nodes; legs last on average
    /// `mean_leg_seconds`.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is invalid or `mean_leg_seconds` is
    /// not positive.
    pub fn new(n: usize, speed_range: RangeInclusive<f64>, mean_leg_seconds: f64) -> Self {
        let (lo, hi) = (*speed_range.start(), *speed_range.end());
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "speed range must satisfy 0 ≤ min ≤ max"
        );
        assert!(mean_leg_seconds > 0.0, "mean leg duration must be positive");
        RandomDirection {
            speed_range,
            mean_leg: mean_leg_seconds,
            legs: vec![None; n],
        }
    }

    fn draw_leg(&self, rng: &mut StdRng) -> Leg {
        let (lo, hi) = (*self.speed_range.start(), *self.speed_range.end());
        let speed = if hi > lo {
            rng.random_range(lo..=hi)
        } else {
            lo
        };
        let angle = rng.random_range(0.0..std::f64::consts::TAU);
        // Exponential leg duration via inverse CDF; clamped away from 0.
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        let time_left = -self.mean_leg * u.ln();
        Leg {
            vx: speed * angle.cos(),
            vy: speed * angle.sin(),
            time_left: time_left.max(1e-6),
        }
    }
}

impl MobilityModel for RandomDirection {
    fn step(&mut self, positions: &mut [Point2], dt: f64, rng: &mut StdRng) {
        assert_eq!(
            positions.len(),
            self.legs.len(),
            "model sized for a different node count"
        );
        for (i, pos) in positions.iter_mut().enumerate() {
            let mut remaining = dt;
            while remaining > 0.0 {
                let mut leg = match self.legs[i] {
                    Some(leg) => leg,
                    None => self.draw_leg(rng),
                };
                let advance = remaining.min(leg.time_left);
                let mut x = pos.x + leg.vx * advance;
                let mut y = pos.y + leg.vy * advance;
                // Reflect off the borders (possibly multiple times for
                // long steps).
                loop {
                    let mut bounced = false;
                    if x < 0.0 {
                        x = -x;
                        leg.vx = -leg.vx;
                        bounced = true;
                    } else if x > 1.0 {
                        x = 2.0 - x;
                        leg.vx = -leg.vx;
                        bounced = true;
                    }
                    if y < 0.0 {
                        y = -y;
                        leg.vy = -leg.vy;
                        bounced = true;
                    } else if y > 1.0 {
                        y = 2.0 - y;
                        leg.vy = -leg.vy;
                        bounced = true;
                    }
                    if !bounced {
                        break;
                    }
                }
                *pos = Point2::new(x, y).clamp_unit_square();
                leg.time_left -= advance;
                remaining -= advance;
                self.legs[i] = if leg.time_left > 0.0 { Some(leg) } else { None };
            }
        }
    }

    fn name(&self) -> &'static str {
        "random-direction"
    }

    fn max_speed(&self) -> f64 {
        *self.speed_range.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn positions_stay_in_unit_square() {
        let mut model = RandomDirection::new(20, 0.0..=0.05, 5.0);
        let mut positions = vec![Point2::new(0.01, 0.99); 20];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            model.step(&mut positions, 1.0, &mut rng);
            assert!(positions.iter().all(|p| p.in_unit_square()));
        }
    }

    #[test]
    fn displacement_bounded_by_speed() {
        let mut model = RandomDirection::new(10, 0.0..=0.003, 3.0);
        let mut positions = vec![Point2::new(0.5, 0.5); 10];
        let mut rng = StdRng::seed_from_u64(2);
        let before = positions.clone();
        model.step(&mut positions, 4.0, &mut rng);
        for (a, b) in before.iter().zip(&positions) {
            // Reflection can only shorten net displacement.
            assert!(a.distance(*b) <= 0.003 * 4.0 + 1e-9);
        }
    }

    #[test]
    fn reflection_keeps_moving_nodes_inside() {
        // A node heading straight for a wall must bounce, not stick.
        let mut model = RandomDirection::new(1, 0.1..=0.1, 1e9);
        model.legs[0] = Some(Leg {
            vx: -0.1,
            vy: 0.0,
            time_left: 1e9,
        });
        let mut positions = vec![Point2::new(0.05, 0.5)];
        let mut rng = StdRng::seed_from_u64(3);
        model.step(&mut positions, 2.0, &mut rng);
        // Travelled 0.2 left from x=0.05: reflects at 0 → x = 0.15.
        assert!((positions[0].x - 0.15).abs() < 1e-9);
        assert!(model.legs[0].unwrap().vx > 0.0, "velocity flipped");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut model = RandomDirection::new(5, 0.0..=0.01, 4.0);
            let mut positions = vec![Point2::new(0.5, 0.5); 5];
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                model.step(&mut positions, 1.0, &mut rng);
            }
            positions
        };
        assert_eq!(run(9), run(9));
    }
}
