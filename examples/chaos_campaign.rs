//! An adversary campaign against the paper's protocol, certified.
//!
//! A density-based clustering deployment is driven through a randomized
//! campaign — crash-recover, Byzantine beacons, partition/heal, regional
//! jam, plus classic state corruption — and the stabilization certifier
//! checks the three claims that make "self-stabilizing" a theorem
//! rather than a slogan: closure over quiet intervals, restabilization
//! within the horizon after every fault, and the forced-eager liveness
//! audit (no node left gated-asleep on stale state).
//!
//! ```sh
//! cargo run --example chaos_campaign
//! ```

use rand::SeedableRng;
use selfstab::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    // 200 radios, 150 m range over the unit square — dense enough for
    // real cluster structure, small enough to certify in seconds.
    let topo = builders::uniform(200, 0.15, &mut rng);
    println!(
        "deployment: {} radios, {} links",
        topo.len(),
        topo.edge_count()
    );

    // One compact, replayable adversary: 8 faults over all healing
    // kinds, drawn deterministically from the campaign seed.
    let spec = CampaignSpec {
        seed: 42,
        injections: 8,
        spacing: 12,
        max_window: 5,
        kinds: FaultKind::healing(),
    };
    let cfg = CertifyConfig::default();

    // Cell 1: perfect medium, round driver.
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(topo.clone())
        .seed(7)
        .build()
        .expect("valid scenario");
    let perfect = certify(
        &mut net,
        "density-cluster",
        "perfect",
        "round",
        &spec,
        &topo,
        &cfg,
    );
    println!("\n{}", perfect.headline());

    // Cell 2: the same campaign over gated slotted CSMA — beacons now
    // genuinely collide, and the liveness audit still has to hold.
    let mut csma = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(topo.clone())
        .seed(7)
        .medium(SlottedCsma::new(16))
        .build()
        .expect("valid scenario");
    let contended = certify(
        &mut csma,
        "density-cluster",
        "csma-16",
        "round",
        &spec,
        &topo,
        &cfg,
    );
    println!("{}", contended.headline());

    println!("\nrestabilization by fault class (perfect cell):");
    println!(
        "  {:<18} {:>4} {:>6} {:>6} {:>6}  wilson 95%",
        "class", "n", "p50", "p95", "worst"
    );
    for class in &perfect.classes {
        println!(
            "  {:<18} {:>4} {:>6.1} {:>6.1} {:>6.1}  [{:.2}, {:.2}]",
            class.class,
            class.injections,
            class.p50,
            class.p95,
            class.worst,
            class.wilson_low,
            class.wilson_high
        );
    }

    println!("\ncertificate (machine-readable):");
    println!("{}", perfect.to_json());
}
