//! The actor fabric at scale: message-passing processes vs. the
//! synchronous reference, across network sizes and thread counts.
//!
//! Two claims with numbers attached:
//!
//! 1. **Agreement survives scale.** At every measured size and thread
//!    count the actor driver stabilizes in exactly the round driver's
//!    period count with exactly its message total — the commutative-
//!    receive argument of the agreement suite, re-checked at n = 10⁴.
//! 2. **The token governor keeps actors feasible.** Virtual-time slot
//!    release means a period costs O(active) sends plus O(deliveries)
//!    receives — no wall-clock timers, no idle spinning — so tens of
//!    thousands of actor-nodes step at interactive rates.
//!
//! `BENCH_actors.json` is the payload CI archives.

use std::time::Instant;

use mwn_cluster::{ClusterConfig, DensityCluster};
use mwn_graph::builders;
use mwn_sim::{Scenario, StopWhen};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One thread count's measurements at one network size.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadPoint {
    /// Worker threads driving the send/receive phases.
    pub threads: usize,
    /// Periods until the election output stabilized.
    pub stabilization_periods: u64,
    /// Actor periods executed per wall-clock second while converging.
    pub steps_per_sec: f64,
    /// Actor periods per second across a post-stabilization quiet
    /// stretch (gated: no sends, no receives — pure governor overhead).
    pub quiet_steps_per_sec: f64,
    /// Beacon broadcasts until stabilization.
    pub messages_total: u64,
}

/// One network size's actor-vs-round measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct ActorScalingPoint {
    /// Poisson intensity requested.
    pub intensity: usize,
    /// Actual node count of the deployment.
    pub nodes: usize,
    /// Undirected link count.
    pub edges: usize,
    /// Round-driver reference: periods until stabilization.
    pub round_periods: u64,
    /// Round-driver reference: messages until stabilization.
    pub round_messages: u64,
    /// Round-driver steps per wall-clock second while converging.
    pub round_steps_per_sec: f64,
    /// Per-thread-count actor measurements.
    pub per_thread: Vec<ThreadPoint>,
}

impl ActorScalingPoint {
    /// Whether every thread count reproduced the round driver exactly
    /// (periods and message totals).
    pub fn agrees(&self) -> bool {
        self.per_thread.iter().all(|t| {
            t.stabilization_periods == self.round_periods && t.messages_total == self.round_messages
        })
    }
}

fn radius_for(n: usize, degree_target: f64) -> f64 {
    (degree_target / (n as f64 * std::f64::consts::PI)).sqrt()
}

fn stop() -> StopWhen<DensityCluster> {
    StopWhen::stable_for(3).within(10_000)
}

/// Runs the actor scaling measurement at one Poisson intensity:
/// the round-driver reference once, then the actor fabric at each of
/// `threads`, asserting exact agreement along the way.
///
/// # Panics
///
/// Panics if any driver fails to stabilize within the budget, or if an
/// actor run disagrees with the round-driver reference.
pub fn run_point(
    intensity: usize,
    seed: u64,
    threads: &[usize],
    quiet_steps: u64,
) -> ActorScalingPoint {
    let radius = radius_for(intensity, 8.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = builders::poisson(intensity as f64, radius, &mut rng);
    let nodes = topo.len();
    let edges = topo.edge_count();
    let config = ClusterConfig::default().event_driven();

    // The synchronous reference.
    let mut net = Scenario::new(DensityCluster::new(config))
        .topology(topo.clone())
        .seed(seed)
        .build()
        .expect("valid scenario");
    let start = Instant::now();
    let report = net.run_to(&stop());
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let round_periods = report
        .stabilized
        .expect("the election stabilizes (Lemma 2)");
    let round_messages = net.messages_total();
    let round_steps_per_sec = report.steps as f64 / elapsed;

    let per_thread = threads
        .iter()
        .map(|&t| {
            let mut actors = Scenario::new(DensityCluster::new(config))
                .topology(topo.clone())
                .seed(seed)
                .build_actors(t)
                .expect("valid actor scenario");
            let start = Instant::now();
            let report = actors.run_to(&stop());
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            let stabilization_periods = report
                .stabilized
                .expect("the actor election stabilizes (Lemma 2)");
            let messages_total = actors.messages_total();
            assert_eq!(
                (stabilization_periods, messages_total),
                (round_periods, round_messages),
                "actor run (threads = {t}) diverged from the round driver at n = {nodes}"
            );
            // Quiet stretch: stabilized + gated, so a period is pure
            // governor bookkeeping.
            let start = Instant::now();
            actors.run(quiet_steps);
            let quiet_elapsed = start.elapsed().as_secs_f64().max(1e-9);
            ThreadPoint {
                threads: t,
                stabilization_periods,
                steps_per_sec: report.steps as f64 / elapsed,
                quiet_steps_per_sec: quiet_steps as f64 / quiet_elapsed,
                messages_total,
            }
        })
        .collect();

    ActorScalingPoint {
        intensity,
        nodes,
        edges,
        round_periods,
        round_messages,
        round_steps_per_sec,
        per_thread,
    }
}

/// Runs the full size sweep.
pub fn run(
    sizes: &[usize],
    seed: u64,
    threads: &[usize],
    quiet_steps: u64,
) -> Vec<ActorScalingPoint> {
    sizes
        .iter()
        .map(|&n| run_point(n, seed, threads, quiet_steps))
        .collect()
}

/// Renders the results as a JSON array (hand-rolled: the workspace's
/// offline `serde` shim has no serializer), the `BENCH_actors.json`
/// payload CI archives.
pub fn to_json(points: &[ActorScalingPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"intensity\": {}, \"nodes\": {}, \"edges\": {}, ",
                "\"round_periods\": {}, \"round_messages\": {}, ",
                "\"round_steps_per_sec\": {:.1}, \"agrees\": {}, ",
                "\"per_thread\": ["
            ),
            p.intensity,
            p.nodes,
            p.edges,
            p.round_periods,
            p.round_messages,
            p.round_steps_per_sec,
            p.agrees(),
        ));
        for (j, t) in p.per_thread.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "{{\"threads\": {}, \"stabilization_periods\": {}, ",
                    "\"steps_per_sec\": {:.1}, \"quiet_steps_per_sec\": {:.1}, ",
                    "\"messages_total\": {}}}{}"
                ),
                t.threads,
                t.stabilization_periods,
                t.steps_per_sec,
                t.quiet_steps_per_sec,
                t.messages_total,
                if j + 1 == p.per_thread.len() {
                    ""
                } else {
                    ", "
                }
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders a human-readable table (columns: network sizes).
pub fn render(points: &[ActorScalingPoint]) -> mwn_metrics::Table {
    let mut table = mwn_metrics::Table::new("Actor fabric vs synchronous reference");
    let mut headers = vec!["n".to_string()];
    headers.extend(points.iter().map(|p| p.nodes.to_string()));
    table.set_headers(headers);
    table.add_numeric_row(
        "stabilization (periods)",
        &points
            .iter()
            .map(|p| p.round_periods as f64)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "round steps/s converging",
        &points
            .iter()
            .map(|p| p.round_steps_per_sec)
            .collect::<Vec<_>>(),
        0,
    );
    let thread_counts: Vec<usize> = points
        .first()
        .map(|p| p.per_thread.iter().map(|t| t.threads).collect())
        .unwrap_or_default();
    for (k, t) in thread_counts.iter().enumerate() {
        table.add_numeric_row(
            format!("actor steps/s (threads={t})"),
            &points
                .iter()
                .map(|p| p.per_thread[k].steps_per_sec)
                .collect::<Vec<_>>(),
            0,
        );
        table.add_numeric_row(
            format!("quiet steps/s (threads={t})"),
            &points
                .iter()
                .map(|p| p.per_thread[k].quiet_steps_per_sec)
                .collect::<Vec<_>>(),
            0,
        );
    }
    table.add_row(
        "agrees with rounds",
        points
            .iter()
            .map(|p| p.agrees().to_string())
            .collect::<Vec<_>>(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_point_agrees_and_reports() {
        let p = run_point(300, 7, &[1, 2], 50);
        assert!(p.nodes > 200);
        assert!(p.agrees(), "actor runs must replay the round driver");
        assert_eq!(p.per_thread.len(), 2);
        assert!(p.per_thread.iter().all(|t| t.steps_per_sec > 0.0));
        let json = to_json(std::slice::from_ref(&p));
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert!(json.contains("\"agrees\": true"));
        assert!(!render(&[p]).to_string().is_empty());
    }
}
