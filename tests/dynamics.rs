//! Dynamics integration tests: the protocol running *while* the
//! topology changes under it — mobility re-convergence, incremental
//! link churn, and the stability benefit of the Section 4.3 rules.

use rand::SeedableRng;
use selfstab::prelude::*;

#[test]
fn protocol_restabilizes_after_each_mobility_burst() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let topo = builders::poisson(200.0, 0.12, &mut rng);
    let n = topo.len();
    let model = RandomWaypoint::new(n, 0.0..=meters_per_second(10.0), 0.0);
    let mut scenario = MobileScenario::new(topo.clone(), model, 11);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo)
        .seed(11)
        .build()
        .expect("valid scenario");
    net.run(25);
    let stop = StopWhen::stable_for(4).within(50_000);
    for burst in 0..6 {
        // 10 seconds of vehicular movement, then let the protocol run.
        scenario.advance(10.0);
        net.set_topology(scenario.topology().clone())
            .expect("mobility keeps the node count");
        let report = net.run_to(&stop);
        assert!(report.is_stable(), "burst {burst}: no restabilization");
        let got = extract_clustering(net.states()).expect("clean");
        let want = oracle(net.topology(), &OracleConfig::default());
        assert_eq!(got, want, "burst {burst}");
    }
}

#[test]
fn continuous_small_churn_keeps_output_near_fixpoint() {
    // One link flap per step: the protocol chases the moving fixpoint;
    // when churn stops it must land exactly on it.
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let base = builders::uniform(60, 0.18, &mut rng);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(base.clone())
        .seed(12)
        .build()
        .expect("valid scenario");
    net.run(20);
    let edges: Vec<(NodeId, NodeId)> = base.edges().collect();
    for (i, &(u, v)) in edges.iter().take(30).enumerate() {
        let mut topo = net.topology().clone();
        if i % 2 == 0 {
            topo.remove_edge(u, v);
        } else {
            topo.add_edge(u, v).unwrap();
        }
        net.set_topology(topo).expect("same node count");
        net.run(1);
    }
    // Restore the exact original topology and settle.
    net.set_topology(base).expect("same node count");
    net.run_to(&StopWhen::stable_for(4).within(5000))
        .expect_stable("settles after churn stops");
    let got = extract_clustering(net.states()).expect("clean");
    assert_eq!(got, oracle(net.topology(), &OracleConfig::default()));
}

#[test]
fn incumbency_reduces_reelections_under_mobility() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let topo = builders::poisson(300.0, 0.1, &mut rng);
    let n = topo.len();

    let measure = |improved: bool| -> f64 {
        let model = RandomWaypoint::new(n, 0.0..=meters_per_second(1.6), 0.0);
        let mut scenario = MobileScenario::new(topo.clone(), model, 13);
        let mut prev = oracle(scenario.topology(), &OracleConfig::default());
        let mut persistence = RunningStats::new();
        for _ in 0..40 {
            scenario.advance(2.0);
            let cfg = if improved {
                OracleConfig {
                    order: OrderKind::Stable,
                    rule: HeadRule::Fusion,
                    prev_heads: Some(
                        scenario
                            .topology()
                            .nodes()
                            .map(|p| prev.is_head(p))
                            .collect(),
                    ),
                    ..OracleConfig::default()
                }
            } else {
                OracleConfig::default()
            };
            let next = oracle(scenario.topology(), &cfg);
            persistence.push(next.head_persistence_from(&prev));
            prev = next;
        }
        persistence.mean()
    };

    let with_rules = measure(true);
    let without = measure(false);
    assert!(
        with_rules >= without - 0.02,
        "4.3 rules: {with_rules:.3} vs basic {without:.3}"
    );
}

#[test]
fn mobile_scenario_with_live_protocol_round_per_tick() {
    // The fully coupled loop through the scenario builder: the
    // attached mobility dynamics move the nodes before every protocol
    // step (1 s per step at pedestrian speed — the paper's mobility
    // study setting, finely discretized). The clustering must remain
    // structurally sane throughout: head claims resolve to nodes that
    // claim themselves once the network quiesces at the end.
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let topo = builders::poisson(150.0, 0.12, &mut rng);
    let n = topo.len();
    let model = RandomWaypoint::new(n, 0.0..=meters_per_second(1.6), 0.0);
    let mobile = MobileScenario::new(topo.clone(), model, 14);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig {
        cache_ttl: 3,
        ..ClusterConfig::default()
    }))
    .topology(topo)
    .seed(14)
    .mobility(mobile.into_dynamics(1.0))
    .build()
    .expect("valid scenario");
    net.run(70); // ~70 seconds of movement with the protocol live
                 // Movement continues, but the protocol must keep its output
                 // structurally clean modulo the churn: the live snapshot's claims
                 // stay in range.
    let clustering = extract_clustering(net.states());
    assert!(
        clustering.is_some(),
        "claims stay in range while the network moves"
    );
    // Movement stops: detach the dynamics and let the *live* network
    // — churned caches, mid-flight election and all — settle. It must
    // stabilize to the oracle of wherever the nodes ended up.
    assert!(net.stop_dynamics(), "mobility was attached");
    net.run_to(&StopWhen::stable_for(4).within(5000))
        .expect_stable("stabilizes once movement stops");
    let got = extract_clustering(net.states()).expect("clean");
    assert_eq!(got, oracle(net.topology(), &OracleConfig::default()));
}
