//! Property-based tests of the mobility substrate: physical continuity
//! (no teleporting), containment, and reproducibility — for both
//! models under arbitrary parameters.

use mwn_graph::Point2;
use mwn_mobility::{MobileScenario, MobilityModel, RandomDirection, RandomWaypoint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn positions_strategy() -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 1..40)
        .prop_map(|pts| pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Positions never leave the unit square.
    #[test]
    fn waypoint_stays_in_bounds(
        mut positions in positions_strategy(),
        vmax in 0.0f64..0.2,
        pause in 0.0f64..3.0,
        seed in 0u64..u64::MAX,
        steps in 1usize..60,
    ) {
        let mut model = RandomWaypoint::new(positions.len(), 0.0..=vmax, pause);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            model.step(&mut positions, 1.0, &mut rng);
            prop_assert!(positions.iter().all(|p| p.in_unit_square()));
        }
    }

    /// Per-step displacement is bounded by vmax · dt for both models.
    #[test]
    fn displacement_is_physically_continuous(
        mut positions in positions_strategy(),
        vmax in 0.0f64..0.1,
        dt in 0.1f64..5.0,
        seed in 0u64..u64::MAX,
        direction_model in any::<bool>(),
    ) {
        let n = positions.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let before = positions.clone();
        if direction_model {
            let mut model = RandomDirection::new(n, 0.0..=vmax, 2.0);
            model.step(&mut positions, dt, &mut rng);
        } else {
            let mut model = RandomWaypoint::new(n, 0.0..=vmax, 0.0);
            model.step(&mut positions, dt, &mut rng);
        }
        for (a, b) in before.iter().zip(&positions) {
            prop_assert!(
                a.distance(*b) <= vmax * dt + 1e-9,
                "moved {} > {}", a.distance(*b), vmax * dt
            );
        }
    }

    /// Identical seeds replay identical trajectories.
    #[test]
    fn trajectories_are_reproducible(
        positions in positions_strategy(),
        vmax in 0.0f64..0.1,
        seed in 0u64..u64::MAX,
    ) {
        let run = |mut pts: Vec<Point2>| {
            let mut model = RandomDirection::new(pts.len(), 0.0..=vmax, 3.0);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                model.step(&mut pts, 0.7, &mut rng);
            }
            pts
        };
        prop_assert_eq!(run(positions.clone()), run(positions));
    }

    /// A mobile scenario always maintains a consistent unit-disk graph.
    #[test]
    fn scenario_edges_match_positions(
        seed in 0u64..u64::MAX,
        vmax in 0.0f64..0.05,
        n in 2usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = mwn_graph::builders::uniform(n, 0.15, &mut rng);
        let model = RandomWaypoint::new(n, 0.0..=vmax, 0.0);
        let mut scenario = MobileScenario::new(topo, model, seed);
        for _ in 0..5 {
            scenario.advance(2.0);
        }
        let topo = scenario.topology();
        let positions = topo.positions().unwrap();
        let radius = topo.radius().unwrap();
        for p in topo.nodes() {
            for q in topo.nodes() {
                if p == q { continue; }
                let in_range =
                    positions[p.index()].distance(positions[q.index()]) <= radius;
                prop_assert_eq!(topo.has_edge(p, q), in_range);
            }
        }
    }
}
