//! Power control: the paper's density-bound knob. Section 3 assumes a
//! known constant δ bounding every neighborhood and notes that "a
//! control on density can be done by adjusting their communication
//! range and/or powering off nodes in areas that are too dense". This
//! example plays the operator: pick the largest radio range whose
//! predicted mean degree stays under a target, deploy, verify δ, and
//! confirm the clustering quality across ranges.
//!
//! ```sh
//! cargo run --example power_control
//! ```

use rand::SeedableRng;
use selfstab::graph::stats::{expected_poisson_degree, DegreeStats};
use selfstab::prelude::*;

fn main() {
    let lambda = 1000.0;
    let target_mean_degree = 10.0;

    // The analytic knob: mean degree ≈ λ·π·R².
    let r_star = (target_mean_degree / (lambda * std::f64::consts::PI)).sqrt();
    println!(
        "λ = {lambda}: to keep the mean degree ≤ {target_mean_degree}, \
         the model says R ≤ {r_star:.4} ({}m on a 1 km side)",
        (r_star * 1000.0).round()
    );

    let mut table = Table::new("range sweep: degree control vs clustering quality");
    table.set_headers([
        "R",
        "predicted deg",
        "measured deg",
        "δ",
        "isolated",
        "clusters",
        "ecc",
    ]);
    for radius in [0.04, 0.06, r_star, 0.1, 0.13] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let topo = builders::poisson(lambda, radius, &mut rng);
        let stats = DegreeStats::of(&topo);
        let clustering = oracle(&topo, &OracleConfig::default());
        let cs = ClusteringStats::of(&topo, &clustering).expect("non-empty");
        table.add_row(
            format!("{radius:.3}"),
            vec![
                format!("{:.1}", expected_poisson_degree(lambda, radius)),
                format!("{:.1}", stats.mean),
                stats.max.to_string(),
                stats.isolated.to_string(),
                format!("{:.0}", cs.clusters),
                format!("{:.2}", cs.mean_head_eccentricity),
            ],
        );
    }
    println!("{table}");
    println!(
        "Reading: below R* coverage fragments (isolated nodes); above it the\n\
         neighborhoods — and the DAG name space γ = δ² the protocol needs —\n\
         grow quadratically for no extra clustering quality."
    );
}
