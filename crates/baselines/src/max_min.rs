//! The max-min d-cluster heuristic of Amis, Prakash, Vuong & Huynh
//! (INFOCOM 2000) — the paper's reference \[1\].
//!
//! The heuristic elects cluster-heads such that every node is within
//! `d` hops of its head, using `2d` synchronous flooding rounds:
//!
//! 1. **Floodmax** (`d` rounds): each node repeatedly adopts the
//!    largest id heard in its closed neighborhood; after `d` rounds it
//!    knows the largest id within `d` hops.
//! 2. **Floodmin** (`d` rounds): starting from the floodmax winner,
//!    each node adopts the *smallest* value heard — giving smaller ids
//!    that "won" some region a chance to reclaim their territory.
//! 3. **Election rules** per node `p` with round logs `W` (floodmax)
//!    and `M` (floodmin):
//!    * Rule 1 — if `p`'s own id appears in `M`, `p` is a head;
//!    * Rule 2 — else, among ids appearing in both `W` and `M`
//!      (*node pairs*), pick the smallest as head;
//!    * Rule 3 — else adopt the floodmax winner `W[d]`.

use std::collections::BTreeSet;

use mwn_cluster::Clustering;
use mwn_graph::{traversal, NodeId, Topology};

/// Runs the max-min d-cluster election synchronously and returns the
/// resulting clustering. Parent pointers follow shortest paths toward
/// the elected head (ties to the smallest id), so tree metrics are
/// comparable with the density clustering's.
///
/// # Panics
///
/// Panics if `d == 0`.
///
/// # Examples
///
/// ```
/// use mwn_baselines::max_min_clustering;
/// use mwn_graph::builders;
///
/// let topo = builders::line(9);
/// let c = max_min_clustering(&topo, 2);
/// // Every node is within d = 2 hops of its head.
/// for p in topo.nodes() {
///     let d = mwn_graph::traversal::bfs_distances(&topo, c.head(p));
///     assert!(d[p.index()].unwrap() <= 2);
/// }
/// ```
pub fn max_min_clustering(topo: &Topology, d: usize) -> Clustering {
    assert!(d > 0, "max-min requires d ≥ 1");
    let n = topo.len();
    if n == 0 {
        return Clustering::new(Vec::new(), Vec::new());
    }

    // Round logs; W[0] is the initial value (own id).
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut w_log: Vec<Vec<u32>> = vec![ids.clone()];
    // Floodmax: adopt the largest value in the closed neighborhood.
    for _ in 0..d {
        let prev = w_log.last().expect("log never empty");
        let mut next = prev.clone();
        for p in topo.nodes() {
            for &q in topo.neighbors(p) {
                next[p.index()] = next[p.index()].max(prev[q.index()]);
            }
        }
        w_log.push(next);
    }
    // Floodmin: adopt the smallest value in the closed neighborhood.
    let mut m_log: Vec<Vec<u32>> = vec![w_log.last().expect("floodmax ran").clone()];
    for _ in 0..d {
        let prev = m_log.last().expect("log never empty");
        let mut next = prev.clone();
        for p in topo.nodes() {
            for &q in topo.neighbors(p) {
                next[p.index()] = next[p.index()].min(prev[q.index()]);
            }
        }
        m_log.push(next);
    }

    // Election rules.
    let mut head_id: Vec<u32> = vec![0; n];
    for p in topo.nodes() {
        let i = p.index();
        let my = p.value();
        let w_seen: BTreeSet<u32> = w_log.iter().skip(1).map(|round| round[i]).collect();
        let m_seen: BTreeSet<u32> = m_log.iter().skip(1).map(|round| round[i]).collect();
        head_id[i] = if m_seen.contains(&my) {
            my // Rule 1: reclaimed own id
        } else if let Some(&pair) = w_seen.intersection(&m_seen).next() {
            pair // Rule 2: smallest node pair
        } else {
            *w_log
                .last()
                .expect("floodmax ran")
                .get(i)
                .expect("in range")
        };
    }
    // A node elected by others must itself be a head even if its own
    // rules chose differently (the standard max-min consolidation).
    let elected: BTreeSet<u32> = head_id.iter().copied().collect();
    for p in topo.nodes() {
        if elected.contains(&p.value()) {
            head_id[p.index()] = p.value();
        }
    }

    // Parent pointers: shortest path toward the head; if the elected
    // head is unreachable (disconnected corner case), fall back to
    // self-head.
    let mut parent: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
    let mut head: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
    let heads: BTreeSet<u32> = head_id
        .iter()
        .enumerate()
        .filter(|&(i, &h)| h == i as u32)
        .map(|(_, &h)| h)
        .collect();
    for &h in &heads {
        let h = NodeId::new(h);
        let dist = traversal::bfs_distances(topo, h);
        for p in topo.nodes() {
            if head_id[p.index()] == h.value() && p != h {
                match dist[p.index()] {
                    Some(dp) => {
                        let next_hop = topo
                            .neighbors(p)
                            .iter()
                            .copied()
                            .filter(|&q| dist[q.index()] == Some(dp - 1))
                            .min()
                            .expect("a node at distance d has a neighbor at d-1");
                        parent[p.index()] = next_hop;
                        head[p.index()] = h;
                    }
                    None => {
                        parent[p.index()] = p;
                        head[p.index()] = p;
                    }
                }
            }
        }
    }
    Clustering::new(parent, head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use rand::SeedableRng;

    #[test]
    fn every_node_within_d_hops_of_head() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for d in 1..=3 {
            let topo = builders::uniform(100, 0.15, &mut rng);
            let c = max_min_clustering(&topo, d);
            for p in topo.nodes() {
                let dist = traversal::bfs_distances(&topo, c.head(p));
                let hops = dist[p.index()].expect("head reachable");
                assert!(
                    hops as usize <= d,
                    "node {p} is {hops} hops from its head (d = {d})"
                );
            }
        }
    }

    #[test]
    fn heads_claim_themselves() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let topo = builders::uniform(80, 0.15, &mut rng);
        let c = max_min_clustering(&topo, 2);
        for p in topo.nodes() {
            assert!(c.is_head(c.head(p)), "head claim of {p} dangles");
            assert!(c.depth_in_hops(&topo, p).is_some(), "chain of {p} broken");
        }
    }

    #[test]
    fn isolated_nodes_head_themselves() {
        let topo = Topology::empty(4);
        let c = max_min_clustering(&topo, 2);
        assert_eq!(c.head_count(), 4);
    }

    #[test]
    fn complete_graph_elects_one_head() {
        let topo = builders::complete(10);
        let c = max_min_clustering(&topo, 1);
        assert_eq!(c.head_count(), 1, "K10 needs a single head");
    }

    #[test]
    fn line_with_d1_matches_structure() {
        let topo = builders::line(5);
        let c = max_min_clustering(&topo, 1);
        // d = 1: every node adjacent to its head.
        for p in topo.nodes() {
            let h = c.head(p);
            assert!(h == p || topo.has_edge(p, h));
        }
    }

    #[test]
    fn larger_d_never_increases_heads_much() {
        // More flooding rounds cover more ground: head count shrinks
        // (weakly) as d grows on connected graphs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let topo = builders::uniform(120, 0.2, &mut rng);
        let h1 = max_min_clustering(&topo, 1).head_count();
        let h3 = max_min_clustering(&topo, 3).head_count();
        assert!(h3 <= h1, "d=3 gave {h3} heads vs {h1} at d=1");
    }

    #[test]
    #[should_panic(expected = "d ≥ 1")]
    fn zero_d_rejected() {
        let _ = max_min_clustering(&builders::line(3), 0);
    }

    use mwn_graph::Topology;
}
