//! The paper's running example (Figure 1 / Table 1), end to end over
//! every medium and driver: the distributed protocol must always
//! recover the two clusters headed by `h` and `j`.

use rand::SeedableRng;
use selfstab::prelude::*;

fn paper_heads() -> Vec<NodeId> {
    // Label mapping (builders::FIG1_LABELS): j = 5, h = 7.
    vec![NodeId::new(5), NodeId::new(7)]
}

fn assert_paper_clustering(clustering: &Clustering) {
    assert_eq!(clustering.heads(), paper_heads());
    // Cluster membership from the paper's walkthrough: c joins b joins
    // h; f and g join j.
    let topo = builders::fig1_example();
    let by_label = |c: char| {
        NodeId::new(
            builders::FIG1_LABELS
                .iter()
                .position(|&l| l == c)
                .unwrap() as u32,
        )
    };
    let h = by_label('h');
    let j = by_label('j');
    for member in ['a', 'b', 'c', 'd', 'e', 'i'] {
        assert_eq!(clustering.head(by_label(member)), h, "member {member}");
    }
    for member in ['f', 'g'] {
        assert_eq!(clustering.head(by_label(member)), j, "member {member}");
    }
    let _ = topo;
}

#[test]
fn table1_densities_match_the_paper() {
    let topo = builders::fig1_example();
    let expect = [
        ('a', 1.0),
        ('b', 1.25),
        ('c', 1.0),
        ('e', 1.0),
        ('f', 1.5),
        ('h', 1.5),
        ('i', 1.25),
        ('j', 1.5),
    ];
    for (label, value) in expect {
        let p = NodeId::new(
            builders::FIG1_LABELS
                .iter()
                .position(|&l| l == label)
                .unwrap() as u32,
        );
        assert!(
            (density_of(&topo, p).as_f64() - value).abs() < 1e-12,
            "density of {label}"
        );
    }
}

#[test]
fn centralized_oracle_reproduces_figure_1() {
    let clustering = oracle(&builders::fig1_example(), &OracleConfig::default());
    assert_paper_clustering(&clustering);
}

#[test]
fn distributed_over_perfect_medium_reproduces_figure_1() {
    let mut net = Network::new(
        DensityCluster::new(ClusterConfig::default()),
        PerfectMedium,
        builders::fig1_example(),
        1,
    );
    net.run_until_stable(|_, s| s.output(), 3, 100).expect("stabilizes");
    assert_paper_clustering(&extract_clustering(net.states()).unwrap());
}

#[test]
fn distributed_over_csma_reproduces_figure_1() {
    for seed in 0..5 {
        let mut net = Network::new(
            DensityCluster::new(ClusterConfig {
                cache_ttl: 16,
                ..ClusterConfig::default()
            }),
            SlottedCsma::new(12),
            builders::fig1_example(),
            seed,
        );
        net.run_until_stable(|_, s| s.output(), 20, 5000)
            .expect("stabilizes under collisions");
        assert_paper_clustering(&extract_clustering(net.states()).unwrap());
    }
}

#[test]
fn distributed_over_bernoulli_loss_reproduces_figure_1() {
    for seed in 0..5 {
        let mut net = Network::new(
            DensityCluster::new(ClusterConfig {
                cache_ttl: 24,
                ..ClusterConfig::default()
            }),
            BernoulliLoss::new(0.4),
            builders::fig1_example(),
            seed,
        );
        net.run_until_stable(|_, s| s.output(), 30, 10_000)
            .expect("stabilizes at τ = 0.4");
        assert_paper_clustering(&extract_clustering(net.states()).unwrap());
    }
}

#[test]
fn event_driver_reproduces_figure_1() {
    let mut driver = EventDriver::new(
        DensityCluster::new(ClusterConfig {
            cache_ttl: 20,
            ..ClusterConfig::default()
        }),
        builders::fig1_example(),
        EventConfig::default(),
        2,
    );
    driver
        .run_until_stable(|_, s| s.output(), 1.0, 10, 1000.0)
        .expect("stabilizes in continuous time");
    assert_paper_clustering(&extract_clustering(driver.states()).unwrap());
}

#[test]
fn corrupting_the_example_always_heals_back() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut net = Network::new(
        DensityCluster::new(ClusterConfig::default()),
        PerfectMedium,
        builders::fig1_example(),
        5,
    );
    for _ in 0..10 {
        net.corrupt_all();
        net.run_until_stable(|_, s| s.output(), 3, 200)
            .expect("heals after corruption");
        assert_paper_clustering(&extract_clustering(net.states()).unwrap());
        let _ = rand::Rng::random_range(&mut rng, 0..10u32);
    }
}
