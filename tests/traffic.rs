//! Traffic-plane integration properties over the whole stack:
//!
//! * **no phantom edges** — no packet ever traverses an edge that is
//!   absent from the topology at its forwarding instant, under random
//!   link churn and under mobility on position-carrying grids;
//! * **sharded ≡ serial** — the full control-plane + data-plane
//!   pipeline produces byte-identical traffic reports regardless of
//!   the forwarding shard count;
//! * **both clocks** — a quiet stabilized network delivers 100% under
//!   the synchronous round driver *and* the continuous-time event
//!   driver.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfstab::prelude::*;
use selfstab::traffic::hottest_sink;

fn oracle_view(topo: &Topology) -> HierarchicalRoutes {
    HierarchicalRoutes::new(topo, oracle(topo, &OracleConfig::default()))
}

fn workload(n: usize, flows: usize, seed: u64) -> Vec<FlowSpec> {
    DemandModel {
        flows,
        mean_packets: 12.0,
        max_packets: 60,
        ..DemandModel::default()
    }
    .generate(n, seed)
}

/// Asserts every audited traversal `(step, u, v)` used an edge present
/// in `topo` (the topology in force at that step).
fn assert_no_phantom_edges(audit: &[(u64, NodeId, NodeId)], topo: &Topology) {
    for &(step, u, v) in audit {
        assert!(
            topo.has_edge(u, v),
            "step {step}: packet traversed missing edge {u}→{v}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random link churn: each step may sever a random present edge
    /// or restore the original topology wholesale. Forwarding must
    /// only ever use edges present at that exact step.
    #[test]
    fn no_phantom_edges_under_link_churn(
        n in 8usize..40,
        r in 15u32..35,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let original = {
            let mut trng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            builders::uniform(n, f64::from(r) / 100.0, &mut trng)
        };
        let mut topo = original.clone();
        let mut plane = TrafficPlane::new(n, TrafficConfig {
            ttl: 20,
            ..TrafficConfig::default()
        });
        plane.set_audit(true);
        plane.add_flows(&workload(n, 6, seed));

        for _ in 0..60 {
            // Churn: sever a random present edge, sometimes heal all.
            if rng.random_bool(0.3) {
                let edges: Vec<(NodeId, NodeId)> = topo.edges().collect();
                if let Some(&(u, v)) = edges.get(rng.random_range(0..edges.len().max(1)).min(edges.len().saturating_sub(1))) {
                    if !edges.is_empty() {
                        topo.remove_edge(u, v);
                    }
                }
            } else if rng.random_bool(0.1) {
                topo = original.clone();
            }
            // Routes answered from the *current* topology's oracle;
            // stale cache entries from earlier topologies are exactly
            // what the per-hop edge check must catch.
            let view = oracle_view(&topo);
            plane.on_step(&topo, Some(&view));
            assert_no_phantom_edges(&plane.take_audit(), &topo);
        }
    }

    /// Mobility churn: random-waypoint movement over a
    /// position-carrying grid continuously rewires the topology while
    /// packets are in flight.
    #[test]
    fn no_phantom_edges_under_mobility_grids(
        side in 4usize..8,
        seed in 0u64..1_000_000,
    ) {
        let topo = builders::grid(side, side, 0.3);
        let n = topo.len();
        let model = RandomWaypoint::new(n, 0.0..=meters_per_second(40.0), 0.5);
        let mut scenario = MobileScenario::new(topo, model, seed);
        let mut plane = TrafficPlane::new(n, TrafficConfig {
            ttl: 20,
            ..TrafficConfig::default()
        });
        plane.set_audit(true);
        plane.add_flows(&workload(n, 5, seed));

        for _ in 0..50 {
            scenario.advance(1.0);
            let view = oracle_view(scenario.topology());
            plane.on_step(scenario.topology(), Some(&view));
            assert_no_phantom_edges(&plane.take_audit(), scenario.topology());
        }
    }
}

/// The full pipeline — DensityCluster control plane, hierarchical
/// routes, heavy-tailed flows — as a function of the shard count:
/// byte-identical reports, serial vs any sharding, on both the
/// network's active pass and the plane's forwarding pass.
#[test]
fn sharded_traffic_pipeline_is_byte_identical_to_serial() {
    let run = |shards: usize| {
        let mut rng = StdRng::seed_from_u64(9);
        let topo = builders::poisson(400.0, 0.09, &mut rng);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
            .topology(topo.clone())
            .seed(9)
            .shards(shards)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(5).within(5_000))
            .expect_stable("stabilizes");
        let mut plane = TrafficPlane::new(topo.len(), TrafficConfig::default());
        plane.set_shards(Some(shards));
        plane.add_flows(&workload(topo.len(), 24, 9));
        let report = run_rounds(&mut net, &mut plane, 500, |topo, states| {
            extract_clustering(states).and_then(|c| HierarchicalRoutes::try_new(topo, c))
        });
        report.to_json()
    };
    let serial = run(1);
    for shards in [2, 4, 7] {
        assert_eq!(run(shards), serial, "shards={shards} diverged");
    }
}

/// Quiet delivery on the synchronous clock: a stabilized connected
/// network delivers every injected packet.
#[test]
fn round_clock_quiet_network_delivers_everything() {
    let topo = builders::grid(7, 7, 0.3);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo.clone())
        .seed(3)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(5).within(2_000))
        .expect_stable("stabilizes");
    let mut plane = TrafficPlane::new(
        topo.len(),
        TrafficConfig {
            queue_capacity: 1 << 16,
            ttl: 1 << 30,
            ..TrafficConfig::default()
        },
    );
    plane.add_flows(&workload(topo.len(), 10, 4));
    let report = run_rounds(&mut net, &mut plane, 5_000, |topo, states| {
        extract_clustering(states).and_then(|c| HierarchicalRoutes::try_new(topo, c))
    });
    assert_eq!(report.delivered, report.injected, "{report:?}");
    assert_eq!(report.delivered_fraction, 1.0);
    assert_eq!(report.dropped_stranded, 0);
    assert!(report.latency_p50 <= report.latency_p99);
}

/// Quiet delivery on the continuous-time clock: the same guarantee at
/// event-driver logical-step boundaries.
#[test]
fn event_clock_quiet_network_delivers_everything() {
    let topo = builders::grid(6, 6, 0.3);
    let mut driver = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(topo.clone())
        .seed(5)
        .build_events(EventConfig::default())
        .expect("valid scenario");
    // Stabilize the election before traffic starts.
    driver.run_until_time(60.0);
    let mut plane = TrafficPlane::new(
        topo.len(),
        TrafficConfig {
            queue_capacity: 1 << 16,
            ttl: 1 << 30,
            ..TrafficConfig::default()
        },
    );
    plane.add_flows(&workload(topo.len(), 8, 6));
    let report = run_events(&mut driver, &mut plane, 4_000, 1.0, |topo, states| {
        extract_clustering(states).and_then(|c| HierarchicalRoutes::try_new(topo, c))
    });
    assert_eq!(report.delivered, report.injected, "{report:?}");
    assert_eq!(report.delivered_fraction, 1.0);
}

/// Severing the hottest sink for longer than the TTL must show up as
/// non-zero stranded loss, and healing must restore delivery.
#[test]
fn fault_burst_strands_packets_then_recovers() {
    let topo = builders::grid(7, 7, 0.3);
    // Heavy enough that flows are still injecting when the outage
    // starts (the quick default drains in ~20 steps).
    let flows = DemandModel {
        flows: 12,
        mean_packets: 150.0,
        max_packets: 400,
        start_spread: 60,
        ..DemandModel::default()
    }
    .generate(topo.len(), 8);
    let hot = hottest_sink(&flows).expect("non-empty");
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(topo.clone())
        .seed(8)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(5).within(2_000))
        .expect_stable("stabilizes");
    let mut plane = TrafficPlane::new(
        topo.len(),
        TrafficConfig {
            ttl: 24,
            ..TrafficConfig::default()
        },
    );
    plane.add_flows(&flows);
    let view = |topo: &Topology, states: &[ClusterState]| {
        extract_clustering(states).and_then(|c| HierarchicalRoutes::try_new(topo, c))
    };
    run_rounds(&mut net, &mut plane, 40, view);
    net.isolate(hot);
    let mid = run_rounds(&mut net, &mut plane, 80, view);
    assert!(
        mid.dropped_stranded > 0,
        "no stranded loss during the outage: {mid:?}"
    );
    net.set_topology(topo.clone()).expect("same node count");
    let end = run_rounds(&mut net, &mut plane, 4_000, view);
    assert!(
        end.delivered > mid.delivered,
        "delivery did not resume after healing"
    );
    assert!(end.loss_during_restabilization > 0.0);
}
