//! The paper's formal claims, one test each. Every test quotes the
//! claim it checks, so this file doubles as a verification index.

use rand::SeedableRng;
use selfstab::prelude::*;

fn poisson_field(lambda: f64, radius: f64, seed: u64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    builders::poisson(lambda, radius, &mut rng)
}

/// Theorem 1: "Algorithm N1 self-stabilizes with probability 1 in an
/// expected constant time to a DAG which height is at most |γ| + 1."
#[test]
fn theorem_1_n1_stabilizes_to_a_bounded_height_dag() {
    let stop = StopWhen::stable_for(4).within(1000);
    for seed in 0..8 {
        let topo = poisson_field(300.0, 0.1, seed);
        let gamma = NameSpace::delta_squared(topo.max_degree().max(1));
        let mut net = Scenario::new(DagProtocol::new(gamma, DagVariant::Randomized, 4))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        // Arbitrary initial configuration (self-stabilization quantifies
        // over all of them).
        net.corrupt_all();
        let steps = net.run_to(&stop).expect_stable("w.p. 1 convergence");
        // "expected constant time": single-digit steps at any size.
        assert!(steps < 60, "seed {seed}: {steps} steps");
        let names: Vec<u32> = net.states().iter().map(|s| s.dag_id).collect();
        assert!(selfstab::cluster::is_locally_unique(net.topology(), &names));
        let height = selfstab::cluster::name_dag_height(net.topology(), &names);
        assert!(
            height <= gamma.size() + 1,
            "height {height} > |γ|+1 = {}",
            gamma.size() + 1
        );
    }
}

/// Lemma 1: "Each node p has a correct density value d_p within an
/// expected constant time."
#[test]
fn lemma_1_densities_correct_in_constant_time() {
    // The condition is a first-class StopWhen predicate — no driver
    // closure needed.
    let densities_correct = StopWhen::predicate(|topo, states: &[ClusterState]| {
        topo.nodes()
            .all(|p| states[p.index()].density == density_of(topo, p))
    })
    .within(100);
    for (lambda, seed) in [(150.0, 1), (300.0, 2), (600.0, 3)] {
        let radius = (8.0 / (lambda * std::f64::consts::PI)).sqrt();
        let topo = poisson_field(lambda, radius, seed);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        let report = net.run_to(&densities_correct);
        assert!(report.satisfied && !report.timed_out, "densities converge");
        // Constant: 2 steps on a perfect medium, independent of λ.
        assert_eq!(report.end_step, 2, "λ = {lambda}");
    }
}

/// Lemma 2: "Each node p has a correct cluster-head value H(p) within
/// an expected constant time. […] The algorithm stabilizes in an
/// expected time proportional to the height of the DAG_≺."
#[test]
fn lemma_2_heads_stabilize_proportionally_to_dag_height() {
    let stop = StopWhen::stable_for(3).within(500);
    let mut ratios = Vec::new();
    for seed in 0..6 {
        let topo = poisson_field(250.0, 0.12, seed);
        let cfg = OracleConfig::default();
        let keys = selfstab::cluster::keys_of(&topo, &cfg);
        let height = selfstab::cluster::order_dag_height(&topo, &keys, OrderKind::Basic).max(1);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        let steps = net.run_to(&stop).expect_stable("stabilizes");
        ratios.push(steps as f64 / f64::from(height));
    }
    // Proportionality: the steps/height ratio stays within a narrow
    // constant band across deployments.
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max <= 4.0, "steps exceeded 4× the DAG_≺ height: {ratios:?}");
}

/// Section 3: "two neighbors can not be both cluster-heads."
#[test]
fn claim_no_adjacent_heads() {
    for seed in 0..10 {
        let topo = poisson_field(300.0, 0.1, seed);
        let c = oracle(&topo, &OracleConfig::default());
        for h in c.heads() {
            for &q in topo.neighbors(h) {
                assert!(!c.is_head(q));
            }
        }
    }
}

/// Section 3 / [16]: "the number of cluster-heads computed with this
/// metric is bounded and decreases when the nodes intensity increases."
#[test]
fn claim_head_count_decreases_with_intensity() {
    let radius = 0.1;
    // The head count falls roughly geometrically in λ, but any single
    // deployment is noisy — average each intensity over a seed sweep.
    let mut mean_heads = Vec::new();
    for lambda in [300.0, 600.0, 1200.0] {
        let counts = Sweep::over(16, lambda as u64).map(|seed| {
            let topo = poisson_field(lambda, radius, seed);
            oracle(&topo, &OracleConfig::default()).head_count() as f64
        });
        let stats: RunningStats = counts.into_iter().collect();
        mean_heads.push(stats.mean());
    }
    assert!(
        mean_heads[0] >= mean_heads[1] && mean_heads[1] >= mean_heads[2],
        "head count should fall as intensity rises: {mean_heads:?}"
    );
}

/// Section 4.3, incumbency: "Cluster-heads remain cluster-heads as
/// long as possible."
#[test]
fn claim_incumbents_survive_density_ties() {
    // Build a 4-cycle where all densities are equal; whoever is head
    // stays head when re-elected under the Stable order.
    let topo = builders::ring(4);
    let first = oracle(
        &topo,
        &OracleConfig {
            order: OrderKind::Stable,
            ..OracleConfig::default()
        },
    );
    // Claim the *other* eligible node as previous head (node 2 — not
    // adjacent to node 0 on a 4-ring… it is opposite).
    let prev: Vec<bool> = topo.nodes().map(|p| p == NodeId::new(2)).collect();
    let second = oracle(
        &topo,
        &OracleConfig {
            order: OrderKind::Stable,
            prev_heads: Some(prev),
            ..OracleConfig::default()
        },
    );
    assert!(second.is_head(NodeId::new(2)), "incumbent 2 must stay");
    assert!(first.is_head(NodeId::new(0)), "without memory, id wins");
}

/// Section 4.3, fusion: "(iii) two cluster-heads are distant of at
/// least three hops."
#[test]
fn claim_fusion_heads_three_hops_apart() {
    for seed in 0..8 {
        let topo = poisson_field(350.0, 0.1, seed);
        let c = oracle(
            &topo,
            &OracleConfig {
                rule: HeadRule::Fusion,
                ..OracleConfig::default()
            },
        );
        for h in c.heads() {
            for q in topo.two_hop_neighborhood(h) {
                assert!(!c.is_head(q), "seed {seed}: heads {h},{q} too close");
            }
        }
    }
}

/// Section 4.3, fusion: "(ii) a cluster has at least a diameter of
/// two" — no two *adjacent* singleton-ish clusters survive: every
/// head beaten within 2 hops merges. We check the operational form:
/// under fusion, cluster count never exceeds the basic rule's.
#[test]
fn claim_fusion_merges_clusters() {
    for seed in 0..8 {
        let topo = poisson_field(350.0, 0.1, seed);
        let basic = oracle(&topo, &OracleConfig::default()).head_count();
        let fusion = oracle(
            &topo,
            &OracleConfig {
                rule: HeadRule::Fusion,
                ..OracleConfig::default()
            },
        )
        .head_count();
        assert!(
            fusion <= basic,
            "seed {seed}: fusion {fusion} > basic {basic}"
        );
    }
}

/// Section 5: "After one step, each node can discover its 1-neighbors.
/// After two steps, each node can compute its 2-neighbors and then its
/// density. After only three steps, each node knows its parent."
#[test]
fn claim_information_schedule() {
    let topo = poisson_field(250.0, 0.1, 5);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo)
        .seed(5)
        .build()
        .expect("valid scenario");
    let schedule = selfstab::cluster::measure_info_schedule(&mut net, 100);
    assert_eq!(schedule.neighbors, Some(1));
    assert_eq!(schedule.density, Some(2));
    assert_eq!(schedule.parent, Some(3));
}

/// Section 5: "the number of steps required to discover its
/// cluster-head identity directly depends on the distance from the
/// node to its cluster-head and is bounded by the depth of the tree."
#[test]
fn claim_head_discovery_bounded_by_tree_depth() {
    for seed in 0..5 {
        let topo = poisson_field(250.0, 0.1, seed);
        let want = oracle(&topo, &OracleConfig::default());
        let max_depth = topo
            .nodes()
            .filter_map(|p| want.depth_in_hops(&topo, p))
            .max()
            .unwrap_or(0) as u64;
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        let schedule = selfstab::cluster::measure_info_schedule(&mut net, 200);
        let heads_at = schedule.head.expect("heads converge");
        assert!(
            heads_at <= 3 + max_depth + 1,
            "seed {seed}: heads at step {heads_at}, tree depth {max_depth}"
        );
    }
}

/// Section 5, Table 4 narrative: "the mean cluster-head eccentricity
/// and tree length do not vary too much" across transmission radii.
#[test]
fn claim_eccentricity_flat_in_radius() {
    let radii = [0.05, 0.08, 0.1];
    // One parallel sweep over the whole radius × seed grid.
    let per_radius = Sweep::over(5, 700).map_grid(&radii, |&radius, seed| {
        let topo = poisson_field(700.0, radius, seed);
        let c = oracle(&topo, &OracleConfig::default());
        c.mean_head_eccentricity(&topo)
    });
    let eccs: Vec<f64> = per_radius
        .iter()
        .map(|runs| {
            let stats: RunningStats = runs.iter().flatten().copied().collect();
            stats.mean()
        })
        .collect();
    let min = eccs.iter().cloned().fold(f64::MAX, f64::min);
    let max = eccs.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max - min < 1.5,
        "eccentricity should be nearly flat in R: {eccs:?}"
    );
}

/// Section 5, grid narrative: "As the nodes' Ids are not well
/// distributed, all nodes will finally join the same head" (no DAG) —
/// "the DAG construction is very useful in such a case".
#[test]
fn claim_adversarial_grid_collapse_and_rescue() {
    let topo = builders::grid(24, 24, 0.05 * 31.0 / 23.0);
    assert_eq!(
        oracle(&topo, &OracleConfig::default()).head_count(),
        1,
        "row-major ids collapse the grid"
    );
    let gamma = NameSpace::delta_squared(topo.max_degree());
    let config = ClusterConfig {
        dag: Some(DagConfig {
            gamma,
            variant: DagVariant::SmallestIdRedraws,
        }),
        ..ClusterConfig::default()
    };
    let mut net = Scenario::new(DensityCluster::new(config))
        .topology(topo)
        .seed(9)
        .validate(move |t| config.validate_for(t))
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(4).within(1000))
        .expect_stable("stabilizes");
    let rescued = extract_clustering(net.states()).unwrap();
    assert!(rescued.head_count() > 10, "got {}", rescued.head_count());
}

/// Section 4 hypothesis: "there exists a constant τ > 0 such that the
/// probability of a frame transmission without collision is at least
/// τ" — and under exactly that (and nothing more), the protocol
/// stabilizes.
#[test]
fn claim_stabilization_under_minimal_radio_guarantee() {
    let topo = poisson_field(150.0, 0.12, 7);
    let want = oracle(&topo, &OracleConfig::default());
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig {
        cache_ttl: 40,
        ..ClusterConfig::default()
    }))
    .medium(BernoulliLoss::new(0.35))
    .topology(topo)
    .seed(7)
    .build()
    .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(45).within(60_000))
        .expect_stable("τ = 0.35 still converges");
    assert_eq!(extract_clustering(net.states()).unwrap(), want);
}
