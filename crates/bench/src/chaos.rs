//! **Chaos experiment**: the adversary-campaign certification at
//! scale — restabilization-time distributions per fault class, with
//! the closure and gated-liveness verdicts that make the numbers
//! trustworthy.
//!
//! Each size point deploys a Poisson field, stabilizes the paper's
//! density clustering, then drives it through a seed-deterministic
//! healing-fault campaign (crash-recover, Byzantine beacons,
//! partition/heal, regional jam, state corruption) on the round
//! driver and certifies the cell.

use mwn_chaos::{certify, CampaignSpec, Certificate, CertifyConfig, FaultKind};
use mwn_cluster::{ClusterConfig, DensityCluster};
use mwn_graph::builders;
use mwn_sim::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One network size's certification measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPoint {
    /// Poisson intensity requested.
    pub intensity: usize,
    /// Actual node count of the deployment.
    pub nodes: usize,
    /// Undirected link count.
    pub edges: usize,
    /// The certificate of the (density-cluster, perfect, round) cell.
    pub cert: Certificate,
}

fn radius_for(n: usize, degree_target: f64) -> f64 {
    (degree_target / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// Certifies one Poisson intensity.
///
/// # Panics
///
/// Panics if the scenario is malformed (it never is for a generated
/// deployment).
pub fn run_point(intensity: usize, seed: u64, quick: bool) -> ChaosPoint {
    let radius = radius_for(intensity, 8.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = builders::poisson(intensity as f64, radius, &mut rng);
    let nodes = topo.len();
    let edges = topo.edge_count();

    let spec = CampaignSpec {
        seed: seed ^ intensity as u64,
        injections: if quick { 6 } else { 12 },
        spacing: 12,
        max_window: 5,
        kinds: FaultKind::healing(),
    };
    let cfg = CertifyConfig {
        horizon: 600,
        ..CertifyConfig::default()
    };
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(topo.clone())
        .seed(seed)
        .build()
        .expect("valid scenario");
    let cert = certify(
        &mut net,
        "density-cluster",
        "perfect",
        "round",
        &spec,
        &topo,
        &cfg,
    );
    ChaosPoint {
        intensity,
        nodes,
        edges,
        cert,
    }
}

/// Certifies every requested size.
pub fn run(sizes: &[usize], seed: u64, quick: bool) -> Vec<ChaosPoint> {
    sizes.iter().map(|&n| run_point(n, seed, quick)).collect()
}

/// Renders the results as a JSON array (hand-rolled: the vendored
/// `serde` shim has no serializer) — the `BENCH_chaos.json` payload
/// CI archives.
pub fn to_json(points: &[ChaosPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"intensity\": {}, \"nodes\": {}, \"edges\": {}, \"certificate\": {}}}{}",
            p.intensity,
            p.nodes,
            p.edges,
            p.cert.to_json(),
            if i + 1 == points.len() { "" } else { "," }
        ));
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders a human-readable table: one column per size, one row per
/// fault class × {p50, p95, worst}.
pub fn render(points: &[ChaosPoint]) -> mwn_metrics::Table {
    let mut table =
        mwn_metrics::Table::new("Restabilization under adversary campaigns (steps, round driver)");
    let mut headers = vec!["n".to_string()];
    headers.extend(points.iter().map(|p| p.nodes.to_string()));
    table.set_headers(headers);
    let col = |f: &dyn Fn(&ChaosPoint) -> f64| points.iter().map(f).collect::<Vec<_>>();
    table.add_numeric_row("faults injected", &col(&|p| p.cert.injections as f64), 0);
    let mut classes: Vec<String> = Vec::new();
    for p in points {
        for c in &p.cert.classes {
            if !classes.contains(&c.class) {
                classes.push(c.class.clone());
            }
        }
    }
    classes.sort();
    for class in &classes {
        let stat = |which: fn(&mwn_chaos::ClassStats) -> f64| {
            move |p: &ChaosPoint| {
                p.cert
                    .classes
                    .iter()
                    .find(|c| &c.class == class)
                    .map_or(f64::NAN, which)
            }
        };
        table.add_numeric_row(format!("{class} p50"), &col(&stat(|c| c.p50)), 1);
        table.add_numeric_row(format!("{class} p95"), &col(&stat(|c| c.p95)), 1);
        table.add_numeric_row(format!("{class} worst"), &col(&stat(|c| c.worst)), 1);
    }
    table.add_numeric_row(
        "closure violations",
        &col(&|p| p.cert.closure_violations as f64),
        0,
    );
    table.add_numeric_row(
        "stale after audit",
        &col(&|p| p.cert.stale_after_audit as f64),
        0,
    );
    table.add_numeric_row(
        "certificate clean",
        &col(&|p| if p.cert.is_clean() { 1.0 } else { 0.0 }),
        0,
    );
    table
}
