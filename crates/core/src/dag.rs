//! The constant-height DAG construction of Section 4.1 (algorithm
//! **N1**): randomized renaming into a constant name space γ so that
//! adjacent nodes get distinct "colors". Orienting edges from higher
//! to lower name yields a DAG of height at most |γ| + 1 (Theorem 1),
//! which bounds the stabilization time of the subsequent election even
//! when the globally unique identifiers are adversarially distributed.

use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mwn_sim::{Corruptible, Protocol};

use crate::{Key, OrderKind, SmallMap};

/// How conflicts are resolved when re-drawing a DAG identifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DagVariant {
    /// The paper's algorithm N1 as specified: *every* node whose name
    /// collides with a cached neighbor name redraws
    /// (`Id_p := random(γ \ Cids_p)`). Converges with probability 1 in
    /// expected constant time.
    #[default]
    Randomized,
    /// The variant used in the paper's Section 5 simulations: "If DAG
    /// Ids are the same, the node with the smallest *normal* Id chooses
    /// another DAG Id" — only the smaller-id endpoint of a conflicting
    /// pair redraws, so exactly one party moves.
    SmallestIdRedraws,
}

/// The name space γ the DAG identifiers are drawn from.
///
/// The paper: "|γ| equals δ⁶ in \[11\], while δ² or even δ is sufficient
/// in our case"; Section 5 simulates with δ². Larger spaces converge
/// faster; smaller spaces give lower DAG heights.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NameSpace {
    size: u32,
}

impl NameSpace {
    /// γ of explicit size.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn of_size(size: u32) -> Self {
        assert!(size > 0, "the name space must be non-empty");
        NameSpace { size }
    }

    /// γ = δ², the paper's simulated choice, floored at δ + 2.
    ///
    /// The floor matters for very sparse graphs: with only δ + 1 names
    /// a conflicting pair under [`DagVariant::Randomized`] can be left
    /// with a *single* free name each — both deterministically swap
    /// into it and oscillate forever. One extra name restores the
    /// coin-flip that makes N1 converge with probability 1.
    pub fn delta_squared(delta: usize) -> Self {
        NameSpace::of_size((delta * delta).max(delta + 2) as u32)
    }

    /// γ = δ + 1, the smallest space that always leaves a free name
    /// (greedy coloring bound). Sufficient for
    /// [`DagVariant::SmallestIdRedraws`], where only one side of a
    /// conflict moves; the fully randomized variant needs at least
    /// δ + 2 names (see [`NameSpace::delta_squared`]).
    pub fn delta_plus_one(delta: usize) -> Self {
        NameSpace::of_size((delta + 1).max(2) as u32)
    }

    /// |γ|.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// `true` iff `id` lies inside γ.
    pub fn contains(&self, id: u32) -> bool {
        id < self.size
    }
}

/// The paper's `newId` function: keep the current name if no cached
/// neighbor uses it (and it is a legal name at all); otherwise draw
/// uniformly from `γ \ used`. If every name is used (degree ≥ |γ| —
/// a misconfiguration), the current name is kept so the system keeps
/// running.
pub fn new_id(current: u32, used: &[u32], gamma: NameSpace, rng: &mut StdRng) -> u32 {
    let conflict = !gamma.contains(current) || used.contains(&current);
    if !conflict {
        return current;
    }
    let used_in_gamma = {
        let mut u: Vec<u32> = used
            .iter()
            .copied()
            .filter(|&x| gamma.contains(x))
            .collect();
        u.sort_unstable();
        u.dedup();
        u
    };
    let free = gamma.size() as usize - used_in_gamma.len();
    if free == 0 {
        return current;
    }
    // Pick the k-th name of γ that is not in `used_in_gamma`.
    let k = rng.random_range(0..free);
    let mut skipped = 0usize;
    let mut candidate = 0u32;
    let mut used_iter = used_in_gamma.iter().peekable();
    loop {
        if used_iter.peek() == Some(&&candidate) {
            used_iter.next();
            candidate += 1;
            continue;
        }
        if skipped == k {
            return candidate;
        }
        skipped += 1;
        candidate += 1;
    }
}

/// `true` iff the name assignment is a proper coloring of the graph
/// (no two adjacent nodes share a name) — N1's legitimacy predicate.
pub fn is_locally_unique(topo: &Topology, names: &[u32]) -> bool {
    topo.edges()
        .all(|(u, v)| names[u.index()] != names[v.index()])
}

/// Height of the DAG obtained by orienting edges from higher to lower
/// name: the number of nodes on the longest strictly decreasing path.
/// Edges between equal names (not yet stabilized) are ignored.
pub fn name_dag_height(topo: &Topology, names: &[u32]) -> u32 {
    longest_path(topo, |p, q| names[p.index()] > names[q.index()])
}

/// Height of DAG_≺ (Lemma 2): the number of nodes on the longest path
/// that strictly descends the `≺` order between adjacent nodes. The
/// stabilization time of the election is proportional to this height.
pub fn order_dag_height(topo: &Topology, keys: &[Key], order: OrderKind) -> u32 {
    longest_path(topo, |p, q| {
        keys[q.index()].precedes(&keys[p.index()], order)
    })
}

/// Longest directed path (in nodes) where `dominates(p, q)` orients the
/// edge `p → q`. `dominates` must be acyclic on adjacent pairs.
fn longest_path<F>(topo: &Topology, dominates: F) -> u32
where
    F: Fn(NodeId, NodeId) -> bool,
{
    fn visit<F: Fn(NodeId, NodeId) -> bool>(
        topo: &Topology,
        dominates: &F,
        memo: &mut [u32],
        p: NodeId,
    ) -> u32 {
        if memo[p.index()] != 0 {
            return memo[p.index()];
        }
        let mut best = 1;
        for &q in topo.neighbors(p) {
            if dominates(p, q) {
                best = best.max(1 + visit(topo, dominates, memo, q));
            }
        }
        memo[p.index()] = best;
        best
    }
    let mut memo = vec![0u32; topo.len()];
    topo.nodes()
        .map(|p| visit(topo, &dominates, &mut memo, p))
        .max()
        .unwrap_or(0)
}

/// The standalone distributed DAG-renaming protocol (algorithm N1),
/// used to reproduce Table 3 ("number of steps needed to build the
/// DAG") in isolation from the election.
///
/// Each node's shared variable is its DAG identifier; caches of
/// neighbor identifiers (`Cids_p`) are refreshed by beacons and expire
/// after `cache_ttl` logical time units.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{is_locally_unique, DagProtocol, DagVariant, NameSpace};
/// use mwn_graph::builders;
/// use mwn_sim::{Scenario, StopWhen};
///
/// let topo = builders::grid(8, 8, 0.2);
/// let gamma = NameSpace::delta_squared(topo.max_degree());
/// let protocol = DagProtocol::new(gamma, DagVariant::SmallestIdRedraws, 4);
/// let mut net = Scenario::new(protocol)
///     .topology(topo)
///     .seed(1)
///     .build()
///     .expect("valid scenario");
/// net.run_to(&StopWhen::stable_for(3).within(200)).expect_stable("N1 converges");
/// let names: Vec<u32> = net.states().iter().map(|s| s.dag_id).collect();
/// assert!(is_locally_unique(net.topology(), &names));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagProtocol {
    gamma: NameSpace,
    variant: DagVariant,
    cache_ttl: u64,
    event_driven: bool,
}

impl DagProtocol {
    /// Creates the protocol. `cache_ttl` is how long (in steps) a
    /// cached neighbor name survives without being refreshed.
    pub fn new(gamma: NameSpace, variant: DagVariant, cache_ttl: u64) -> Self {
        DagProtocol {
            gamma,
            variant,
            cache_ttl: cache_ttl.max(1),
            event_driven: false,
        }
    }

    /// The event-driven variant: receiving an unchanged name is a
    /// no-op, cached names never expire by age (only future-stamped
    /// forgeries are purged, and the link layer evicts departed
    /// neighbors). This satisfies the silence contract under both
    /// clocks, so the protocol declares [`mwn_sim::Activity::Gated`]:
    /// a stabilized DAG costs the round driver zero messages and zero
    /// guard runs, and the continuous-time `EventDriver` stops
    /// scheduling its beacon slots entirely.
    pub fn event_driven(gamma: NameSpace, variant: DagVariant) -> Self {
        DagProtocol {
            gamma,
            variant,
            cache_ttl: 1,
            event_driven: true,
        }
    }

    /// The configured name space.
    pub fn gamma(&self) -> NameSpace {
        self.gamma
    }
}

/// Per-node state of [`DagProtocol`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagState {
    /// The node's current DAG identifier (shared variable `Id_p`).
    pub dag_id: u32,
    /// Cached neighbor identifiers with their last-refresh time.
    /// Sorted-vector backed for the same hot-loop reasons as
    /// [`crate::ClusterState::cache`].
    pub cache: SmallMap<NodeId, (u32, u64)>,
}

impl Protocol for DagProtocol {
    type State = DagState;
    type Beacon = u32;

    fn init(&self, _node: NodeId, rng: &mut StdRng) -> DagState {
        // "each node randomly chooses a DAG Id" (Section 5).
        DagState {
            dag_id: rng.random_range(0..self.gamma.size()),
            cache: SmallMap::new(),
        }
    }

    fn beacon(&self, _node: NodeId, state: &DagState) -> u32 {
        state.dag_id
    }

    fn receive(&self, _node: NodeId, state: &mut DagState, from: NodeId, beacon: &u32, now: u64) {
        if self.event_driven {
            // Silence contract: an unchanged name must be a state
            // no-op — not even a timestamp refresh.
            if state.cache.get(&from).map(|&(id, _)| id) == Some(*beacon) {
                return;
            }
        }
        state.cache.insert(from, (*beacon, now));
    }

    fn update(&self, node: NodeId, state: &mut DagState, now: u64, rng: &mut StdRng) {
        // Expire stale entries; timestamps from the future are
        // corrupted state and expire immediately. The event-driven
        // variant keeps entries alive through silence and only purges
        // forgeries.
        let ttl = self.cache_ttl;
        if self.event_driven {
            state.cache.retain(|_, &mut (_, seen)| seen <= now);
        } else {
            state
                .cache
                .retain(|_, &mut (_, seen)| seen <= now && now - seen < ttl);
        }
        let used: Vec<u32> = state.cache.values().map(|&(id, _)| id).collect();
        let conflicted = !self.gamma.contains(state.dag_id) || used.contains(&state.dag_id);
        if !conflicted {
            return;
        }
        let must_redraw = match self.variant {
            DagVariant::Randomized => true,
            DagVariant::SmallestIdRedraws => {
                // Out-of-γ names always redraw; otherwise only the
                // smaller-unique-id endpoint of a conflict moves.
                !self.gamma.contains(state.dag_id)
                    || state
                        .cache
                        .iter()
                        .any(|(&q, &(id, _))| id == state.dag_id && node < q)
            }
        };
        if must_redraw {
            state.dag_id = new_id(state.dag_id, &used, self.gamma, rng);
        }
    }

    fn activity(&self) -> mwn_sim::Activity {
        if self.event_driven {
            mwn_sim::Activity::Gated
        } else {
            mwn_sim::Activity::Eager
        }
    }

    fn beacon_changed(&self, old: &u32, new: &u32) -> bool {
        old != new
    }

    fn link_down(&self, _node: NodeId, state: &mut DagState, peer: NodeId) {
        state.cache.remove(&peer);
    }
}

impl mwn_sim::Observable for DagProtocol {
    /// The DAG identifier `Id_p` — N1's only shared variable, and the
    /// projection the Table 3 stabilization measurements quiesce on.
    type Output = u32;

    fn output(&self, _node: NodeId, state: &DagState) -> u32 {
        state.dag_id
    }
}

impl Corruptible for DagProtocol {
    fn corrupt(&self, _node: NodeId, state: &mut DagState, rng: &mut StdRng) {
        // Arbitrary name (possibly outside γ), arbitrary ghost cache
        // entries with arbitrary (possibly future) timestamps.
        state.dag_id = rng.random_range(0..u32::MAX);
        state.cache.clear();
        for _ in 0..rng.random_range(0..6) {
            let ghost = NodeId::new(rng.random_range(0..10_000));
            let name = rng.random_range(0..u32::MAX);
            let seen = rng.random_range(0..u64::MAX);
            state.cache.insert(ghost, (name, seen));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use mwn_radio::BernoulliLoss;
    use mwn_sim::{Network, Scenario, StopWhen};
    use rand::SeedableRng;

    fn names_of(net: &Network<DagProtocol, impl mwn_radio::Medium>) -> Vec<u32> {
        net.states().iter().map(|s| s.dag_id).collect()
    }

    #[test]
    fn event_driven_dag_goes_silent_once_colored() {
        let topo = builders::grid(8, 8, 0.2);
        let gamma = NameSpace::delta_squared(topo.max_degree());
        let mut net = Scenario::new(DagProtocol::event_driven(
            gamma,
            DagVariant::SmallestIdRedraws,
        ))
        .topology(topo.clone())
        .seed(3)
        .build()
        .expect("valid scenario");
        assert!(net.is_gated());
        net.run_to(&mwn_sim::StopWhen::stable_for(3).within(300))
            .expect_stable("N1 converges");
        assert!(is_locally_unique(&topo, &names_of(&net)));
        net.run(20);
        assert_eq!(
            net.last_activity().senders,
            0,
            "a proper coloring is silent"
        );
        assert_eq!(net.last_activity().updates, 0);
    }

    #[test]
    fn new_id_keeps_free_names() {
        let mut rng = StdRng::seed_from_u64(0);
        let gamma = NameSpace::of_size(8);
        assert_eq!(new_id(3, &[1, 2, 4], gamma, &mut rng), 3);
    }

    #[test]
    fn new_id_redraws_conflicts_outside_used_set() {
        let mut rng = StdRng::seed_from_u64(1);
        let gamma = NameSpace::of_size(8);
        for _ in 0..50 {
            let fresh = new_id(3, &[1, 2, 3], gamma, &mut rng);
            assert!(gamma.contains(fresh));
            assert!(![1, 2, 3].contains(&fresh));
        }
    }

    #[test]
    fn new_id_redraws_out_of_range_names() {
        let mut rng = StdRng::seed_from_u64(2);
        let gamma = NameSpace::of_size(4);
        let fresh = new_id(99, &[], gamma, &mut rng);
        assert!(gamma.contains(fresh));
    }

    #[test]
    fn new_id_with_full_namespace_keeps_current() {
        let mut rng = StdRng::seed_from_u64(3);
        let gamma = NameSpace::of_size(2);
        assert_eq!(new_id(0, &[0, 1], gamma, &mut rng), 0);
    }

    #[test]
    fn new_id_ignores_out_of_gamma_used_entries() {
        let mut rng = StdRng::seed_from_u64(4);
        let gamma = NameSpace::of_size(2);
        // `used` mentions 700 (outside γ): only 0 is truly taken.
        let fresh = new_id(0, &[0, 700], gamma, &mut rng);
        assert_eq!(fresh, 1);
    }

    #[test]
    fn both_variants_converge_on_grid() {
        for variant in [DagVariant::Randomized, DagVariant::SmallestIdRedraws] {
            let topo = builders::grid(10, 10, 0.15);
            let gamma = NameSpace::delta_squared(topo.max_degree());
            let mut net = Scenario::new(DagProtocol::new(gamma, variant, 4))
                .topology(topo)
                .seed(7)
                .build()
                .expect("valid scenario");
            let report = net.run_to(&StopWhen::stable_for(3).within(500));
            assert!(report.is_stable(), "{variant:?} did not converge");
            assert!(is_locally_unique(net.topology(), &names_of(&net)));
        }
    }

    #[test]
    fn converges_from_corrupted_state() {
        let topo = builders::grid(8, 8, 0.2);
        let gamma = NameSpace::delta_squared(topo.max_degree());
        let mut net = Scenario::new(DagProtocol::new(gamma, DagVariant::Randomized, 4))
            .topology(topo)
            .seed(8)
            .build()
            .expect("valid scenario");
        net.run(20);
        net.corrupt_all();
        net.run_to(&StopWhen::stable_for(5).within(500))
            .expect_stable("reconvergence after corruption");
        let names = names_of(&net);
        assert!(is_locally_unique(net.topology(), &names));
        assert!(names.iter().all(|&x| gamma.contains(x)), "names back in γ");
    }

    #[test]
    fn converges_under_lossy_medium() {
        let topo = builders::grid(6, 6, 0.25);
        let gamma = NameSpace::delta_squared(topo.max_degree());
        let mut net = Scenario::new(DagProtocol::new(gamma, DagVariant::Randomized, 10))
            .medium(BernoulliLoss::new(0.5))
            .topology(topo)
            .seed(9)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(10).within(2000))
            .expect_stable("N1 converges despite τ = 0.5");
        assert!(is_locally_unique(net.topology(), &names_of(&net)));
    }

    #[test]
    fn grid_converges_in_about_two_steps() {
        // Table 3: ~2 steps on average with γ = δ² at these densities.
        let mut total = 0u64;
        let runs = 30;
        for seed in 0..runs {
            let topo = builders::grid(10, 10, 0.12);
            let gamma = NameSpace::delta_squared(topo.max_degree());
            let mut net = Scenario::new(DagProtocol::new(gamma, DagVariant::SmallestIdRedraws, 4))
                .topology(topo)
                .seed(seed)
                .build()
                .expect("valid scenario");
            let t = net
                .run_to(&StopWhen::stable_for(5).within(200))
                .expect_stable("converges");
            total += t;
        }
        let mean = total as f64 / runs as f64;
        assert!(mean < 5.0, "expected ≈2 steps, measured {mean}");
    }

    #[test]
    fn name_dag_height_is_bounded_by_gamma() {
        let topo = builders::grid(12, 12, 0.1);
        let gamma = NameSpace::delta_squared(topo.max_degree());
        let mut net = Scenario::new(DagProtocol::new(gamma, DagVariant::Randomized, 4))
            .topology(topo)
            .seed(11)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(3).within(500))
            .expect_stable("converges");
        let names = names_of(&net);
        let height = name_dag_height(net.topology(), &names);
        assert!(height >= 1);
        assert!(
            height <= gamma.size() + 1,
            "Theorem 1: height {height} exceeds |γ|+1 = {}",
            gamma.size() + 1
        );
    }

    #[test]
    fn longest_path_on_a_line() {
        let topo = builders::line(5);
        let names = vec![4, 3, 2, 1, 0];
        assert_eq!(name_dag_height(&topo, &names), 5);
        let flat = vec![0, 0, 0, 0, 0];
        assert_eq!(name_dag_height(&topo, &flat), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_namespace_rejected() {
        let _ = NameSpace::of_size(0);
    }
}
