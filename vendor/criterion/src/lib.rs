//! Offline subset of `criterion`: the macros and types the workspace
//! benches use, backed by a simple fixed-sample timer instead of the
//! full statistical harness. Each benchmark runs a short warm-up, then
//! a fixed number of timed samples, and prints the mean per-iteration
//! time. Good enough for relative comparisons in an offline container;
//! swap in real criterion when registry access is available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; only a marker in this shim.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    #[default]
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Declared throughput of a benchmark, echoed in the output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs one benchmark's measurement loops.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, T, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iterations = self.samples as u64;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let mean = if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iterations as u32
        };
        match throughput {
            Some(Throughput::Elements(n)) => {
                println!("{name:<44} {mean:>12.2?}/iter  ({n} elems/iter)")
            }
            Some(Throughput::Bytes(n)) => {
                println!("{name:<44} {mean:>12.2?}/iter  ({n} bytes/iter)")
            }
            None => println!("{name:<44} {mean:>12.2?}/iter"),
        }
    }
}

/// The top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

const DEFAULT_SAMPLES: usize = 10;

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size.unwrap_or(DEFAULT_SAMPLES));
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the throughput echoed with each following benchmark.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("  {}", name.as_ref()), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(8));
        group.bench_function(format!("n{}", 8), |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
