use mwn_graph::{NodeId, Topology};
use mwn_radio::Medium;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::rng::{derive_seed, node_streams};
use crate::{Corruptible, Protocol, StabilityTracker};

/// The synchronous round driver: one call to [`Network::step`] is one
/// of the paper's Δ(τ) "steps" (Section 5).
///
/// Within a step, in order:
///
/// 1. every node takes a snapshot of its shared variables
///    ([`Protocol::beacon`]) — simultaneous, so information moves at
///    most one hop per step, exactly as in the paper's Table 2;
/// 2. the [`Medium`] decides which frame copies arrive;
/// 3. receivers process arrivals ([`Protocol::receive`]);
/// 4. every node executes its enabled guarded assignments
///    ([`Protocol::update`]).
///
/// All randomness comes from per-node streams plus one medium stream,
/// all derived from the constructor seed: runs are fully reproducible.
///
/// # Examples
///
/// See the crate-level example; [`Network::run_until_stable`] is the
/// workhorse used by the stabilization-time experiments.
#[derive(Debug)]
pub struct Network<P: Protocol, M> {
    protocol: P,
    medium: M,
    topo: Topology,
    states: Vec<P::State>,
    node_rngs: Vec<StdRng>,
    medium_rng: StdRng,
    step: u64,
}

impl<P: Protocol, M: Medium> Network<P, M> {
    /// Creates a network of cold-start nodes over `topo`.
    pub fn new(protocol: P, medium: M, topo: Topology, seed: u64) -> Self {
        let mut node_rngs = node_streams(seed, topo.len());
        let states = topo
            .nodes()
            .map(|p| protocol.init(p, &mut node_rngs[p.index()]))
            .collect();
        Network {
            protocol,
            medium,
            topo,
            states,
            node_rngs,
            medium_rng: StdRng::seed_from_u64(derive_seed(seed, u64::MAX)),
            step: 0,
        }
    }

    /// Executes one synchronous step; returns the new step count.
    pub fn step(&mut self) -> u64 {
        let beacons: Vec<P::Beacon> = self
            .topo
            .nodes()
            .map(|p| self.protocol.beacon(p, &self.states[p.index()]))
            .collect();
        let senders: Vec<NodeId> = self.topo.nodes().collect();
        let delivery = self
            .medium
            .deliver(&self.topo, &senders, &mut self.medium_rng);
        for r in self.topo.nodes() {
            for &s in &delivery.heard[r.index()] {
                self.protocol.receive(
                    r,
                    &mut self.states[r.index()],
                    s,
                    &beacons[s.index()],
                    self.step,
                );
            }
        }
        for p in self.topo.nodes() {
            self.protocol.update(
                p,
                &mut self.states[p.index()],
                self.step,
                &mut self.node_rngs[p.index()],
            );
        }
        self.step += 1;
        self.step
    }

    /// Runs `steps` synchronous steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until the projection of every node state is unchanged for
    /// `quiet` consecutive steps, or `max_steps` elapse.
    ///
    /// Returns `Some(step)` — the step count after which the projection
    /// last changed (the *stabilization time* in steps) — or `None` on
    /// timeout. A projection extracts the "output" part of the state
    /// (e.g. the cluster-head choice) so cache-refresh churn does not
    /// count as instability.
    pub fn run_until_stable<K, F>(
        &mut self,
        mut project: F,
        quiet: u64,
        max_steps: u64,
    ) -> Option<u64>
    where
        K: PartialEq,
        F: FnMut(NodeId, &P::State) -> K,
    {
        let mut tracker = StabilityTracker::new(quiet);
        let snapshot =
            |states: &[P::State], project: &mut F| -> Vec<K> {
                states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| project(NodeId::new(i as u32), s))
                    .collect()
            };
        tracker.observe(self.step, snapshot(&self.states, &mut project));
        while self.step < max_steps {
            self.step();
            if tracker.observe(self.step, snapshot(&self.states, &mut project)) {
                return Some(tracker.last_change());
            }
        }
        None
    }

    /// Runs until `pred` holds (checked after each step), or `max_steps`
    /// elapse. Returns the step count at which the predicate first held.
    pub fn run_until<F>(&mut self, mut pred: F, max_steps: u64) -> Option<u64>
    where
        F: FnMut(&Self) -> bool,
    {
        if pred(self) {
            return Some(self.step);
        }
        while self.step < max_steps {
            self.step();
            if pred(self) {
                return Some(self.step);
            }
        }
        None
    }

    /// Current step count.
    pub fn now(&self) -> u64 {
        self.step
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Replaces the topology (same node count), e.g. after a mobility
    /// tick moved nodes. States are preserved: the protocol must cope
    /// with neighbors appearing and disappearing — that is the point.
    ///
    /// # Panics
    ///
    /// Panics if the node count changes.
    pub fn set_topology(&mut self, topo: Topology) {
        assert_eq!(
            topo.len(),
            self.topo.len(),
            "set_topology cannot add or remove nodes"
        );
        self.topo = topo;
    }

    /// All node states, indexed by [`NodeId`].
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The state of one node.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.states[p.index()]
    }

    /// Mutable state access (used by hand-written fault scenarios).
    pub fn state_mut(&mut self, p: NodeId) -> &mut P::State {
        &mut self.states[p.index()]
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Severs every link of `p` by removing its edges — the node's
    /// radio goes dark but its state survives (crash of the *link*
    /// layer). Use [`Network::set_topology`] to restore connectivity.
    pub fn isolate(&mut self, p: NodeId) {
        let nbrs: Vec<NodeId> = self.topo.neighbors(p).to_vec();
        for q in nbrs {
            self.topo.remove_edge(p, q);
        }
    }
}

impl<P: Corruptible, M: Medium> Network<P, M> {
    /// Corrupts the state of one node arbitrarily.
    pub fn corrupt(&mut self, p: NodeId) {
        let state = &mut self.states[p.index()];
        self.protocol.corrupt(p, state, &mut self.node_rngs[p.index()]);
    }

    /// Corrupts every node: the adversarial "arbitrary initial
    /// configuration" of the self-stabilization definition.
    pub fn corrupt_all(&mut self) {
        let nodes: Vec<NodeId> = self.topo.nodes().collect();
        for p in nodes {
            self.corrupt(p);
        }
    }

    /// Corrupts a deterministic pseudo-random subset of about
    /// `fraction` of the nodes; returns how many were corrupted.
    pub fn corrupt_fraction(&mut self, fraction: f64) -> usize {
        use rand::Rng;
        let nodes: Vec<NodeId> = self.topo.nodes().collect();
        let mut count = 0;
        for p in nodes {
            if self.medium_rng.random_bool(fraction.clamp(0.0, 1.0)) {
                self.corrupt(p);
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use mwn_radio::{BernoulliLoss, PerfectMedium};

    /// Stabilizes to the maximum id seen; corruption plants a huge fake
    /// value that only TTL-free re-flooding would *not* fix — so we use
    /// it to test corrupt/convergence mechanics, not the protocol.
    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            // Re-asserting the node's own id is what makes the flood
            // self-stabilizing: corrupted state cannot erase the source.
            *state = (*state).max(node.value());
        }
    }
    impl Corruptible for MaxFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }

    #[test]
    fn max_flood_converges_on_a_line() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(6), 1);
        let stabilized = net.run_until_stable(|_, s| *s, 3, 100).unwrap();
        assert!(net.states().iter().all(|&s| s == 5));
        // Information moves one hop per step: node 0 is 5 hops from node 5.
        assert_eq!(stabilized, 5);
    }

    #[test]
    fn one_hop_per_step_information_speed() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(10), 1);
        net.run(3);
        // After 3 steps the max id (9) can have travelled exactly 3 hops.
        assert_eq!(*net.state(NodeId::new(6)), 9);
        assert_eq!(*net.state(NodeId::new(5)), 8);
    }

    #[test]
    fn lossy_medium_still_converges() {
        let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.3), builders::line(6), 3);
        let stabilized = net.run_until_stable(|_, s| *s, 10, 2000);
        assert!(stabilized.is_some(), "τ = 0.3 must still converge w.p. 1");
        assert!(net.states().iter().all(|&s| s == 5));
    }

    #[test]
    fn corruption_then_reconvergence() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::ring(8), 4);
        net.run(10);
        net.corrupt_all();
        assert!(net.states().iter().all(|&s| s == 0));
        net.run(10);
        assert!(net.states().iter().all(|&s| s == 7));
    }

    #[test]
    fn corrupt_fraction_reports_count() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::ring(50), 5);
        let corrupted = net.corrupt_fraction(0.5);
        assert!(corrupted > 5 && corrupted < 45, "got {corrupted}");
    }

    #[test]
    fn isolation_stops_information_flow() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(5), 6);
        net.isolate(NodeId::new(2)); // cut the middle
        net.run(20);
        // Max id 4 cannot cross the cut.
        assert_eq!(*net.state(NodeId::new(0)), 1);
        assert_eq!(*net.state(NodeId::new(1)), 1);
    }

    #[test]
    fn runs_are_reproducible_from_seed() {
        let run = |seed| {
            let mut net =
                Network::new(MaxFlood, BernoulliLoss::new(0.5), builders::ring(12), seed);
            net.run(7);
            net.states().to_vec()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn run_until_predicate() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(4), 1);
        let at = net
            .run_until(|n| n.states().iter().all(|&s| s == 3), 100)
            .unwrap();
        assert_eq!(at, 3);
    }

    #[test]
    #[should_panic(expected = "cannot add or remove nodes")]
    fn set_topology_rejects_resize() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(4), 1);
        net.set_topology(builders::line(5));
    }
}
