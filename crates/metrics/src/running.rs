use std::fmt;
use std::iter::FromIterator;

use serde::{Deserialize, Serialize};

/// Numerically stable running statistics (Welford's algorithm).
///
/// Accumulates count, mean, variance, min and max in `O(1)` memory —
/// suitable for the paper's 1000-run experiment averages without
/// storing every sample.
///
/// # Examples
///
/// ```
/// use mwn_metrics::RunningStats;
///
/// let mut stats = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.mean(), 5.0);
/// assert_eq!(stats.population_variance(), 4.0);
/// assert_eq!(stats.min(), 2.0);
/// assert_eq!(stats.max(), 9.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel
    /// combination); used when samples are collected across threads.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); 0 when fewer than 2 samples.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); 0 when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95% normal-approximation confidence interval
    /// for the mean (`1.96 · SEM`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Smallest sample; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Freezes the accumulator into a serializable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            ci95: self.ci95_half_width(),
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = RunningStats::new();
        for x in iter {
            stats.push(x);
        }
        stats
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (n={}, min={:.3}, max={:.3})",
            self.mean(),
            self.ci95_half_width(),
            self.count,
            if self.count == 0 { 0.0 } else { self.min },
            if self.count == 0 { 0.0 } else { self.max },
        )
    }
}

/// A frozen, serializable statistics record for experiment outputs.
///
/// # Examples
///
/// ```
/// use mwn_metrics::RunningStats;
///
/// let stats: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
/// let summary = stats.summary();
/// assert_eq!(summary.count, 3);
/// assert_eq!(summary.mean, 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Half-width of the 95% confidence interval for the mean.
    pub ci95: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let stats = RunningStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.std_dev(), 0.0);
        assert_eq!(stats.summary().min, 0.0);
    }

    #[test]
    fn single_sample() {
        let mut stats = RunningStats::new();
        stats.push(3.5);
        assert_eq!(stats.mean(), 3.5);
        assert_eq!(stats.sample_variance(), 0.0);
        assert_eq!(stats.min(), 3.5);
        assert_eq!(stats.max(), 3.5);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0)
            .collect();
        let stats: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((stats.mean() - mean).abs() < 1e-10);
        assert!((stats.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 0.01).collect();
        let ys: Vec<f64> = (0..300).map(|i| 100.0 - i as f64).collect();
        let mut a: RunningStats = xs.iter().copied().collect();
        let b: RunningStats = ys.iter().copied().collect();
        a.merge(&b);
        let all: RunningStats = xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small: RunningStats = (0..10).map(|i| i as f64).collect();
        let large: RunningStats = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn display_is_informative() {
        let stats: RunningStats = [1.0, 3.0].into_iter().collect();
        let s = stats.to_string();
        assert!(s.contains("2.000"));
        assert!(s.contains("n=2"));
    }
}
