use mwn_graph::{NodeId, Topology};
use serde::{Deserialize, Serialize};

use crate::{density_from_rows, density_from_tables, density_of, Density};

/// The election metric a node maximizes to become cluster-head.
///
/// The paper's metric is the 1-density (Definition 1), but its
/// conclusion notes the self-stabilization argument "could be applied
/// to several clusterization metrics as for instance the node's
/// degree". Expressing the metric as an enum lets the same protocol,
/// oracle, proofs-by-test and benches run every variant — including the
/// classical lowest-identifier clustering, which is exactly "everyone
/// has an equal metric, ties broken by smallest id".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// The paper's density metric `d_p` (Definition 1).
    #[default]
    Density,
    /// The node degree `|N_p|` (Chen & Stojmenovic-style criterion).
    Degree,
    /// A constant metric: the election degenerates to smallest-id wins
    /// (Baker & Ephremides' lowest-identifier clustering).
    Unit,
}

impl MetricKind {
    /// The metric value of `p` with full topology knowledge.
    pub fn value_of(self, topo: &Topology, p: NodeId) -> Density {
        match self {
            MetricKind::Density => density_of(topo, p),
            MetricKind::Degree => Density::integer(topo.degree(p) as u32),
            MetricKind::Unit => Density::zero(),
        }
    }

    /// The metric value computed from distributed knowledge: the
    /// node's neighbor list and each neighbor's own neighbor list (the
    /// information available after two steps — paper Table 2).
    pub fn value_from_tables(
        self,
        me: NodeId,
        neighbors: &[NodeId],
        tables: &[&[NodeId]],
    ) -> Density {
        match self {
            MetricKind::Density => density_from_tables(me, neighbors, tables),
            MetricKind::Degree => Density::integer(neighbors.len() as u32),
            MetricKind::Unit => Density::zero(),
        }
    }

    /// [`Self::value_from_tables`] in streaming form: the neighbor
    /// rows arrive as iterators and membership as a predicate, so the
    /// caller materializes nothing (see
    /// [`density_from_rows`][crate::density_from_rows]). `rows` must
    /// be ascending by neighbor id and agree with `degree` and
    /// `contains`.
    pub fn value_from_rows<I, J, F>(self, me: NodeId, degree: u32, rows: I, contains: F) -> Density
    where
        I: IntoIterator<Item = (NodeId, J)>,
        J: IntoIterator<Item = NodeId>,
        F: Fn(NodeId) -> bool,
    {
        match self {
            MetricKind::Density => density_from_rows(me, degree, rows, contains),
            MetricKind::Degree => Density::integer(degree),
            MetricKind::Unit => Density::zero(),
        }
    }

    /// A short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Density => "density",
            MetricKind::Degree => "degree",
            MetricKind::Unit => "lowest-id",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;

    #[test]
    fn density_metric_matches_density_of() {
        let topo = builders::fig1_example();
        for p in topo.nodes() {
            assert_eq!(MetricKind::Density.value_of(&topo, p), density_of(&topo, p));
        }
    }

    #[test]
    fn degree_metric_is_integer_degree() {
        let topo = builders::star(5);
        assert_eq!(
            MetricKind::Degree.value_of(&topo, NodeId::new(0)),
            Density::integer(4)
        );
        assert_eq!(
            MetricKind::Degree.value_of(&topo, NodeId::new(1)),
            Density::integer(1)
        );
    }

    #[test]
    fn unit_metric_is_constant() {
        let topo = builders::star(5);
        for p in topo.nodes() {
            assert_eq!(MetricKind::Unit.value_of(&topo, p), Density::zero());
        }
    }

    #[test]
    fn distributed_degree_matches() {
        let topo = builders::ring(6);
        for p in topo.nodes() {
            let neighbors = topo.neighbors(p).to_vec();
            let tables: Vec<&[NodeId]> = neighbors.iter().map(|&q| topo.neighbors(q)).collect();
            assert_eq!(
                MetricKind::Degree.value_from_tables(p, &neighbors, &tables),
                MetricKind::Degree.value_of(&topo, p)
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(MetricKind::Density.name(), MetricKind::Degree.name());
        assert_ne!(MetricKind::Degree.name(), MetricKind::Unit.name());
    }
}
