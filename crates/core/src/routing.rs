//! Hierarchical routing over the clustering — the application the
//! paper builds clusters *for* ("specific routing protocols are used
//! within and between the clusters", Section 1).
//!
//! The scheme is the textbook two-level one:
//!
//! * **intra-cluster**: members of one cluster route directly inside
//!   the cluster's induced subgraph (local routing state only);
//! * **inter-cluster**: the source climbs to its cluster-head, the
//!   packet follows a head-overlay route — each overlay hop expanded
//!   inside the union of the two adjacent clusters — and finally
//!   descends from the destination's head.
//!
//! The price of locality is path *stretch* (hierarchical hops divided
//! by the shortest-path hops); [`mean_stretch`] measures it, which is
//! how the routing bench compares election metrics.

use mwn_graph::{traversal, NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::hierarchy::head_overlay;
use crate::Clustering;

/// A router over one topology + clustering.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{oracle, ClusterRouter, OracleConfig};
/// use mwn_graph::{builders, NodeId};
///
/// let topo = builders::grid(6, 6, 0.25);
/// let clustering = oracle(&topo, &OracleConfig::default());
/// let router = ClusterRouter::new(&topo, &clustering);
/// let route = router.route(NodeId::new(0), NodeId::new(35)).unwrap();
/// assert_eq!(route.first(), Some(&NodeId::new(0)));
/// assert_eq!(route.last(), Some(&NodeId::new(35)));
/// ```
#[derive(Debug)]
pub struct ClusterRouter<'a> {
    topo: &'a Topology,
    clustering: &'a Clustering,
    heads: Vec<NodeId>,
    overlay: Topology,
}

impl<'a> ClusterRouter<'a> {
    /// Prepares routing state (the head overlay) for a stable
    /// clustering.
    pub fn new(topo: &'a Topology, clustering: &'a Clustering) -> Self {
        let (heads, overlay) = head_overlay(topo, clustering);
        ClusterRouter {
            topo,
            clustering,
            heads,
            overlay,
        }
    }

    fn overlay_id(&self, head: NodeId) -> Option<u32> {
        self.heads.binary_search(&head).ok().map(|i| i as u32)
    }

    /// Routes inside one cluster: shortest path among that cluster's
    /// members.
    fn route_within(&self, cluster: NodeId, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        traversal::bfs_path_filtered(self.topo, from, to, |v| self.clustering.head(v) == cluster)
    }

    /// Computes the hierarchical route from `src` to `dst`, inclusive.
    ///
    /// Returns `None` when no route exists (different components) —
    /// also when the hierarchy's overlay is partitioned, which cannot
    /// happen for a stable clustering of a connected graph.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let h_src = self.clustering.head(src);
        let h_dst = self.clustering.head(dst);
        if h_src == h_dst {
            return self.route_within(h_src, src, dst);
        }
        // Overlay path between the two heads.
        let o_src = NodeId::new(self.overlay_id(h_src)?);
        let o_dst = NodeId::new(self.overlay_id(h_dst)?);
        let overlay_path = traversal::bfs_path_filtered(&self.overlay, o_src, o_dst, |_| true)?;
        // Expand: climb to the head, hop cluster to cluster, descend.
        let mut route = self.route_within(h_src, src, h_src)?;
        for pair in overlay_path.windows(2) {
            let a = self.heads[pair[0].index()];
            let b = self.heads[pair[1].index()];
            let segment = traversal::bfs_path_filtered(self.topo, *route.last()?, b, |v| {
                let h = self.clustering.head(v);
                h == a || h == b
            })?;
            route.extend_from_slice(&segment[1..]);
        }
        let tail = self.route_within(h_dst, *route.last()?, dst)?;
        route.extend_from_slice(&tail[1..]);
        Some(route)
    }

    /// Route length in hops (`route.len() - 1`), or `None` if
    /// unroutable.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        Some(self.route(src, dst)?.len() - 1)
    }

    /// Validates that `route` is a real walk in the topology.
    pub fn is_valid_route(&self, route: &[NodeId]) -> bool {
        route.windows(2).all(|w| self.topo.has_edge(w[0], w[1]))
    }
}

/// Mean stretch (hierarchical hops / shortest hops) over `samples`
/// random connected pairs. Pairs in different components are skipped;
/// returns `None` when no valid pair was sampled.
pub fn mean_stretch(
    topo: &Topology,
    clustering: &Clustering,
    samples: usize,
    rng: &mut StdRng,
) -> Option<f64> {
    if topo.len() < 2 {
        return None;
    }
    let router = ClusterRouter::new(topo, clustering);
    let mut total = 0.0;
    let mut count = 0usize;
    for _ in 0..samples {
        let src = NodeId::new(rng.random_range(0..topo.len() as u32));
        let dst = NodeId::new(rng.random_range(0..topo.len() as u32));
        if src == dst {
            continue;
        }
        let direct = traversal::bfs_distances(topo, src)[dst.index()];
        let Some(direct) = direct else { continue };
        let Some(hier) = router.hops(src, dst) else {
            continue;
        };
        total += hier as f64 / f64::from(direct.max(1));
        count += 1;
    }
    (count > 0).then(|| total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{oracle, OracleConfig};
    use mwn_graph::builders;
    use rand::SeedableRng;

    fn field(seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        builders::uniform(250, 0.11, &mut rng)
    }

    #[test]
    fn routes_are_real_walks_with_correct_endpoints() {
        let topo = field(1);
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        let mut rng = StdRng::seed_from_u64(1);
        let mut routed = 0;
        for _ in 0..200 {
            let src = NodeId::new(rng.random_range(0..topo.len() as u32));
            let dst = NodeId::new(rng.random_range(0..topo.len() as u32));
            let direct = traversal::bfs_distances(&topo, src)[dst.index()];
            match router.route(src, dst) {
                Some(route) => {
                    assert_eq!(route.first(), Some(&src));
                    assert_eq!(route.last(), Some(&dst));
                    assert!(router.is_valid_route(&route), "{src}→{dst} not a walk");
                    assert!(direct.is_some(), "routed an unreachable pair");
                    routed += 1;
                }
                None => assert!(direct.is_none() || src == dst, "missed a reachable pair"),
            }
        }
        assert!(routed > 100, "only {routed} pairs routed");
    }

    #[test]
    fn intra_cluster_routes_are_shortest_within_the_cluster() {
        let topo = builders::complete(8);
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        // One cluster, complete graph: every route is one hop.
        assert_eq!(router.hops(NodeId::new(1), NodeId::new(5)), Some(1));
    }

    #[test]
    fn self_route_is_trivial() {
        let topo = builders::line(4);
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        assert_eq!(
            router.route(NodeId::new(2), NodeId::new(2)),
            Some(vec![NodeId::new(2)])
        );
        assert_eq!(router.hops(NodeId::new(2), NodeId::new(2)), Some(0));
    }

    #[test]
    fn cross_component_pairs_are_unroutable() {
        let mut topo = builders::line(6);
        topo.remove_edge(NodeId::new(2), NodeId::new(3));
        let clustering = oracle(&topo, &OracleConfig::default());
        let router = ClusterRouter::new(&topo, &clustering);
        assert_eq!(router.route(NodeId::new(0), NodeId::new(5)), None);
    }

    #[test]
    fn stretch_is_at_least_one_and_moderate() {
        let topo = field(2);
        let clustering = oracle(&topo, &OracleConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let stretch = mean_stretch(&topo, &clustering, 300, &mut rng).expect("pairs exist");
        assert!(stretch >= 1.0, "stretch {stretch} below 1");
        assert!(
            stretch < 3.0,
            "hierarchical routing should not triple path lengths: {stretch}"
        );
    }

    #[test]
    fn stretch_on_tiny_topologies() {
        let topo = Topology::empty(1);
        let clustering = oracle(&topo, &OracleConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(mean_stretch(&topo, &clustering, 10, &mut rng), None);
    }

    use mwn_graph::Topology;
}
