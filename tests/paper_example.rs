//! The paper's running example (Figure 1 / Table 1), end to end over
//! every medium and driver: the distributed protocol must always
//! recover the two clusters headed by `h` and `j`.

use selfstab::prelude::*;

fn paper_heads() -> Vec<NodeId> {
    // Label mapping (builders::FIG1_LABELS): j = 5, h = 7.
    vec![NodeId::new(5), NodeId::new(7)]
}

fn assert_paper_clustering(clustering: &Clustering) {
    assert_eq!(clustering.heads(), paper_heads());
    // Cluster membership from the paper's walkthrough: c joins b joins
    // h; f and g join j.
    let by_label =
        |c: char| NodeId::new(builders::FIG1_LABELS.iter().position(|&l| l == c).unwrap() as u32);
    let h = by_label('h');
    let j = by_label('j');
    for member in ['a', 'b', 'c', 'd', 'e', 'i'] {
        assert_eq!(clustering.head(by_label(member)), h, "member {member}");
    }
    for member in ['f', 'g'] {
        assert_eq!(clustering.head(by_label(member)), j, "member {member}");
    }
}

#[test]
fn table1_densities_match_the_paper() {
    let topo = builders::fig1_example();
    let expect = [
        ('a', 1.0),
        ('b', 1.25),
        ('c', 1.0),
        ('e', 1.0),
        ('f', 1.5),
        ('h', 1.5),
        ('i', 1.25),
        ('j', 1.5),
    ];
    for (label, value) in expect {
        let p = NodeId::new(
            builders::FIG1_LABELS
                .iter()
                .position(|&l| l == label)
                .unwrap() as u32,
        );
        assert!(
            (density_of(&topo, p).as_f64() - value).abs() < 1e-12,
            "density of {label}"
        );
    }
}

#[test]
fn centralized_oracle_reproduces_figure_1() {
    let clustering = oracle(&builders::fig1_example(), &OracleConfig::default());
    assert_paper_clustering(&clustering);
}

#[test]
fn distributed_over_perfect_medium_reproduces_figure_1() {
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(builders::fig1_example())
        .seed(1)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(3).within(100))
        .expect_stable("stabilizes");
    assert_paper_clustering(&extract_clustering(net.states()).unwrap());
}

#[test]
fn distributed_over_csma_reproduces_figure_1() {
    let stop = StopWhen::stable_for(20).within(5000);
    for seed in 0..5 {
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig {
            cache_ttl: 16,
            ..ClusterConfig::default()
        }))
        .medium(SlottedCsma::new(12))
        .topology(builders::fig1_example())
        .seed(seed)
        .build()
        .expect("valid scenario");
        net.run_to(&stop)
            .expect_stable("stabilizes under collisions");
        assert_paper_clustering(&extract_clustering(net.states()).unwrap());
    }
}

#[test]
fn distributed_over_bernoulli_loss_reproduces_figure_1() {
    let stop = StopWhen::stable_for(30).within(10_000);
    for seed in 0..5 {
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig {
            cache_ttl: 24,
            ..ClusterConfig::default()
        }))
        .medium(BernoulliLoss::new(0.4))
        .topology(builders::fig1_example())
        .seed(seed)
        .build()
        .expect("valid scenario");
        net.run_to(&stop).expect_stable("stabilizes at τ = 0.4");
        assert_paper_clustering(&extract_clustering(net.states()).unwrap());
    }
}

#[test]
fn sweep_reproduces_figure_1_across_seeds() {
    // The Sweep runner fans the Figure-1 run over a seed grid; every
    // seed must land on the same two clusters.
    let stop = StopWhen::stable_for(3).within(100);
    let heads = Sweep::over(8, 42)
        .run(
            |seed| {
                Scenario::new(DensityCluster::new(ClusterConfig::default()))
                    .topology(builders::fig1_example())
                    .seed(seed)
            },
            &stop,
            |report, net| {
                assert!(report.is_stable());
                extract_clustering(net.states()).unwrap().heads()
            },
        )
        .expect("every scenario builds");
    for h in heads {
        assert_eq!(h, paper_heads());
    }
}

#[test]
fn event_driver_reproduces_figure_1() {
    let mut driver = Scenario::new(DensityCluster::new(ClusterConfig {
        cache_ttl: 20,
        ..ClusterConfig::default()
    }))
    .topology(builders::fig1_example())
    .seed(2)
    .build_events(EventConfig::default())
    .expect("valid event scenario");
    driver
        .run_until_output_stable(1.0, 10, 1000.0)
        .expect("stabilizes in continuous time");
    assert_paper_clustering(&extract_clustering(driver.states()).unwrap());
}

#[test]
fn corrupting_the_example_always_heals_back() {
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(builders::fig1_example())
        .seed(5)
        .build()
        .expect("valid scenario");
    let stop = StopWhen::stable_for(3).within(200);
    for _ in 0..10 {
        net.corrupt_all();
        net.run_to(&stop).expect_stable("heals after corruption");
        assert_paper_clustering(&extract_clustering(net.states()).unwrap());
    }
}
