//! The canonical output projection of a protocol.

use mwn_graph::NodeId;

use crate::Protocol;

/// A protocol with a canonical **observable output** — the part of the
/// node state that defines stabilization.
///
/// The paper distinguishes a protocol's *output* (the cluster-head and
/// parent choice, the DAG name) from its *mechanism* (neighbor caches,
/// timestamps): a configuration is stable when the output stops
/// changing, even while caches keep refreshing. Historically every
/// caller of [`crate::Network::run_until_stable`] re-supplied this
/// projection as a closure; implementing `Observable` once per
/// protocol lets the drivers and the [`crate::Sweep`] runner use
/// [`crate::StopWhen`] stop conditions with no per-call-site closures.
pub trait Observable: Protocol {
    /// The projected output of one node.
    type Output: Clone + PartialEq + std::fmt::Debug + Send;

    /// Projects the observable output out of `state`.
    fn output(&self, node: NodeId, state: &Self::State) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    struct Echo;
    impl Protocol for Echo {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _n: NodeId, _s: &mut u32, _f: NodeId, _b: &u32, _now: u64) {}
        fn update(&self, _n: NodeId, _s: &mut u32, _now: u64, _rng: &mut StdRng) {}
    }
    impl Observable for Echo {
        type Output = u32;
        fn output(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
    }

    #[test]
    fn output_projects_state() {
        assert_eq!(Echo.output(NodeId::new(3), &7), 7);
    }
}
