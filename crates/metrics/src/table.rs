use std::fmt;

/// A paper-style ASCII table: a title, a header row, and labelled rows.
///
/// The experiment binaries print their results with this type so the
/// output lines up with the paper's tables (e.g. Table 3's
/// "steps to build the DAG" per transmission range).
///
/// # Examples
///
/// ```
/// use mwn_metrics::Table;
///
/// let mut t = Table::new("Table 3: steps to build the DAG");
/// t.set_headers(["R", "0.05", "0.1"]);
/// t.add_row("Grid", vec!["2.20".into(), "2.0".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Grid"));
/// assert!(s.contains("2.20"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header row (first cell labels the row-name column).
    pub fn set_headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a labelled row of cells.
    pub fn add_row(&mut self, label: impl Into<String>, cells: Vec<String>) -> &mut Self {
        self.rows.push((label.into(), cells));
        self
    }

    /// Convenience: appends a row of numeric cells, formatted with
    /// `decimals` fraction digits.
    pub fn add_numeric_row(
        &mut self,
        label: impl Into<String>,
        values: &[f64],
        decimals: usize,
    ) -> &mut Self {
        let cells = values.iter().map(|v| format!("{v:.decimals$}")).collect();
        self.add_row(label, cells)
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The cell at `(row, col)` (not counting the label column), if any.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.1.get(col).map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths: max of header and every cell in that column.
        let cols = self.headers.len().max(
            self.rows
                .iter()
                .map(|(_, r)| r.len() + 1)
                .max()
                .unwrap_or(0),
        );
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.chars().count());
            for (i, c) in cells.iter().enumerate() {
                if i + 1 < cols {
                    widths[i + 1] = widths[i + 1].max(c.chars().count());
                }
            }
        }
        writeln!(f, "{}", self.title)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "=".repeat(self.title.chars().count().max(total)))?;
        if !self.headers.is_empty() {
            let mut line = String::new();
            for (i, h) in self.headers.iter().enumerate() {
                if i > 0 {
                    line.push_str("   ");
                }
                line.push_str(&format!("{h:<width$}", width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())?;
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for (label, cells) in &self.rows {
            let mut line = format!("{label:<width$}", width = widths[0]);
            for (i, c) in cells.iter().enumerate() {
                line.push_str("   ");
                let w = widths.get(i + 1).copied().unwrap_or(0);
                line.push_str(&format!("{c:<w$}"));
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_rows() {
        let mut t = Table::new("T");
        t.set_headers(["item", "x", "y"]);
        t.add_row("row1", vec!["7".into(), "8".into()]);
        t.add_row("longer-row", vec!["3".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.starts_with("T\n"));
        assert!(s.contains("longer-row"));
        // columns align: the "x" column starts at the same offset everywhere
        let lines: Vec<&str> = s.lines().collect();
        let header_pos = lines[2].find('x').unwrap();
        let row_pos = lines[4].find('7').unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    fn numeric_rows_format_decimals() {
        let mut t = Table::new("nums");
        t.add_numeric_row("r", &[1.23456, 2.0], 2);
        assert_eq!(t.cell(0, 0), Some("1.23"));
        assert_eq!(t.cell(0, 1), Some("2.00"));
    }

    #[test]
    fn cell_out_of_range_is_none() {
        let t = Table::new("empty");
        assert_eq!(t.cell(0, 0), None);
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn display_without_headers() {
        let mut t = Table::new("no headers");
        t.add_row("x", vec!["y".into()]);
        let s = t.to_string();
        assert!(s.contains('x'));
        assert!(s.contains('y'));
    }
}
