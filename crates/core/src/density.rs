use std::cmp::Ordering;
use std::fmt;

use mwn_graph::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// The paper's density metric (Definition 1) as an **exact rational**:
///
/// > d_p = |{e = (v,w) ∈ E : w ∈ {p} ∪ N_p and v ∈ N_p}| / |N_p|
///
/// i.e. the number of links inside `p`'s closed 1-neighborhood that
/// touch at least one neighbor (each undirected edge counted once: the
/// edges from `p` to its neighbors plus the edges among neighbors),
/// divided by the number of neighbors.
///
/// The cluster-head election compares densities for *equality* when
/// tie-breaking, so the value is kept as a `(links, degree)` integer
/// pair and compared by cross-multiplication — two nodes with the same
/// ratio always compare equal, with no floating-point surprises.
/// Isolated nodes get the canonical zero density `0/1`.
///
/// # Examples
///
/// ```
/// use mwn_cluster::Density;
///
/// let a = Density::ratio(5, 4);   // 1.25
/// let b = Density::ratio(10, 8);  // also 1.25
/// let c = Density::ratio(3, 2);   // 1.5
/// assert_eq!(a, b);
/// assert!(a < c);
/// assert_eq!(a.as_f64(), 1.25);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Density {
    links: u32,
    degree: u32,
}

impl Density {
    /// A density of `links / degree`. A zero degree is normalized to
    /// the canonical zero `0/1` (isolated node).
    pub fn ratio(links: u32, degree: u32) -> Self {
        if degree == 0 {
            Density {
                links: 0,
                degree: 1,
            }
        } else {
            Density { links, degree }
        }
    }

    /// The integer density `k / 1` — used to express other election
    /// metrics (e.g. the node degree, as suggested by the paper's
    /// conclusion) in the same machinery.
    pub fn integer(k: u32) -> Self {
        Density {
            links: k,
            degree: 1,
        }
    }

    /// The canonical zero density.
    pub fn zero() -> Self {
        Density {
            links: 0,
            degree: 1,
        }
    }

    /// Numerator: the link count of Definition 1.
    pub fn links(&self) -> u32 {
        self.links
    }

    /// Denominator: `|N_p|`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The density as a float (for reporting only — never for
    /// comparisons inside the protocol).
    pub fn as_f64(&self) -> f64 {
        f64::from(self.links) / f64::from(self.degree)
    }
}

impl PartialEq for Density {
    fn eq(&self, other: &Self) -> bool {
        u64::from(self.links) * u64::from(other.degree)
            == u64::from(other.links) * u64::from(self.degree)
    }
}

impl Eq for Density {}

impl PartialOrd for Density {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Density {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = u64::from(self.links) * u64::from(other.degree);
        let rhs = u64::from(other.links) * u64::from(self.degree);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Density {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_f64())
    }
}

/// Computes the density of `p` directly from the topology (the
/// "oracle" view with full knowledge; the distributed protocol computes
/// the same value from its 2-hop caches).
///
/// # Examples
///
/// ```
/// use mwn_cluster::density_of;
/// use mwn_graph::{builders::fig1_example, NodeId};
///
/// // Paper Table 1: node b (id 1) has 4 neighbors, 5 links → 1.25.
/// let topo = fig1_example();
/// let d = density_of(&topo, NodeId::new(1));
/// assert_eq!(d.links(), 5);
/// assert_eq!(d.degree(), 4);
/// ```
pub fn density_of(topo: &Topology, p: NodeId) -> Density {
    Density::ratio(topo.neighborhood_links(p) as u32, topo.degree(p) as u32)
}

/// Computes the density of a node from distributed knowledge: its
/// neighbor set and, for each neighbor, that neighbor's own neighbor
/// set (what beacons carry after two steps — see the paper's Table 2).
///
/// `neighbors` must be sorted; `tables[i]` is the neighbor table of
/// `neighbors[i]`.
pub fn density_from_tables(me: NodeId, neighbors: &[NodeId], tables: &[&[NodeId]]) -> Density {
    debug_assert_eq!(neighbors.len(), tables.len());
    density_from_rows(
        me,
        neighbors.len() as u32,
        neighbors
            .iter()
            .copied()
            .zip(tables.iter().map(|t| t.iter().copied())),
        |r| neighbors.binary_search(&r).is_ok(),
    )
}

/// [`density_from_tables`] without the tables: the same Definition-1
/// value computed straight off any iterator of `(neighbor, its
/// neighbor ids)` rows plus a membership test for the node's own
/// neighbor set. This is the protocol hot path's entry point — it
/// walks the neighbor cache in place instead of materializing
/// id-vectors for every active node on every step.
///
/// `rows` must yield neighbors in ascending order and `contains` must
/// answer membership in exactly that neighbor set.
pub fn density_from_rows<I, J, F>(me: NodeId, degree: u32, rows: I, contains: F) -> Density
where
    I: IntoIterator<Item = (NodeId, J)>,
    J: IntoIterator<Item = NodeId>,
    F: Fn(NodeId) -> bool,
{
    let mut links = degree; // edges from me to each neighbor
    for (q, row) in rows {
        for r in row {
            // Count each among-neighbor edge (q, r) once: q < r, and r
            // must also be my neighbor (not me, handled by r != me).
            if r != me && q < r && contains(r) {
                links += 1;
            }
        }
    }
    Density::ratio(links, degree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders::{fig1_example, FIG1_LABELS};
    use mwn_graph::Topology;

    fn by_label(c: char) -> NodeId {
        NodeId::new(FIG1_LABELS.iter().position(|&l| l == c).unwrap() as u32)
    }

    #[test]
    fn table1_densities() {
        // Paper Table 1 (all rows except the inconsistent node d):
        // node:      a     b     c     e     f    h    i     j
        // 1-density: 1.0   1.25  1.0   1.0   1.5  1.5  1.25  1.5
        let topo = fig1_example();
        let cases = [
            ('a', 1.0),
            ('b', 1.25),
            ('c', 1.0),
            ('e', 1.0),
            ('f', 1.5),
            ('h', 1.5),
            ('i', 1.25),
            ('j', 1.5),
        ];
        for (label, expected) in cases {
            let d = density_of(&topo, by_label(label));
            assert!(
                (d.as_f64() - expected).abs() < 1e-12,
                "density of {label}: got {d}, want {expected}"
            );
        }
    }

    #[test]
    fn equal_ratios_compare_equal() {
        assert_eq!(Density::ratio(3, 2), Density::ratio(6, 4));
        assert_eq!(Density::ratio(0, 5), Density::zero());
        assert!(Density::ratio(7, 4) > Density::ratio(5, 3));
        assert!(Density::ratio(1, 3) < Density::ratio(1, 2));
    }

    #[test]
    fn zero_degree_is_canonical_zero() {
        let d = Density::ratio(42, 0);
        assert_eq!(d, Density::zero());
        assert_eq!(d.as_f64(), 0.0);
    }

    #[test]
    fn integer_densities() {
        assert_eq!(Density::integer(4).as_f64(), 4.0);
        assert!(Density::integer(4) > Density::ratio(7, 2));
    }

    #[test]
    fn isolated_node_has_zero_density() {
        let topo = Topology::empty(3);
        assert_eq!(density_of(&topo, NodeId::new(0)), Density::zero());
    }

    #[test]
    fn distributed_density_matches_oracle() {
        let topo = fig1_example();
        for p in topo.nodes() {
            let neighbors: Vec<NodeId> = topo.neighbors(p).to_vec();
            let tables: Vec<&[NodeId]> = neighbors.iter().map(|&q| topo.neighbors(q)).collect();
            let distributed = density_from_tables(p, &neighbors, &tables);
            assert_eq!(distributed, density_of(&topo, p), "node {p}");
        }
    }

    #[test]
    fn display_shows_decimal() {
        assert_eq!(Density::ratio(5, 4).to_string(), "1.250");
    }
}
