//! Disaster-relief scenario (the paper's introduction motivates
//! "spontaneous networks in case of natural disasters where the
//! infrastructure has been totally destroyed"): responders' radios
//! self-organize into clusters; a second shock corrupts a third of
//! the devices mid-operation and the network heals itself — the
//! self-stabilization property in action.
//!
//! ```sh
//! cargo run --example disaster_relief
//! ```

use rand::SeedableRng;
use selfstab::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(911);
    // 600 responders over the operations area, 80 m radios.
    let topo = builders::poisson(600.0, 0.08, &mut rng);
    println!(
        "field network: {} radios, {} links",
        topo.len(),
        topo.edge_count()
    );

    // Harsher assumptions than the quickstart: a CSMA medium with
    // hidden terminals, so beacons genuinely collide (τ < 1).
    let config = ClusterConfig {
        rule: HeadRule::Fusion, // keep heads ≥ 3 hops apart
        cache_ttl: 16,
        ..ClusterConfig::default()
    };
    let mut net = Scenario::new(DensityCluster::new(config))
        .medium(SlottedCsma::new(24))
        .topology(topo)
        .seed(1)
        .build()
        .expect("valid scenario");
    let stop = StopWhen::stable_for(20).within(20_000);
    let stabilized = net
        .run_to(&stop)
        .expect_stable("stabilizes despite collisions");
    let before = extract_clustering(net.states()).expect("clean");
    println!(
        "organized into {} clusters after {} steps over a colliding medium",
        before.head_count(),
        stabilized
    );

    // Aftershock: a third of the devices reboot with garbage state.
    let corrupted = net.corrupt_fraction(0.33);
    println!("aftershock: {corrupted} devices corrupted");

    let healed = net.run_to(&stop);
    let healed_at = healed.expect_stable("self-stabilization: the network heals");
    let after = extract_clustering(net.states()).expect("clean");
    println!(
        "healed after {} further steps; {} clusters ({}% of heads kept)",
        healed_at.saturating_sub(stabilized),
        after.head_count(),
        (after.head_persistence_from(&before) * 100.0).round()
    );

    let stats = ClusteringStats::of(net.topology(), &after).expect("non-empty");
    println!(
        "final organization: {} clusters, mean tree length {:.2}, mean head eccentricity {:.2}",
        stats.clusters, stats.mean_tree_length, stats.mean_head_eccentricity
    );
}
