//! Hierarchical-routing stretch over the clustering (the Section 1
//! motivation for clustering in the first place).

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let result = mwn_bench::routing_exp::run(scale);
    println!("{}", mwn_bench::routing_exp::render(&result));
}
