//! Regenerates the paper's Table 4 (cluster features, random geometry).

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    eprintln!(
        "table 4: {} runs per cell (use --full for the paper's 1000)",
        scale.runs
    );
    let result = mwn_bench::table4::run(scale);
    println!(
        "{}",
        mwn_bench::table4::render(
            "Table 4: clusters features on a random geometric graph \
             (paper, R=0.05: 61 clusters, ecc 2.6, tree 2.7)",
            &result
        )
    );
}
