use std::ops::RangeInclusive;

use mwn_graph::Point2;
use rand::rngs::StdRng;
use rand::Rng;

use crate::MobilityModel;

/// The random-waypoint model: each node repeatedly picks a uniform
/// destination in the unit square and a uniform speed from the
/// configured range, walks there in a straight line, optionally pauses,
/// then picks again.
///
/// This is the standard literature reading of the paper's "nodes move
/// randomly at a randomly chosen speed".
///
/// # Examples
///
/// ```
/// use mwn_mobility::{MobilityModel, RandomWaypoint};
/// use mwn_graph::Point2;
/// use rand::SeedableRng;
///
/// let mut model = RandomWaypoint::new(2, 0.0..=0.01, 0.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut positions = vec![Point2::new(0.5, 0.5); 2];
/// model.step(&mut positions, 1.0, &mut rng);
/// assert!(positions.iter().all(|p| p.in_unit_square()));
/// ```
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    speed_range: RangeInclusive<f64>,
    pause: f64,
    legs: Vec<Option<Leg>>,
    pausing: Vec<f64>,
}

#[derive(Clone, Copy, Debug)]
struct Leg {
    target: Point2,
    speed: f64,
}

impl RandomWaypoint {
    /// Creates the model for `n` nodes with speeds drawn uniformly from
    /// `speed_range` (units per second) and `pause` seconds of rest at
    /// each waypoint.
    ///
    /// # Panics
    ///
    /// Panics if the range is reversed, negative, or not finite, or if
    /// `pause` is negative.
    pub fn new(n: usize, speed_range: RangeInclusive<f64>, pause: f64) -> Self {
        let (lo, hi) = (*speed_range.start(), *speed_range.end());
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "speed range must satisfy 0 ≤ min ≤ max"
        );
        assert!(pause >= 0.0, "pause must be non-negative");
        RandomWaypoint {
            speed_range,
            pause,
            legs: vec![None; n],
            pausing: vec![0.0; n],
        }
    }

    fn draw_leg(&self, rng: &mut StdRng) -> Leg {
        let (lo, hi) = (*self.speed_range.start(), *self.speed_range.end());
        let speed = if hi > lo {
            rng.random_range(lo..=hi)
        } else {
            lo
        };
        Leg {
            target: Point2::new(rng.random_range(0.0..=1.0), rng.random_range(0.0..=1.0)),
            speed,
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn step(&mut self, positions: &mut [Point2], dt: f64, rng: &mut StdRng) {
        assert_eq!(
            positions.len(),
            self.legs.len(),
            "model sized for a different node count"
        );
        for (i, pos) in positions.iter_mut().enumerate() {
            let mut remaining = dt;
            while remaining > 0.0 {
                if self.pausing[i] > 0.0 {
                    let rest = self.pausing[i].min(remaining);
                    self.pausing[i] -= rest;
                    remaining -= rest;
                    continue;
                }
                let leg = match self.legs[i] {
                    Some(leg) => leg,
                    None => {
                        let leg = self.draw_leg(rng);
                        self.legs[i] = Some(leg);
                        leg
                    }
                };
                if leg.speed <= 0.0 {
                    break; // a zero-speed leg parks the node forever
                }
                let dist_to_target = pos.distance(leg.target);
                let reachable = leg.speed * remaining;
                if reachable >= dist_to_target {
                    *pos = leg.target;
                    remaining -= if leg.speed > 0.0 {
                        dist_to_target / leg.speed
                    } else {
                        remaining
                    };
                    self.legs[i] = None;
                    self.pausing[i] = self.pause;
                } else {
                    let t = reachable / dist_to_target;
                    *pos = pos.lerp(leg.target, t).clamp_unit_square();
                    remaining = 0.0;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "random-waypoint"
    }

    fn max_speed(&self) -> f64 {
        *self.speed_range.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(model: &mut RandomWaypoint, positions: &mut [Point2], steps: usize, dt: f64) {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..steps {
            model.step(positions, dt, &mut rng);
        }
    }

    #[test]
    fn positions_stay_in_unit_square() {
        let mut model = RandomWaypoint::new(20, 0.0..=0.05, 0.5);
        let mut positions = vec![Point2::new(0.9, 0.1); 20];
        run(&mut model, &mut positions, 200, 1.0);
        assert!(positions.iter().all(|p| p.in_unit_square()));
    }

    #[test]
    fn displacement_bounded_by_speed() {
        let mut model = RandomWaypoint::new(10, 0.0..=0.002, 0.0);
        let mut positions = vec![Point2::new(0.5, 0.5); 10];
        let before = positions.clone();
        let mut rng = StdRng::seed_from_u64(7);
        model.step(&mut positions, 2.0, &mut rng);
        for (a, b) in before.iter().zip(&positions) {
            assert!(a.distance(*b) <= 0.002 * 2.0 + 1e-12);
        }
    }

    #[test]
    fn zero_speed_is_static() {
        let mut model = RandomWaypoint::new(5, 0.0..=0.0, 0.0);
        let mut positions = vec![Point2::new(0.3, 0.7); 5];
        let before = positions.clone();
        run(&mut model, &mut positions, 50, 1.0);
        assert_eq!(positions, before);
    }

    #[test]
    fn nodes_actually_move() {
        let mut model = RandomWaypoint::new(5, 0.01..=0.01, 0.0);
        let mut positions = vec![Point2::new(0.5, 0.5); 5];
        let before = positions.clone();
        run(&mut model, &mut positions, 10, 1.0);
        assert!(positions.iter().zip(&before).any(|(a, b)| a != b));
    }

    #[test]
    fn pause_delays_movement() {
        let mut fast = RandomWaypoint::new(1, 0.01..=0.01, 0.0);
        let mut slow = RandomWaypoint::new(1, 0.01..=0.01, 10.0);
        let mut pf = vec![Point2::new(0.5, 0.5)];
        let mut ps = vec![Point2::new(0.5, 0.5)];
        // Same RNG seed → same waypoint draws; the paused walker rests
        // at each waypoint and covers less ground over a long horizon.
        let mut rng_f = StdRng::seed_from_u64(3);
        let mut rng_s = StdRng::seed_from_u64(3);
        let mut travelled_f = 0.0;
        let mut travelled_s = 0.0;
        for _ in 0..400 {
            let (bf, bs) = (pf[0], ps[0]);
            fast.step(&mut pf, 1.0, &mut rng_f);
            slow.step(&mut ps, 1.0, &mut rng_s);
            travelled_f += bf.distance(pf[0]);
            travelled_s += bs.distance(ps[0]);
        }
        assert!(travelled_f > travelled_s);
    }

    #[test]
    #[should_panic(expected = "0 ≤ min ≤ max")]
    fn reversed_range_rejected() {
        let _ = RandomWaypoint::new(1, 0.5..=0.1, 0.0);
    }
}
