//! Regenerates the paper's Table 2 (information per step).

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let result = mwn_bench::table2::run(scale);
    println!("{}", mwn_bench::table2::render(&result));
}
