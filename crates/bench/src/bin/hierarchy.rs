//! The hierarchical-clustering extension: recursive density clustering
//! on the cluster-head overlay.

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let result = mwn_bench::hierarchy_exp::run(scale);
    println!("{}", mwn_bench::hierarchy_exp::render(&result));
}
