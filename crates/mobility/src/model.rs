use mwn_graph::Point2;
use rand::rngs::StdRng;

/// Side length of the simulation square in meters.
///
/// The paper deploys nodes "in a 1×1 square" with radio ranges of
/// 0.05–0.1 units and then quotes mobility in meters per second. We
/// read the square as 1 km × 1 km: radio ranges become 50–100 m
/// (plausible 802.11-class radios) and 1.6 m/s is a brisk pedestrian.
pub const UNIT_SQUARE_METERS: f64 = 1000.0;

/// Converts a speed in meters per second into simulation units per
/// second under the [`UNIT_SQUARE_METERS`] mapping.
///
/// # Examples
///
/// ```
/// use mwn_mobility::meters_per_second;
///
/// assert_eq!(meters_per_second(10.0), 0.01); // 10 m/s over a 1 km square
/// ```
pub fn meters_per_second(speed: f64) -> f64 {
    speed / UNIT_SQUARE_METERS
}

/// A mobility model: advances node positions by a time step.
///
/// Models are deterministic given the RNG they are handed, keep every
/// position inside the closed unit square, and must move each node at
/// most `max_speed · dt` per call (no teleporting — the clustering
/// protocol's stability under mobility is exactly what the paper
/// measures, so displacement must be physically continuous).
pub trait MobilityModel {
    /// Moves every position forward by `dt` seconds.
    fn step(&mut self, positions: &mut [Point2], dt: f64, rng: &mut StdRng);

    /// Short name for experiment output.
    fn name(&self) -> &'static str;

    /// The model's maximum speed in units per second (for tests and
    /// displacement bounds).
    fn max_speed(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_mapping() {
        assert_eq!(meters_per_second(0.0), 0.0);
        assert!((meters_per_second(1.6) - 0.0016).abs() < 1e-12);
    }
}
