//! The fluent, typed scenario builder — the single front door for
//! every experiment, example and test in the workspace.
//!
//! A scenario owns the wiring that `Network::new` callers used to
//! duplicate: protocol, medium, topology, seed, plus the optional
//! moving parts (a mobility model driving the topology, a scripted
//! fault plan). Building returns a `Result` with a typed
//! [`SimError`] instead of panicking.
//!
//! # Examples
//!
//! ```
//! use mwn_graph::{builders, NodeId};
//! use mwn_radio::BernoulliLoss;
//! use mwn_sim::{Observable, Protocol, Scenario, StopWhen};
//! use rand::rngs::StdRng;
//!
//! struct MaxFlood;
//! impl Protocol for MaxFlood {
//!     type State = u32;
//!     type Beacon = u32;
//!     fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 { node.value() }
//!     fn beacon(&self, _node: NodeId, state: &u32) -> u32 { *state }
//!     fn receive(&self, _n: NodeId, state: &mut u32, _f: NodeId, beacon: &u32, _now: u64) {
//!         *state = (*state).max(*beacon);
//!     }
//!     fn update(&self, _n: NodeId, _s: &mut u32, _now: u64, _rng: &mut StdRng) {}
//! }
//! impl Observable for MaxFlood {
//!     type Output = u32;
//!     fn output(&self, _node: NodeId, state: &u32) -> u32 { *state }
//! }
//!
//! let mut net = Scenario::new(MaxFlood)
//!     .medium(BernoulliLoss::new(0.5))
//!     .topology(builders::line(5))
//!     .seed(7)
//!     .build()
//!     .expect("valid scenario");
//! // The quiet window must cover the expected gap between successful
//! // deliveries at τ = 0.5, or stability is declared prematurely.
//! let report = net.run_to(&StopWhen::stable_for(20).within(2000));
//! assert!(report.is_stable());
//! assert!(net.states().iter().all(|&s| s == 4));
//! ```

use mwn_graph::Topology;
use mwn_radio::{Medium, PerfectMedium};

use crate::network::Corruptor;
use crate::{
    ActorDriver, Corruptible, EventConfig, EventDriver, FaultPlan, Network, Protocol, SimError,
    WireBeacon,
};

/// A source of topology changes applied before each step — the hook
/// mobility models plug into (see `mwn_mobility`'s
/// `MobileScenario::into_dynamics`).
pub trait TopologyDynamics {
    /// The topology for the step about to execute, or `None` when it
    /// is unchanged. Must preserve the node count.
    ///
    /// The driver copies the borrowed topology into its own buffers
    /// (`clone_from`), so implementations hand out a reference to
    /// their working state instead of allocating a clone per step.
    fn next_topology(&mut self, step: u64) -> Option<&Topology>;

    /// Incremental alternative to [`TopologyDynamics::next_topology`]:
    /// the position moves for the step about to execute. When this
    /// returns `Some`, the driver applies the moves to its own topology
    /// through [`Topology::apply_moves`] — waking only the nodes whose
    /// links changed — and never calls `next_topology`.
    ///
    /// Implementations advancing their own topology copy must use
    /// `apply_moves` with the same move list, so both copies stay
    /// identical. Default: `None` (whole-topology dynamics).
    fn next_moves(&mut self, step: u64) -> Option<&[(mwn_graph::NodeId, mwn_graph::Point2)]> {
        let _ = step;
        None
    }
}

type Validator = Box<dyn FnOnce(&Topology) -> Result<(), String>>;

/// Fluent builder for simulation runs; see the module docs.
///
/// The generic parameters are the protocol and the medium; the medium
/// defaults to [`PerfectMedium`] and is replaced by
/// [`Scenario::medium`].
pub struct Scenario<P: Protocol, M: Medium = PerfectMedium> {
    protocol: P,
    medium: M,
    topology: Option<Topology>,
    seed: u64,
    faults: Option<(FaultPlan, Corruptor<P>)>,
    dynamics: Option<Box<dyn TopologyDynamics + Send>>,
    validators: Vec<Validator>,
    shards: Option<usize>,
}

impl<P: Protocol> Scenario<P, PerfectMedium> {
    /// Starts a scenario for `protocol` over a perfect medium, seed 0
    /// and no topology (one must be supplied before building).
    pub fn new(protocol: P) -> Self {
        Scenario {
            protocol,
            medium: PerfectMedium,
            topology: None,
            seed: 0,
            faults: None,
            dynamics: None,
            validators: Vec::new(),
            shards: None,
        }
    }
}

impl<P: Protocol, M: Medium> Scenario<P, M> {
    /// Replaces the medium (default: [`PerfectMedium`]).
    pub fn medium<M2: Medium>(self, medium: M2) -> Scenario<P, M2> {
        Scenario {
            protocol: self.protocol,
            medium,
            topology: self.topology,
            seed: self.seed,
            faults: self.faults,
            dynamics: self.dynamics,
            validators: self.validators,
            shards: self.shards,
        }
    }

    /// Sets the topology the nodes are deployed on. Required.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the master seed every random stream derives from
    /// (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scripts a reproducible fault plan: each fault fires right
    /// before its step executes, inside the driver — composable with
    /// mobility and any stop condition.
    pub fn faults(mut self, plan: FaultPlan) -> Self
    where
        P: Corruptible,
    {
        let corruptor: Corruptor<P> =
            Box::new(|protocol, node, state, rng| protocol.corrupt(node, state, rng));
        self.faults = Some((plan, corruptor));
        self
    }

    /// Forces the round driver's sharded active pass to exactly `k`
    /// shards (`k = 1` forces the serial path), overriding the
    /// automatic policy and the `MWN_FORCE_SHARDS` environment
    /// variable. Sharded and serial execution are byte-identical, so
    /// this is a performance knob, not a semantics knob. Ignored by
    /// [`Scenario::build_events`].
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = Some(k);
        self
    }

    /// Attaches topology dynamics — typically a mobility model — that
    /// move the nodes before every step.
    pub fn mobility<D: TopologyDynamics + Send + 'static>(mut self, dynamics: D) -> Self {
        self.dynamics = Some(Box::new(dynamics));
        self
    }

    /// Registers a configuration check run against the topology at
    /// build time (e.g. `ClusterConfig::validate_for`); a failing
    /// check turns into [`SimError::InvalidConfig`].
    pub fn validate<F>(mut self, check: F) -> Self
    where
        F: FnOnce(&Topology) -> Result<(), String> + 'static,
    {
        self.validators.push(Box::new(check));
        self
    }

    /// Builds the synchronous round driver.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingTopology`] when no topology was supplied;
    /// [`SimError::InvalidConfig`] when a [`Scenario::validate`] check
    /// fails.
    pub fn build(self) -> Result<Network<P, M>, SimError> {
        let topology = self.topology.ok_or(SimError::MissingTopology)?;
        for check in self.validators {
            check(&topology).map_err(SimError::InvalidConfig)?;
        }
        if let Some((plan, _)) = &self.faults {
            plan.validate_for(&topology)?;
        }
        let mut net = Network::new(self.protocol, self.medium, topology, self.seed);
        if let Some(k) = self.shards {
            net.set_shards(Some(k));
        }
        if let Some((plan, corruptor)) = self.faults {
            net.install_script(plan.into_events(), Some(corruptor));
        }
        if let Some(dynamics) = self.dynamics {
            net.install_dynamics(dynamics);
        }
        Ok(net)
    }

    /// Builds the continuous-time event driver instead of the round
    /// driver.
    ///
    /// The scenario's medium is honored: media with
    /// [`Medium::independent_fates`] (perfect, Bernoulli, fading)
    /// decide each frame copy's fate from a derived per-(slot, sender)
    /// stream — and permit activity gating for
    /// [`crate::Activity::Gated`] protocols, whose silent nodes then
    /// stop scheduling beacon events altogether. Contention-coupled
    /// media fall back to the driver's built-in overlap-collision
    /// channel, which models contention directly in continuous time.
    ///
    /// Scripted [`FaultPlan`]s carry over: a fault scheduled at step
    /// `k` fires once the clock reaches `k` beacon periods. Mobility
    /// dynamics tick once per beacon period at logical-step
    /// boundaries, with [`crate::Protocol::link_down`] fired for every
    /// severed link.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingTopology`], [`SimError::InvalidConfig`] (bad
    /// event parameters or failed validation).
    pub fn build_events(self, config: EventConfig) -> Result<EventDriver<P, M>, SimError> {
        let topology = self.topology.ok_or(SimError::MissingTopology)?;
        config.check().map_err(SimError::InvalidConfig)?;
        for check in self.validators {
            check(&topology).map_err(SimError::InvalidConfig)?;
        }
        if let Some((plan, _)) = &self.faults {
            plan.validate_for(&topology)?;
        }
        let mut driver =
            EventDriver::with_medium(self.protocol, self.medium, topology, config, self.seed);
        if let Some((plan, corruptor)) = self.faults {
            driver.install_script(plan.into_events(), Some(corruptor));
        }
        if let Some(dynamics) = self.dynamics {
            driver.install_dynamics(dynamics);
        }
        Ok(driver)
    }

    /// Builds the **actor driver**: every node a real message-passing
    /// process over `threads` worker threads, exchanging serialized
    /// beacon frames ([`WireBeacon`]) under the virtual-time token
    /// governor — the third driver the same scenario can run on.
    ///
    /// The medium must support shared-reference fate evaluation
    /// ([`Medium::proxyable`]): the actor fabric replays its drop
    /// decisions on the round driver's per-(period, sender) streams, so
    /// a given seed drops the same frame copies on both drivers.
    /// Scripted [`FaultPlan`]s fire at period boundaries *before* that
    /// period's beacon slots are released (fault ≤ send); mobility
    /// dynamics tick once per period at the same boundary. The
    /// [`Scenario::shards`] knob is ignored — `threads` is the actor
    /// fabric's own parallelism control.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingTopology`]; [`SimError::InvalidConfig`] when
    /// a [`Scenario::validate`] check fails or the medium is
    /// contention-coupled (not proxyable).
    pub fn build_actors(self, threads: usize) -> Result<ActorDriver<P, M>, SimError>
    where
        P::Beacon: WireBeacon,
        M: Sync,
    {
        let topology = self.topology.ok_or(SimError::MissingTopology)?;
        for check in self.validators {
            check(&topology).map_err(SimError::InvalidConfig)?;
        }
        if let Some((plan, _)) = &self.faults {
            plan.validate_for(&topology)?;
        }
        let mut driver =
            ActorDriver::new(self.protocol, self.medium, topology, self.seed, threads)?;
        if let Some((plan, corruptor)) = self.faults {
            driver.install_script(plan.into_events(), Some(corruptor));
        }
        if let Some(dynamics) = self.dynamics {
            driver.install_dynamics(dynamics);
        }
        Ok(driver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, Observable, StopWhen};
    use mwn_graph::{builders, NodeId};
    use mwn_radio::BernoulliLoss;
    use rand::rngs::StdRng;

    #[derive(Debug)]
    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            *state = (*state).max(node.value());
        }
    }
    impl Corruptible for MaxFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }
    impl Observable for MaxFlood {
        type Output = u32;
        fn output(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
    }

    #[test]
    fn missing_topology_is_a_typed_error() {
        assert_eq!(
            Scenario::new(MaxFlood).build().unwrap_err(),
            SimError::MissingTopology
        );
    }

    #[test]
    fn validation_failure_is_reported() {
        let err = Scenario::new(MaxFlood)
            .topology(builders::line(3))
            .validate(|_| Err("γ too small".to_string()))
            .build()
            .unwrap_err();
        assert_eq!(err, SimError::InvalidConfig("γ too small".to_string()));
    }

    #[test]
    fn builder_defaults_run_end_to_end() {
        let mut net = Scenario::new(MaxFlood)
            .topology(builders::line(4))
            .build()
            .expect("builds");
        let report = net.run_to(&StopWhen::stable_for(2).within(50));
        assert_eq!(report.expect_stable("stabilizes"), 3);
    }

    #[test]
    fn medium_and_seed_thread_through() {
        let run = |seed| {
            let mut net = Scenario::new(MaxFlood)
                .medium(BernoulliLoss::new(0.5))
                .topology(builders::ring(10))
                .seed(seed)
                .build()
                .expect("builds");
            net.run(6);
            net.states().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn scripted_faults_fire_inside_the_driver() {
        let mut plan = FaultPlan::new();
        plan.at(10, Fault::CorruptAll);
        let mut net = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .faults(plan)
            .build()
            .expect("builds");
        // run_to sees the corruption and keeps going until re-stable.
        // The quiet window (8) outlasts the pre-fault stable stretch
        // (steps 4–10), so stability can only be declared after the
        // fault has fired and healed.
        let report = net.run_to(&StopWhen::stable_for(8).within(100));
        assert!(
            report.expect_stable("heals") >= 10,
            "corruption restarted the clock"
        );
        assert!(net.states().iter().all(|&s| s == 4));
    }

    #[test]
    fn scripted_topology_faults_apply() {
        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)));
        let mut net = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .faults(plan)
            .build()
            .expect("builds");
        net.run(20);
        assert_eq!(*net.state(NodeId::new(0)), 1, "max id cannot cross the cut");
    }

    #[test]
    fn event_driver_builds_from_the_same_scenario() {
        let mut driver = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(2)
            .build_events(EventConfig::default())
            .expect("builds");
        driver.run_until_time(40.0);
        assert!(driver.states().iter().all(|&s| s == 4));
    }

    #[test]
    fn event_driver_rejects_bad_config_without_panicking() {
        let result = Scenario::new(MaxFlood)
            .topology(builders::line(2))
            .build_events(EventConfig {
                beacon_period: 0.0,
                ..EventConfig::default()
            });
        assert!(matches!(result, Err(SimError::InvalidConfig(_))));
    }
}
