//! **Table 5**: cluster characteristics on the adversarial grid — node
//! ids increase left-to-right, bottom-to-top, so all interior nodes
//! share the same density and the identifier alone decides the
//! election. Without the DAG the whole grid collapses into **one**
//! cluster whose tree is as deep as the network; with the DAG renaming
//! the election is local again and many small clusters appear.

use mwn_metrics::{RunningStats, Table};

use crate::common::{ExperimentScale, TABLE45_RADII};
use crate::table4::{features_one_run, ClusterFeatureTable, ClusterFeatures};

/// Runs the Table 5 experiment.
///
/// The no-DAG configuration is deterministic on a grid (ids and
/// densities are fixed), so it is computed once; the with-DAG rows are
/// averaged over `scale.runs` random renamings.
pub fn run(scale: ExperimentScale) -> ClusterFeatureTable {
    let mut result = ClusterFeatureTable {
        radii: TABLE45_RADII.to_vec(),
        ..ClusterFeatureTable::default()
    };
    for &radius in &TABLE45_RADII {
        // The paper's radii are calibrated for its 32×32 grid (spacing
        // 1/31); scale them with the side so smaller test grids keep
        // the same connectivity pattern.
        let scaled = radius * 31.0 / (scale.grid_side.max(2) - 1) as f64;
        let topo = mwn_graph::builders::grid(scale.grid_side, scale.grid_side, scaled);
        let with_runs = scale.sweep_with(scale.seed ^ 0x55BB).map({
            let topo = topo.clone();
            move |seed| features_one_run(topo.clone(), true, seed)
        });
        let mut clusters = RunningStats::new();
        let mut ecc = RunningStats::new();
        let mut tree = RunningStats::new();
        for f in with_runs.into_iter().flatten() {
            clusters.push(f.clusters);
            ecc.push(f.eccentricity);
            tree.push(f.tree_length);
        }
        result.with_dag.push(ClusterFeatures {
            clusters: clusters.mean(),
            eccentricity: ecc.mean(),
            tree_length: tree.mean(),
        });
        result
            .without_dag
            .push(features_one_run(topo, false, 0).expect("grid is non-empty"));
    }
    result
}

/// Formats the result in the paper's layout.
pub fn render(result: &ClusterFeatureTable) -> Table {
    crate::table4::render(
        "Table 5: clusters characteristics on a grid (paper, R=0.05: 52.8 vs 1.0 clusters)",
        result,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_collapse_without_dag_rescued_with_dag() {
        let scale = ExperimentScale {
            runs: 3,
            grid_side: 16,
            ..ExperimentScale::quick()
        };
        let result = run(scale);
        for (i, &radius) in result.radii.iter().enumerate() {
            let (w, wo) = (&result.with_dag[i], &result.without_dag[i]);
            // The paper's headline: exactly one cluster without the DAG…
            assert_eq!(
                wo.clusters, 1.0,
                "R={radius}: adversarial grid must collapse to one cluster"
            );
            // …and several shallow clusters with the DAG (the paper's
            // 32-grid gets 52.8/29.3/18.5 for the three radii; a
            // 16-grid has a quarter of the nodes).
            assert!(
                w.clusters > 2.0,
                "R={radius}: DAG should yield several clusters, got {}",
                w.clusters
            );
            assert!(
                w.tree_length * 2.0 < wo.tree_length,
                "R={radius}: DAG trees ({}) must be far shallower than no-DAG ({})",
                w.tree_length,
                wo.tree_length
            );
        }
        // At the smallest radius (one-cell reach) the single cluster's
        // tree spans the whole grid: depth on the order of the side
        // (paper: tree length 83.4 and eccentricity 29.1 on a 32-grid).
        let wo_smallest = &result.without_dag[0];
        assert!(
            wo_smallest.tree_length >= (scale.grid_side - 1) as f64 * 0.6,
            "R=0.05: no-DAG tree length {} should span the grid",
            wo_smallest.tree_length
        );
    }

    #[test]
    fn render_mentions_paper_numbers() {
        let scale = ExperimentScale {
            runs: 2,
            grid_side: 12,
            ..ExperimentScale::quick()
        };
        let s = render(&run(scale)).to_string();
        assert!(s.contains("52.8"), "title cites the paper's value");
    }
}
