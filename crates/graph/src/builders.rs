//! Topology generators: the deployments used in the paper's Section 5
//! (Poisson fields and grids over the unit square) plus standard shapes
//! used by the test suite (lines, rings, stars, complete graphs,
//! Erdős–Rényi) and the hand-reconstructed Figure 1 example.

use rand::Rng;

use crate::{Point2, Topology};

/// Samples a Poisson(λ) count exactly.
///
/// Knuth's product-of-uniforms method underflows for large λ, so the
/// draw is split into chunks of intensity ≤ 16; a Poisson variable is
/// the sum of independent Poisson variables of partial intensity. Cost
/// is `O(λ)`, which is fine for the paper's λ = 1000.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let n = mwn_graph::builders::poisson_count(1000.0, &mut rng);
/// assert!((800..1200).contains(&n));
/// ```
pub fn poisson_count<R: Rng>(lambda: f64, rng: &mut R) -> usize {
    assert!(lambda >= 0.0, "Poisson intensity must be non-negative");
    let mut remaining = lambda;
    let mut total = 0usize;
    while remaining > 0.0 {
        let chunk = remaining.min(16.0);
        remaining -= chunk;
        let limit = (-chunk).exp();
        let mut product = 1.0f64;
        let mut k = 0usize;
        loop {
            product *= rng.random_range(0.0..1.0f64);
            if product < limit {
                break;
            }
            k += 1;
        }
        total += k;
    }
    total
}

/// Deploys a Poisson point process of intensity `lambda` over the unit
/// square and links nodes within `radius` (the random geometric graphs
/// of Table 3 and Table 4).
///
/// # Panics
///
/// Panics if `radius` is not finite and positive.
pub fn poisson<R: Rng>(lambda: f64, radius: f64, rng: &mut R) -> Topology {
    let n = poisson_count(lambda, rng);
    uniform(n, radius, rng)
}

/// Deploys exactly `n` uniformly random points in the unit square and
/// links nodes within `radius`.
///
/// # Panics
///
/// Panics if `radius` is not finite and positive.
pub fn uniform<R: Rng>(n: usize, radius: f64, rng: &mut R) -> Topology {
    let positions = (0..n)
        .map(|_| Point2::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    Topology::unit_disk(positions, radius).expect("radius validated by caller contract")
}

/// Deploys an `nx × ny` grid spanning the unit square and links nodes
/// within `radius`.
///
/// Identifiers increase "from left to right and from the bottom to the
/// top" exactly as in the paper's adversarial Table 5 scenario: node
/// `(x, y)` gets id `y*nx + x`, with `y = 0` the bottom row. With
/// `32 × 32 ≈ 1000` nodes and `R = 0.05`, interior nodes see their 8
/// surrounding grid points and all interior densities are equal, so the
/// id distribution alone decides the election — the worst case the DAG
/// renaming is designed to fix.
///
/// # Panics
///
/// Panics if `nx * ny == 0` or `radius` is not finite and positive.
pub fn grid(nx: usize, ny: usize, radius: f64) -> Topology {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    let sx = if nx > 1 { 1.0 / (nx - 1) as f64 } else { 0.0 };
    let sy = if ny > 1 { 1.0 / (ny - 1) as f64 } else { 0.0 };
    let mut positions = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            positions.push(Point2::new(x as f64 * sx, y as f64 * sy));
        }
    }
    Topology::unit_disk(positions, radius).expect("radius validated by caller contract")
}

/// A path of `n` nodes: `0 — 1 — … — n-1`, positioned along the unit
/// segment.
pub fn line(n: usize) -> Topology {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    let positions = (0..n)
        .map(|i| {
            let t = if n > 1 {
                i as f64 / (n - 1) as f64
            } else {
                0.5
            };
            Point2::new(t, 0.5)
        })
        .collect();
    Topology::from_edges(n, &edges)
        .expect("line edges are always valid")
        .with_positions(positions)
}

/// A cycle of `n ≥ 3` nodes positioned on a circle.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    edges.push((n as u32 - 1, 0));
    let positions = (0..n)
        .map(|i| {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            Point2::new(0.5 + 0.4 * a.cos(), 0.5 + 0.4 * a.sin())
        })
        .collect();
    Topology::from_edges(n, &edges)
        .expect("ring edges are always valid")
        .with_positions(positions)
}

/// A star: node 0 at the center linked to `n - 1` leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Topology {
    assert!(n >= 1, "a star needs at least its center");
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    let mut positions = vec![Point2::new(0.5, 0.5)];
    for i in 1..n {
        let a = i as f64 / (n - 1).max(1) as f64 * std::f64::consts::TAU;
        positions.push(Point2::new(0.5 + 0.4 * a.cos(), 0.5 + 0.4 * a.sin()));
    }
    Topology::from_edges(n, &edges)
        .expect("star edges are always valid")
        .with_positions(positions)
}

/// The complete graph `K_n` (every pair linked).
pub fn complete(n: usize) -> Topology {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Topology::from_edges(n, &edges).expect("complete-graph edges are always valid")
}

/// An Erdős–Rényi graph `G(n, p)`: each pair linked independently with
/// probability `p`. No positions (not a geometric graph); used by
/// property tests to exercise non-geometric topologies.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Topology {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.random_range(0.0..1.0) < p {
                edges.push((u, v));
            }
        }
    }
    Topology::from_edges(n, &edges).expect("G(n,p) edges are always valid")
}

/// Labels of the ten nodes of the paper's Figure 1 example, indexed by
/// [`crate::NodeId`]. See [`fig1_example`].
pub const FIG1_LABELS: [char; 10] = ['a', 'b', 'c', 'd', 'e', 'j', 'g', 'h', 'i', 'f'];

/// The illustrative example of the paper's Figure 1 / Table 1.
///
/// The graph is reconstructed from Table 1's per-node neighbor and link
/// counts (the original figure is only available as a drawing). Letters
/// map to identifiers such that `j` has a smaller id than `f`, because
/// the paper stipulates "let's assume that node j has the smallest Id"
/// for the `d_j = d_f` tie-break. The mapping is given by
/// [`FIG1_LABELS`]: `a=0, b=1, c=2, d=3, e=4, j=5, g=6, h=7, i=8, f=9`.
///
/// Every row of Table 1 is reproduced by this reconstruction except
/// node `d` (the printed figure and table are mutually inconsistent for
/// that row — see EXPERIMENTS.md); the resulting clustering is exactly
/// the paper's: two clusters, headed by `h` and `j`.
///
/// # Examples
///
/// ```
/// use mwn_graph::builders::{fig1_example, FIG1_LABELS};
/// use mwn_graph::NodeId;
///
/// let topo = fig1_example();
/// let h = NodeId::new(7);
/// assert_eq!(FIG1_LABELS[h.index()], 'h');
/// assert_eq!(topo.degree(h), 2); // Table 1: node h has 2 neighbors
/// assert_eq!(topo.neighborhood_links(h), 3); // and 3 links
/// ```
pub fn fig1_example() -> Topology {
    // ids: a=0, b=1, c=2, d=3, e=4, j=5, g=6, h=7, i=8, f=9
    let (a, b, c, d, e, j, g, h, i, f) = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9);
    let edges = [
        (a, d),
        (a, i),
        (b, c),
        (b, d),
        (b, h),
        (b, i),
        (h, i),
        (d, e),
        (f, j),
        (f, g),
        (j, g),
        (g, i),
    ];
    let positions = vec![
        Point2::new(0.10, 0.55), // a
        Point2::new(0.30, 0.45), // b
        Point2::new(0.22, 0.20), // c
        Point2::new(0.18, 0.75), // d
        Point2::new(0.38, 0.90), // e
        Point2::new(0.80, 0.30), // j
        Point2::new(0.68, 0.52), // g
        Point2::new(0.45, 0.30), // h
        Point2::new(0.40, 0.62), // i
        Point2::new(0.90, 0.55), // f
    ];
    Topology::from_edges(10, &edges)
        .expect("figure-1 edges are always valid")
        .with_positions(positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_count_matches_intensity() {
        let mut rng = StdRng::seed_from_u64(1);
        let runs = 200;
        let mean: f64 = (0..runs)
            .map(|_| poisson_count(50.0, &mut rng) as f64)
            .sum::<f64>()
            / runs as f64;
        assert!((mean - 50.0).abs() < 3.0, "mean {mean} too far from 50");
    }

    #[test]
    fn poisson_count_zero_intensity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson_count(0.0, &mut rng), 0);
    }

    #[test]
    fn grid_ids_increase_left_to_right_bottom_to_top() {
        let topo = grid(4, 3, 0.35);
        // node (x=2, y=1) has id 1*4 + 2 = 6
        let p = topo.position(NodeId::new(6)).unwrap();
        assert!((p.x - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grid_interior_has_eight_neighbors_at_r005() {
        // 32×32 grid: spacing 1/31 ≈ 0.0323; R = 0.05 covers the 8
        // surrounding points (diagonal ≈ 0.0456) but not distance-2.
        let topo = grid(32, 32, 0.05);
        let interior = NodeId::new((16 * 32 + 16) as u32);
        assert_eq!(topo.degree(interior), 8);
        let corner = NodeId::new(0);
        assert_eq!(topo.degree(corner), 3);
    }

    #[test]
    fn line_ring_star_complete_shapes() {
        assert_eq!(line(5).edge_count(), 4);
        assert_eq!(ring(5).edge_count(), 5);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(star(5).degree(NodeId::new(0)), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(complete(5).max_degree(), 4);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).edge_count(), 45);
    }

    #[test]
    fn uniform_respects_count_and_square() {
        let mut rng = StdRng::seed_from_u64(4);
        let topo = uniform(100, 0.1, &mut rng);
        assert_eq!(topo.len(), 100);
        for p in topo.positions().unwrap() {
            assert!(p.in_unit_square());
        }
    }

    #[test]
    fn fig1_matches_table1_neighbor_and_link_counts() {
        let topo = fig1_example();
        let by_label =
            |c: char| NodeId::new(FIG1_LABELS.iter().position(|&l| l == c).unwrap() as u32);
        // Table 1 (all rows except the inconsistent node d):
        // node:       a  b  c  d  e  f  h  i  j
        // #neighbors: 2  4  1  4  1  2  2  4  2
        // #links:     2  5  1  5  1  3  3  5  3
        let expect = [
            ('a', 2, 2),
            ('b', 4, 5),
            ('c', 1, 1),
            ('e', 1, 1),
            ('f', 2, 3),
            ('h', 2, 3),
            ('i', 4, 5),
            ('j', 2, 3),
        ];
        for (label, deg, links) in expect {
            let p = by_label(label);
            assert_eq!(topo.degree(p), deg, "degree of {label}");
            assert_eq!(topo.neighborhood_links(p), links, "links of {label}");
        }
        // Our reading of the figure gives d three neighbors {a, b, e}.
        assert_eq!(topo.degree(by_label('d')), 3);
    }

    #[test]
    fn fig1_j_has_smaller_id_than_f() {
        let j = FIG1_LABELS.iter().position(|&l| l == 'j').unwrap();
        let f = FIG1_LABELS.iter().position(|&l| l == 'f').unwrap();
        assert!(j < f, "the paper assumes Id(j) < Id(f)");
    }
}
