//! Criterion micro-benchmarks of the engine's kernel layer
//! (`mwn_sim::kernels`): every kernel against its scalar reference, on
//! the data shapes the converging phase actually produces.
//!
//! Three families:
//!
//! * **bitset-scan** — [`BitWords::decode_into`] (word-at-a-time,
//!   `trailing_zeros` decode with the all-ones fast path) vs the
//!   per-bit scalar test loop, at converging density (every bit set),
//!   mixed density and quiet sparsity;
//! * **epoch-compare** — [`kernels::any_fresh`] (early-exit over the
//!   contiguous reception row, merge-joined on wide rows) and
//!   [`kernels::count_eq_u32`] (autovectorized bulk compare) vs their
//!   scalar references;
//! * **merge** — [`kernels::sorted_positions`] (adaptive: per-key
//!   binary search at radio degrees, two-pointer merge on wide
//!   densely-hit rows) vs unconditional per-frame `binary_search` —
//!   the degree sweep shows the strategy crossover the adaptive split
//!   is tuned to.
//!
//! On the 1-CPU CI container the absolute numbers wobble; compare the
//! kernel row against its `_scalar` sibling in the same run — the
//! ratio is the signal (see README § Kernels).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mwn_graph::NodeId;
use mwn_sim::kernels::{self, BitWords};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 100_000;

fn bits_at_density(n: usize, density: f64, seed: u64) -> BitWords {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = BitWords::new(n);
    for i in 0..n {
        if rng.random_bool(density) {
            w.set(i);
        }
    }
    w
}

fn bench_bitset_scan(c: &mut Criterion) {
    for (label, density) in [
        ("converging_dense_1.0", 1.0),
        ("mixed_0.5", 0.5),
        ("quiet_sparse_0.01", 0.01),
    ] {
        let bits = bits_at_density(N, density, 11);
        let mut group = c.benchmark_group(&format!("bitset_scan/{label}"));
        group.throughput(Throughput::Elements(N as u64));
        let mut out = Vec::with_capacity(N);
        group.bench_function("kernel", |b| {
            b.iter(|| {
                out.clear();
                bits.decode_into(black_box(&mut out));
                black_box(out.len())
            })
        });
        group.bench_function("scalar", |b| {
            b.iter(|| {
                out.clear();
                bits.decode_into_scalar(black_box(&mut out));
                black_box(out.len())
            })
        });
        group.finish();
    }
}

/// A receiver's worth of join input: sorted adjacency row of `deg`
/// entries plus a sorted ~60% subset of it as the delivered senders.
fn join_rows(deg: usize, rows: usize, seed: u64) -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|_| {
            let mut neighbors: Vec<NodeId> = (0..deg as u32 * 3)
                .map(|_| NodeId::new(rng.random_range(0..50_000)))
                .collect();
            neighbors.sort_unstable();
            neighbors.dedup();
            neighbors.truncate(deg);
            let senders: Vec<NodeId> = neighbors
                .iter()
                .copied()
                .filter(|_| rng.random_bool(0.6))
                .collect();
            (neighbors, senders)
        })
        .collect()
}

fn bench_merge_join(c: &mut Criterion) {
    for deg in [8usize, 32, 256, 1024] {
        let rows = join_rows(deg, (16_000 / deg).max(12), 23);
        let frames: u64 = rows.iter().map(|(_, s)| s.len() as u64).sum();
        let mut group = c.benchmark_group(&format!("merge_join/degree_{deg}"));
        group.throughput(Throughput::Elements(frames));
        group.bench_function("kernel", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for (neighbors, senders) in &rows {
                    kernels::sorted_positions(neighbors, senders, |idx, _| acc += idx);
                }
                black_box(acc)
            })
        });
        group.bench_function("scalar_binary_search", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for (neighbors, senders) in &rows {
                    kernels::sorted_positions_scalar(neighbors, senders, |idx, _| acc += idx);
                }
                black_box(acc)
            })
        });
        group.finish();
    }
}

fn bench_epoch_compare(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(31);
    let epochs: Vec<u32> = (0..50_000).map(|_| rng.random_range(0..4)).collect();
    for deg in [16usize, 256] {
        let rows = join_rows(deg, (16_000 / deg).max(50), 37);
        let heard: Vec<Vec<u32>> = rows
            .iter()
            .map(|(n, _)| n.iter().map(|_| rng.random_range(0..4)).collect())
            .collect();
        let mut group = c.benchmark_group(&format!("epoch_compare/any_fresh_degree_{deg}"));
        group.throughput(Throughput::Elements(rows.len() as u64));
        group.bench_function("kernel", |b| {
            b.iter(|| {
                let mut fresh = 0usize;
                for ((neighbors, senders), row) in rows.iter().zip(&heard) {
                    fresh += usize::from(kernels::any_fresh(row, &epochs, neighbors, senders));
                }
                black_box(fresh)
            })
        });
        group.bench_function("scalar", |b| {
            b.iter(|| {
                let mut fresh = 0usize;
                for ((neighbors, senders), row) in rows.iter().zip(&heard) {
                    fresh +=
                        usize::from(kernels::any_fresh_scalar(row, &epochs, neighbors, senders));
                }
                black_box(fresh)
            })
        });
        group.finish();
    }

    let column: Vec<u32> = (0..N).map(|_| rng.random_range(0..3)).collect();
    let mut group = c.benchmark_group("epoch_compare/count_eq");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("kernel", |b| {
        b.iter(|| black_box(kernels::count_eq_u32(black_box(&column), 1)))
    });
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(kernels::count_eq_u32_scalar(black_box(&column), 1)))
    });
    group.finish();
}

fn bench_drain(c: &mut Criterion) {
    // The per-step dirty-set drain at converging density: decode +
    // clear in one pass, the shape `NodeSet::drain_sorted_into` takes
    // on the dense path.
    let bits = bits_at_density(N, 1.0, 41);
    let mut group = c.benchmark_group("bitset_scan/drain_dense");
    group.throughput(Throughput::Elements(N as u64));
    let mut out = Vec::with_capacity(N);
    group.bench_function("kernel", |b| {
        let mut scratch = bits.clone();
        b.iter(|| {
            scratch.clone_from(&bits);
            out.clear();
            scratch.decode_and_zero_into(&mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(
    kernels_suite,
    bench_bitset_scan,
    bench_merge_join,
    bench_epoch_compare,
    bench_drain
);
criterion_main!(kernels_suite);
