//! Property-based tests of the medium laws every implementation must
//! satisfy — the radio-range constraint, count consistency, and the
//! paper's τ > 0 hypothesis.

use mwn_graph::{builders, NodeId, Topology};
use mwn_radio::{
    measure_tau, BernoulliLoss, CaptureCsma, Delivery, DistanceFading, Medium, PerfectMedium,
    SlottedCsma, Thinned,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    (2usize..60, 5u32..30, 0u64..u64::MAX).prop_map(|(n, r, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        builders::uniform(n, f64::from(r) / 100.0, &mut rng)
    })
}

fn media() -> Vec<Box<dyn Medium>> {
    vec![
        Box::new(PerfectMedium),
        Box::new(BernoulliLoss::new(0.5)),
        Box::new(SlottedCsma::new(8)),
        Box::new(SlottedCsma::new(4).without_carrier_sense()),
        Box::new(DistanceFading::new(2.0, 0.2)),
        Box::new(CaptureCsma::new(8, 1.5)),
        Box::new(Thinned::new(SlottedCsma::new(8), 0.8)),
    ]
}

/// Checks the universal delivery laws for one round.
fn check_laws(topo: &Topology, senders: &[NodeId], delivery: &Delivery) -> Result<(), String> {
    if delivery.heard.len() != topo.len() {
        return Err("heard vector has wrong length".into());
    }
    let mut delivered = 0usize;
    for r in topo.nodes() {
        for &s in &delivery.heard[r.index()] {
            if !topo.has_edge(s, r) {
                return Err(format!("{r} heard non-neighbor {s}"));
            }
            if !senders.contains(&s) {
                return Err(format!("{r} heard silent node {s}"));
            }
            if s == r {
                return Err(format!("{r} heard itself"));
            }
            delivered += 1;
        }
    }
    if delivered != delivery.delivered {
        return Err("delivered count mismatch".into());
    }
    let attempted: usize = senders.iter().map(|&s| topo.degree(s)).sum();
    if delivery.attempted != attempted {
        return Err(format!(
            "attempted {} but in-range copies are {attempted}",
            delivery.attempted
        ));
    }
    if delivery.delivered > delivery.attempted {
        return Err("delivered more than attempted".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every medium delivers only in-range copies of real frames, with
    /// consistent bookkeeping, for arbitrary sender subsets.
    #[test]
    fn all_media_satisfy_delivery_laws(
        topo in topo_strategy(),
        seed in 0u64..u64::MAX,
        sender_mask in 0u64..u64::MAX,
    ) {
        let senders: Vec<NodeId> = topo
            .nodes()
            .filter(|p| (sender_mask >> (p.index() % 64)) & 1 == 1)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for mut medium in media() {
            let delivery = medium.deliver(&topo, &senders, &mut rng);
            if let Err(msg) = check_laws(&topo, &senders, &delivery) {
                prop_assert!(false, "{}: {msg}", medium.name());
            }
        }
    }

    /// The perfect medium delivers every in-range copy.
    #[test]
    fn perfect_medium_is_lossless(topo in topo_strategy(), seed in 0u64..u64::MAX) {
        let senders: Vec<NodeId> = topo.nodes().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let delivery = PerfectMedium.deliver(&topo, &senders, &mut rng);
        prop_assert_eq!(delivery.attempted, delivery.delivered);
    }

    /// Every medium keeps τ strictly positive under full contention —
    /// the paper's hypothesis.
    #[test]
    fn tau_is_strictly_positive(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = builders::uniform(40, 0.2, &mut rng);
        prop_assume!(topo.edge_count() > 0);
        for mut medium in media() {
            let tau = measure_tau(medium.as_mut(), &topo, 30, &mut rng);
            prop_assert!(tau > 0.0, "{}: τ = 0", medium.name());
            prop_assert!(tau <= 1.0, "{}: τ > 1", medium.name());
        }
    }

    /// Deliveries are deterministic given the RNG state.
    #[test]
    fn delivery_is_reproducible(topo in topo_strategy(), seed in 0u64..u64::MAX) {
        let senders: Vec<NodeId> = topo.nodes().collect();
        for mut medium in media() {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let da = medium.deliver(&topo, &senders, &mut a);
            let db = medium.deliver(&topo, &senders, &mut b);
            prop_assert_eq!(&da, &db, "{} not reproducible", medium.name());
        }
    }
}
