//! Typed errors for scenario construction and topology edits.

/// Why a scenario could not be built or a network edit was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A topology swap tried to add or remove nodes. Protocol state is
    /// indexed by [`mwn_graph::NodeId`], so the node count is fixed for
    /// the lifetime of a network.
    NodeCountMismatch {
        /// Node count the network was built with.
        expected: usize,
        /// Node count of the offered topology.
        got: usize,
    },
    /// [`crate::Scenario::build`] was called without a topology.
    MissingTopology,
    /// A configuration check rejected the scenario (protocol
    /// validation hook or event-driver parameters).
    InvalidConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NodeCountMismatch { expected, got } => write!(
                f,
                "topology has {got} nodes but the network was built with {expected}: \
                 a network cannot add or remove nodes"
            ),
            SimError::MissingTopology => {
                write!(
                    f,
                    "scenario has no topology: call .topology(..) before .build()"
                )
            }
            SimError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_violation() {
        let e = SimError::NodeCountMismatch {
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("5 nodes"));
        assert!(e.to_string().contains("built with 4"));
        assert!(SimError::MissingTopology.to_string().contains("topology"));
        assert!(SimError::InvalidConfig("γ too small".into())
            .to_string()
            .contains("γ too small"));
    }
}
