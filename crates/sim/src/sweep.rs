//! The parallel sweep runner: fan a scenario out over seed ranges and
//! parameter grids.
//!
//! The paper averages every reported statistic "over 1000
//! simulations"; probabilistic-stabilization experiments (Devismes et
//! al.) estimate convergence probabilities the same way. [`Sweep`]
//! owns that fan-out: seeds are derived deterministically from a base
//! seed (SplitMix64), work is spread over the available cores with
//! scoped threads, and results come back **in seed order** — parallel
//! and serial execution produce byte-identical results.
//!
//! `rayon` would be the natural backend, but this build environment
//! has no registry access, so the runner uses `std::thread::scope`
//! with a work-stealing index — the same scheduling, no dependency.
//!
//! # Examples
//!
//! ```
//! use mwn_sim::Sweep;
//!
//! let sweep = Sweep::over(16, 7);
//! let a = sweep.map(|seed| seed.wrapping_mul(3));
//! let b = Sweep::over(16, 7).serial().map(|seed| seed.wrapping_mul(3));
//! assert_eq!(a, b); // parallel == serial, in seed order
//! ```

use mwn_radio::Medium;

use crate::engine::run_pooled;
use crate::rng::derive_seed;
use crate::{Network, Observable, RunReport, Scenario, SimError, StopWhen};

/// The outcome of a [`Sweep::convergence`] estimate: how many of the
/// fanned-out runs stabilized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Convergence {
    /// Runs that satisfied a stability condition.
    pub stabilized: usize,
    /// Total runs.
    pub runs: usize,
}

impl Convergence {
    /// The point estimate of the convergence probability (1.0 for an
    /// empty sweep — nothing failed to stabilize).
    pub fn fraction(&self) -> f64 {
        if self.runs == 0 {
            1.0
        } else {
            self.stabilized as f64 / self.runs as f64
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExecMode {
    /// Scoped threads over the available cores (capped by `threads`).
    Parallel(Option<usize>),
    /// A plain loop on the calling thread.
    Serial,
}

/// A deterministic fan-out of independent runs over derived seeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sweep {
    seeds: Vec<u64>,
    mode: ExecMode,
}

impl Sweep {
    /// `runs` seeds derived from `base_seed` (SplitMix64 — the same
    /// derivation as [`crate::derive_seed`], so sweeps are reproducible
    /// and decorrelated).
    pub fn over(runs: usize, base_seed: u64) -> Self {
        Sweep {
            seeds: (0..runs as u64)
                .map(|i| derive_seed(base_seed, i))
                .collect(),
            mode: ExecMode::Parallel(None),
        }
    }

    /// An explicit seed list.
    pub fn with_seeds(seeds: Vec<u64>) -> Self {
        Sweep {
            seeds,
            mode: ExecMode::Parallel(None),
        }
    }

    /// Runs everything on the calling thread — for determinism checks
    /// and wall-clock baselines.
    pub fn serial(mut self) -> Self {
        self.mode = ExecMode::Serial;
        self
    }

    /// Caps the worker-thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.mode = ExecMode::Parallel(Some(n.max(1)));
        self
    }

    /// The derived seeds, in result order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// `true` when no runs are configured.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Runs `job(seed)` for every seed and returns the results in seed
    /// order. The schedule cannot leak into the results: each job sees
    /// only its seed.
    pub fn map<T, F>(&self, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let runs = self.seeds.len();
        match self.mode {
            ExecMode::Serial => self.seeds.iter().map(|&s| job(s)).collect(),
            ExecMode::Parallel(cap) => {
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(cap.unwrap_or(usize::MAX))
                    .min(runs.max(1));
                // The shared engine pool: the same scoped-thread
                // work-stealing loop the round driver's sharded
                // active-set pass runs on.
                run_pooled(runs, threads, |i| job(self.seeds[i]))
            }
        }
    }

    /// Fans `job(param, seed)` out over the full `grid × seeds`
    /// product in parallel; returns one result vector per grid point,
    /// each in seed order.
    pub fn map_grid<G, T, F>(&self, grid: &[G], job: F) -> Vec<Vec<T>>
    where
        G: Sync,
        T: Send,
        F: Fn(&G, u64) -> T + Sync,
    {
        let runs = self.seeds.len();
        if grid.is_empty() || runs == 0 {
            return grid.iter().map(|_| Vec::new()).collect();
        }
        // Flatten to one index space so a slow grid point cannot idle
        // the workers assigned to a fast one.
        let flat = Sweep {
            seeds: (0..(grid.len() * runs) as u64).collect(),
            mode: self.mode,
        };
        let mut flat_results: Vec<Option<T>> = flat
            .map(|flat_idx| {
                let g = flat_idx as usize / runs;
                let s = flat_idx as usize % runs;
                job(&grid[g], self.seeds[s])
            })
            .into_iter()
            .map(Some)
            .collect();
        let mut out: Vec<Vec<T>> = Vec::with_capacity(grid.len());
        for g in 0..grid.len() {
            out.push(
                flat_results[g * runs..(g + 1) * runs]
                    .iter_mut()
                    .map(|r| r.take().expect("filled exactly once"))
                    .collect(),
            );
        }
        out
    }

    /// Estimates the **convergence probability**: the fraction of
    /// seeds whose run satisfied a stability condition (rather than
    /// timing out on its budget).
    ///
    /// This is the measurement of the weak/probabilistic stabilization
    /// literature (Devismes et al.): "with probability ≥ p, the system
    /// stabilizes within k steps" is estimated by fanning
    /// `StopWhen::stable_for(q).within(k)` over many seeds. Pair the
    /// returned counts with `mwn_metrics::wilson_interval` for a
    /// confidence interval.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any scenario build produced.
    pub fn convergence<P, M, B>(
        &self,
        scenario: B,
        stop: &StopWhen<P>,
    ) -> Result<Convergence, SimError>
    where
        P: Observable,
        M: Medium,
        B: Fn(u64) -> Scenario<P, M> + Sync,
    {
        let outcomes = self.run(scenario, stop, |report, _| report.is_stable())?;
        Ok(Convergence {
            stabilized: outcomes.iter().filter(|&&ok| ok).count(),
            runs: outcomes.len(),
        })
    }

    /// Builds the scenario for each seed, runs it to `stop`, and
    /// collects `observe(report, &network)` — the one-stop shop for
    /// stabilization-time experiments.
    ///
    /// The factory receives the derived seed and is responsible for
    /// threading it into the scenario (`.seed(seed)`, and into the
    /// deployment when topologies are random).
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any scenario build produced.
    pub fn run<P, M, B, G, T>(
        &self,
        scenario: B,
        stop: &StopWhen<P>,
        observe: G,
    ) -> Result<Vec<T>, SimError>
    where
        P: Observable,
        M: Medium,
        B: Fn(u64) -> Scenario<P, M> + Sync,
        G: Fn(RunReport, &Network<P, M>) -> T + Sync,
        T: Send,
    {
        self.map(|seed| {
            let mut net = scenario(seed).build()?;
            let report = net.run_to(stop);
            Ok(observe(report, &net))
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, StopWhen};
    use mwn_graph::{builders, NodeId};
    use rand::rngs::StdRng;

    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, _node: NodeId, _state: &mut u32, _now: u64, _rng: &mut StdRng) {}
    }
    impl Observable for MaxFlood {
        type Output = u32;
        fn output(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
    }

    #[test]
    fn results_come_back_in_seed_order() {
        let out = Sweep::over(100, 0).map(|seed| seed);
        assert_eq!(out, Sweep::over(100, 0).seeds());
    }

    #[test]
    fn parallel_equals_serial() {
        let heavy = |seed: u64| {
            let mut acc = seed;
            for _ in 0..1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(
            Sweep::over(64, 5).map(heavy),
            Sweep::over(64, 5).serial().map(heavy)
        );
    }

    #[test]
    fn zero_runs_is_empty() {
        let out: Vec<u64> = Sweep::over(0, 1).map(|s| s);
        assert!(out.is_empty());
        assert!(Sweep::over(0, 1).is_empty());
    }

    #[test]
    fn different_bases_derive_different_seeds() {
        assert_ne!(Sweep::over(10, 1).seeds(), Sweep::over(10, 2).seeds());
        let mut dedup = Sweep::over(50, 9).seeds().to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 50, "derived seeds must be distinct");
    }

    #[test]
    fn grid_results_group_by_parameter() {
        let grid = [1u64, 10, 100];
        let out = Sweep::over(8, 3).map_grid(&grid, |&g, seed| g.wrapping_add(seed));
        assert_eq!(out.len(), 3);
        for (g, results) in grid.iter().zip(&out) {
            let expected: Vec<u64> = Sweep::over(8, 3)
                .seeds()
                .iter()
                .map(|s| g.wrapping_add(*s))
                .collect();
            assert_eq!(results, &expected);
        }
    }

    #[test]
    fn scenario_sweep_reports_stabilization() {
        let stop = StopWhen::stable_for(2).within(100);
        let steps = Sweep::over(4, 11)
            .run(
                |seed| {
                    Scenario::new(MaxFlood)
                        .topology(builders::line(6))
                        .seed(seed)
                },
                &stop,
                |report, net| {
                    assert!(net.states().iter().all(|&s| s == 5));
                    report.expect_stable("line flood stabilizes")
                },
            )
            .expect("all scenarios build");
        // The line(6) flood always stabilizes after 5 steps.
        assert_eq!(steps, vec![5, 5, 5, 5]);
    }

    #[test]
    fn convergence_probability_counts_stabilized_runs() {
        // Within 100 steps every seed stabilizes; within 2 steps none
        // can (the line needs 5 information hops).
        let scenario = |seed| {
            Scenario::new(MaxFlood)
                .topology(builders::line(6))
                .seed(seed)
        };
        let sweep = Sweep::over(8, 3);
        let always = sweep
            .convergence(scenario, &StopWhen::stable_for(2).within(100))
            .expect("builds");
        assert_eq!((always.stabilized, always.runs), (8, 8));
        assert_eq!(always.fraction(), 1.0);
        let never = sweep
            .convergence(scenario, &StopWhen::stable_for(2).within(2))
            .expect("builds");
        assert_eq!(never.stabilized, 0);
        assert_eq!(never.fraction(), 0.0);
        assert_eq!(
            Convergence {
                stabilized: 0,
                runs: 0
            }
            .fraction(),
            1.0
        );
    }

    #[test]
    fn scenario_build_errors_surface() {
        let stop: StopWhen<MaxFlood> = StopWhen::max_steps(1);
        let err = Sweep::over(2, 1)
            .run(
                |_seed| Scenario::new(MaxFlood),
                &stop,
                |_report, _net: &Network<MaxFlood, mwn_radio::PerfectMedium>| (),
            )
            .unwrap_err();
        assert_eq!(err, SimError::MissingTopology);
    }
}
