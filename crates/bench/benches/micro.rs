//! Criterion micro-benchmarks of the core operations: the density
//! metric, the centralized election, one protocol round over each
//! medium, N1 renaming and the max-min baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mwn_baselines::max_min_clustering;
use mwn_cluster::{
    density_of, oracle, ClusterConfig, DagProtocol, DagVariant, DensityCluster, HeadRule,
    NameSpace, OracleConfig,
};
use mwn_graph::builders;
use mwn_radio::{BernoulliLoss, Medium, Occupancy, OccupancyView, SlottedCsma};
use mwn_sim::{Scenario, StopWhen};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn poisson_1000() -> mwn_graph::Topology {
    let mut rng = StdRng::seed_from_u64(42);
    builders::poisson(1000.0, 0.08, &mut rng)
}

fn bench_density(c: &mut Criterion) {
    let topo = poisson_1000();
    c.bench_function("density/definition1_all_nodes_n1000", |b| {
        b.iter(|| {
            for p in topo.nodes() {
                black_box(density_of(&topo, p));
            }
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let topo = poisson_1000();
    c.bench_function("oracle/basic_n1000", |b| {
        b.iter(|| black_box(oracle(&topo, &OracleConfig::default())))
    });
    c.bench_function("oracle/fusion_n1000", |b| {
        b.iter(|| {
            black_box(oracle(
                &topo,
                &OracleConfig {
                    rule: HeadRule::Fusion,
                    ..OracleConfig::default()
                },
            ))
        })
    });
}

fn bench_protocol_round(c: &mut Criterion) {
    let topo = poisson_1000();
    c.bench_function("protocol/round_perfect_n1000", |b| {
        b.iter_batched(
            || {
                Scenario::new(DensityCluster::new(ClusterConfig::default()))
                    .topology(topo.clone())
                    .seed(1)
                    .build()
                    .expect("valid scenario")
            },
            |mut net| {
                net.step();
                black_box(net.now())
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("protocol/round_csma_n1000", |b| {
        b.iter_batched(
            || {
                Scenario::new(DensityCluster::new(ClusterConfig {
                    cache_ttl: 12,
                    ..ClusterConfig::default()
                }))
                .medium(SlottedCsma::new(16))
                .topology(topo.clone())
                .seed(1)
                .build()
                .expect("valid scenario")
            },
            |mut net| {
                net.step();
                black_box(net.now())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_medium(c: &mut Criterion) {
    let topo = poisson_1000();
    let senders: Vec<mwn_graph::NodeId> = topo.nodes().collect();
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("medium/csma_deliver_n1000", |b| {
        let mut medium = SlottedCsma::new(16);
        b.iter(|| black_box(medium.deliver(&topo, &senders, &mut rng).delivered))
    });
    c.bench_function("medium/bernoulli_deliver_n1000", |b| {
        let mut medium = BernoulliLoss::new(0.8);
        b.iter(|| black_box(medium.deliver(&topo, &senders, &mut rng).delivered))
    });
}

fn bench_occupancy(c: &mut Criterion) {
    // The gated-contention bookkeeping: the engine pays one
    // occupy/release per churn event (O(degree) count updates) so the
    // quiet path never needs the O(n + m) recount the property suite
    // uses as ground truth. The gap between the two is the cost the
    // incremental summary saves on every retirement and wake-up.
    let topo = poisson_1000();
    let n = topo.len();
    let nodes: Vec<mwn_graph::NodeId> = topo.nodes().collect();
    let mut occ = Occupancy::new(n);
    for &q in nodes.iter().step_by(2) {
        occ.occupy(q, &topo);
    }
    c.bench_function("occupancy/incremental_toggle_n1000", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = nodes[i % n];
            i += 1;
            if occ.is_occupied(q) {
                occ.release(q, &topo);
            } else {
                occ.occupy(q, &topo);
            }
            black_box(occ.total())
        })
    });
    c.bench_function("occupancy/recount_n1000", |b| {
        b.iter(|| black_box(occ.recount(&topo)))
    });
}

fn bench_dag(c: &mut Criterion) {
    let topo = poisson_1000();
    let gamma = NameSpace::delta_squared(topo.max_degree());
    c.bench_function("dag/n1_to_stable_n1000", |b| {
        b.iter_batched(
            || {
                Scenario::new(DagProtocol::new(gamma, DagVariant::Randomized, 4))
                    .topology(topo.clone())
                    .seed(3)
                    .build()
                    .expect("valid scenario")
            },
            |mut net| black_box(net.run_to(&StopWhen::stable_for(3).within(200)).stabilized),
            BatchSize::SmallInput,
        )
    });
}

fn bench_baseline(c: &mut Criterion) {
    let topo = poisson_1000();
    c.bench_function("baseline/max_min_d2_n1000", |b| {
        b.iter(|| black_box(max_min_clustering(&topo, 2)))
    });
}

fn bench_scaling(c: &mut Criterion) {
    // Oracle cost vs network size at fixed expected degree — near-linear
    // scaling is what makes the 1000-run experiment averages practical.
    let mut group = c.benchmark_group("scaling/oracle");
    for n in [500usize, 1000, 2000, 4000] {
        let radius = (8.0 / (n as f64 * std::f64::consts::PI)).sqrt();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let topo = builders::uniform(n, radius, &mut rng);
        group.throughput(criterion::Throughput::Elements(n as u64));
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| black_box(oracle(&topo, &OracleConfig::default())))
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    bench_density,
    bench_oracle,
    bench_protocol_round,
    bench_medium,
    bench_occupancy,
    bench_dag,
    bench_baseline,
    bench_scaling
);
criterion_main!(micro);
