//! One Criterion bench per paper artifact: each benchmark runs the
//! corresponding experiment at quick scale, so `cargo bench` exercises
//! the full regeneration path for every table and figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mwn_bench::{
    ablation, energy_exp, figures, hierarchy_exp, mobility, routing_exp, stabilization, table1,
    table2, table3, table4, table5, ExperimentScale,
};

fn quick() -> ExperimentScale {
    ExperimentScale {
        runs: 3,
        lambda: 250.0,
        grid_side: 12,
        seed: 99,
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table1_example_densities", |b| {
        b.iter(|| black_box(table1::run()))
    });
    group.bench_function("table2_info_schedule", |b| {
        b.iter(|| black_box(table2::run(quick())))
    });
    group.bench_function("table3_dag_steps", |b| {
        b.iter(|| black_box(table3::run(quick())))
    });
    group.bench_function("table4_random_geometry", |b| {
        b.iter(|| black_box(table4::run(quick())))
    });
    group.bench_function("table5_adversarial_grid", |b| {
        b.iter(|| black_box(table5::run(quick())))
    });
    group.bench_function("figures_2_and_3", |b| {
        b.iter(|| {
            let result = figures::run(quick());
            black_box((
                figures::svg(&result, false).len(),
                figures::svg(&result, true).len(),
            ))
        })
    });
    group.finish();
}

fn bench_studies(c: &mut Criterion) {
    let mut group = c.benchmark_group("studies");
    group.sample_size(10);
    group.bench_function("mobility_persistence", |b| {
        b.iter(|| black_box(mobility::run(quick())))
    });
    group.bench_function("stabilization_scaling", |b| {
        b.iter(|| black_box(stabilization::run(quick())))
    });
    group.bench_function("ablation_metrics", |b| {
        b.iter(|| black_box(ablation::run_metrics(quick())))
    });
    group.bench_function("ablation_rules", |b| {
        b.iter(|| black_box(ablation::run_rules(quick())))
    });
    group.bench_function("extension_hierarchy", |b| {
        b.iter(|| black_box(hierarchy_exp::run(quick())))
    });
    group.bench_function("extension_energy", |b| {
        b.iter(|| black_box(energy_exp::run(quick())))
    });
    group.bench_function("routing_stretch", |b| {
        b.iter(|| black_box(routing_exp::run(quick())))
    });
    group.finish();
}

criterion_group!(experiments, bench_tables, bench_studies);
criterion_main!(experiments);
