//! Breadth-first traversal utilities: hop distances, components,
//! eccentricities and diameters.
//!
//! The paper's evaluation metrics are hop-based: the cluster-head
//! eccentricity `e(H(u)/C) = max_{v ∈ C(u)} d(H(u), v)` "in number of
//! hops" and the clusterization tree length. These helpers provide the
//! `d(·,·)` primitive, both over the whole graph and restricted to a
//! node subset (a cluster).

use std::collections::VecDeque;

use crate::{NodeId, Topology};

/// Hop distances from `src` to every node; `None` for unreachable nodes.
///
/// # Examples
///
/// ```
/// use mwn_graph::{builders, traversal, NodeId};
///
/// let line = builders::line(4);
/// let d = traversal::bfs_distances(&line, NodeId::new(0));
/// assert_eq!(d[3], Some(3));
/// ```
pub fn bfs_distances(topo: &Topology, src: NodeId) -> Vec<Option<u32>> {
    bfs_distances_filtered(topo, src, |_| true)
}

/// Hop distances from `src` restricted to nodes satisfying `allowed`
/// (paths may only pass through allowed nodes; `src` itself is always
/// explored). Used to measure distances *inside* a cluster's induced
/// subgraph.
pub fn bfs_distances_filtered<F>(topo: &Topology, src: NodeId, allowed: F) -> Vec<Option<u32>>
where
    F: Fn(NodeId) -> bool,
{
    let mut dist = vec![None; topo.len()];
    dist[src.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in topo.neighbors(u) {
            if dist[v.index()].is_none() && allowed(v) {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest path from `src` to `dst` through nodes satisfying
/// `allowed` (`src` and `dst` are always allowed), inclusive of both
/// endpoints. `None` when unreachable.
///
/// # Examples
///
/// ```
/// use mwn_graph::{builders, traversal, NodeId};
///
/// let ring = builders::ring(6);
/// let path = traversal::bfs_path_filtered(
///     &ring,
///     NodeId::new(0),
///     NodeId::new(3),
///     |_| true,
/// ).unwrap();
/// assert_eq!(path.len(), 4); // 3 hops either way around
/// ```
pub fn bfs_path_filtered<F>(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    allowed: F,
) -> Option<Vec<NodeId>>
where
    F: Fn(NodeId) -> bool,
{
    if src == dst {
        return Some(vec![src]);
    }
    let mut pred: Vec<Option<NodeId>> = vec![None; topo.len()];
    let mut seen = vec![false; topo.len()];
    seen[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    'search: while let Some(u) = queue.pop_front() {
        for &v in topo.neighbors(u) {
            if !seen[v.index()] && (v == dst || allowed(v)) {
                seen[v.index()] = true;
                pred[v.index()] = Some(u);
                if v == dst {
                    break 'search;
                }
                queue.push_back(v);
            }
        }
    }
    if !seen[dst.index()] {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = pred[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Eccentricity of `src`: the maximum hop distance to any reachable
/// node. Returns 0 for an isolated node.
pub fn eccentricity(topo: &Topology, src: NodeId) -> u32 {
    bfs_distances(topo, src)
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
}

/// Connected components; each component is a sorted list of nodes, and
/// components are ordered by their smallest member.
pub fn connected_components(topo: &Topology) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; topo.len()];
    let mut components = Vec::new();
    for start in topo.nodes() {
        if seen[start.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for &v in topo.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// `true` when the graph has at most one connected component.
pub fn is_connected(topo: &Topology) -> bool {
    connected_components(topo).len() <= 1
}

/// The diameter of the graph in hops: the largest finite pairwise
/// distance. Returns `None` for an empty graph and ignores pairs in
/// different components (i.e. the diameter of the largest eccentricity
/// over each component).
///
/// Cost is `O(n · m)` — one BFS per node — which is fine at the paper's
/// scales (≈1000 nodes).
pub fn diameter(topo: &Topology) -> Option<u32> {
    if topo.is_empty() {
        return None;
    }
    Some(
        topo.nodes()
            .map(|p| eccentricity(topo, p))
            .max()
            .unwrap_or(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn distances_on_a_line() {
        let topo = builders::line(5);
        let d = bfs_distances(&topo, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn unreachable_nodes_have_no_distance() {
        let topo = Topology::from_edges(3, &[(0, 1)]).unwrap();
        let d = bfs_distances(&topo, NodeId::new(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn filtered_bfs_respects_the_filter() {
        // 0 - 1 - 2 and 0 - 3 - 2: blocking node 1 forces the long way.
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]).unwrap();
        let d = bfs_distances_filtered(&topo, NodeId::new(0), |v| v != NodeId::new(1));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[1], None);
    }

    #[test]
    fn eccentricity_of_ring() {
        let topo = builders::ring(6);
        for p in topo.nodes() {
            assert_eq!(eccentricity(&topo, p), 3);
        }
    }

    #[test]
    fn components_are_found() {
        let topo = Topology::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let comps = connected_components(&topo);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(comps[1], vec![NodeId::new(2), NodeId::new(3)]);
        assert_eq!(comps[2], vec![NodeId::new(4)]);
        assert!(!is_connected(&topo));
        assert!(is_connected(&builders::line(4)));
    }

    #[test]
    fn diameter_of_shapes() {
        assert_eq!(diameter(&builders::line(5)), Some(4));
        assert_eq!(diameter(&builders::ring(8)), Some(4));
        assert_eq!(diameter(&builders::complete(5)), Some(1));
        assert_eq!(diameter(&Topology::empty(0)), None);
        assert_eq!(diameter(&Topology::empty(3)), Some(0));
    }
}
