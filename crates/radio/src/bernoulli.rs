use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{Delivery, Medium};

/// The memoryless lossy medium of the paper's proofs: each
/// (sender, receiver) frame copy is delivered independently with
/// probability exactly `tau`.
///
/// Section 4's hypothesis is that "the probability of a frame
/// transmission without collision is at least τ", with independence
/// across frames (a memoryless Markov model). This medium realizes the
/// bound with equality, which makes it the *worst* medium consistent
/// with the hypothesis — convergence observed here validates the
/// self-stabilization argument under maximal allowed loss.
///
/// # Examples
///
/// ```
/// use mwn_radio::BernoulliLoss;
///
/// let m = BernoulliLoss::new(0.8);
/// assert_eq!(m.tau(), 0.8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BernoulliLoss {
    tau: f64,
}

impl BernoulliLoss {
    /// Creates the medium with per-frame success probability `tau`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tau <= 1` (the paper requires τ > 0; with
    /// τ = 0 nothing ever converges).
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0 && tau <= 1.0, "τ must be in (0, 1], got {tau}");
        BernoulliLoss { tau }
    }

    /// The configured per-frame success probability.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl Medium for BernoulliLoss {
    fn deliver_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        for &s in senders {
            self.deliver_from(topo, s, rng, out);
        }
    }

    fn deliver_from(
        &mut self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        for &r in topo.neighbors(sender) {
            out.attempted += 1;
            if rng.random_bool(self.tau) {
                out.record(r, sender);
            }
        }
    }

    fn independent_fates(&self) -> bool {
        true
    }

    fn proxyable(&self) -> bool {
        true
    }

    fn proxy_fates(
        &self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut StdRng,
        heard: &mut Vec<NodeId>,
    ) -> usize {
        // Same draws in the same neighbor order as deliver_from, so the
        // per-(slot, sender) stream reproduces identical fates.
        for &r in topo.neighbors(sender) {
            if rng.random_bool(self.tau) {
                heard.push(r);
            }
        }
        topo.degree(sender)
    }

    fn name(&self) -> &'static str {
        "bernoulli-loss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_tau;
    use mwn_graph::builders;
    use rand::SeedableRng;

    #[test]
    fn tau_one_behaves_like_perfect() {
        let topo = builders::complete(6);
        let senders: Vec<NodeId> = topo.nodes().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let d = BernoulliLoss::new(1.0).deliver(&topo, &senders, &mut rng);
        assert_eq!(d.attempted, d.delivered);
    }

    #[test]
    fn empirical_rate_matches_tau() {
        let topo = builders::complete(10);
        let mut rng = StdRng::seed_from_u64(2);
        let tau = measure_tau(&mut BernoulliLoss::new(0.35), &topo, 300, &mut rng);
        assert!((tau - 0.35).abs() < 0.03, "measured {tau}");
    }

    #[test]
    fn losses_are_per_receiver() {
        // One broadcast to many receivers must be able to reach only a
        // strict subset (independent per-copy losses).
        let topo = builders::star(40);
        let mut rng = StdRng::seed_from_u64(3);
        let mut medium = BernoulliLoss::new(0.5);
        let mut saw_partial = false;
        for _ in 0..50 {
            let d = medium.deliver(&topo, &[NodeId::new(0)], &mut rng);
            let reached = d.delivered;
            if reached > 0 && reached < 39 {
                saw_partial = true;
                break;
            }
        }
        assert!(saw_partial, "expected partial deliveries with τ = 0.5");
    }

    #[test]
    #[should_panic(expected = "τ must be in (0, 1]")]
    fn zero_tau_is_rejected() {
        let _ = BernoulliLoss::new(0.0);
    }
}
