//! Regenerates the paper's Table 3 (steps to build the DAG).

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    eprintln!(
        "table 3: {} runs per cell (use --full for the paper's 1000)",
        scale.runs
    );
    let result = mwn_bench::table3::run(scale);
    println!("{}", mwn_bench::table3::render(&result));
}
