//! Pedestrian crowd: the paper's mobility experiment in miniature.
//! A crowd drifts at walking speed; every 2 seconds we re-cluster and
//! measure how many cluster-heads kept their role — once with the
//! Section 4.3 stability rules (incumbency + fusion), once without.
//!
//! ```sh
//! cargo run --example pedestrian_crowd
//! ```

use rand::SeedableRng;
use selfstab::prelude::*;

fn main() {
    let seconds = 120.0;
    let tick = 2.0;
    let vmax = 1.6; // m/s — the paper's pedestrian bound

    for improved in [true, false] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let topo = builders::poisson(500.0, 0.1, &mut rng);
        let n = topo.len();
        let model = RandomWaypoint::new(n, 0.0..=meters_per_second(vmax), 0.0);
        let mut scenario = MobileScenario::new(topo, model, 77);

        let cluster = |topo: &Topology, prev: Option<&Clustering>| -> Clustering {
            if improved {
                let prev_heads =
                    prev.map(|c| topo.nodes().map(|p| c.is_head(p)).collect::<Vec<bool>>());
                oracle(
                    topo,
                    &OracleConfig {
                        order: OrderKind::Stable,
                        rule: HeadRule::Fusion,
                        prev_heads,
                        ..OracleConfig::default()
                    },
                )
            } else {
                oracle(topo, &OracleConfig::default())
            }
        };

        let mut prev = cluster(scenario.topology(), None);
        let mut persistence = RunningStats::new();
        let mut heads = RunningStats::new();
        let ticks = (seconds / tick) as usize;
        for _ in 0..ticks {
            scenario.advance(tick);
            let next = cluster(scenario.topology(), Some(&prev));
            persistence.push(next.head_persistence_from(&prev) * 100.0);
            heads.push(next.head_count() as f64);
            prev = next;
        }
        println!(
            "{:<22} heads kept per 2 s: {:5.1}%  (mean clusters: {:.1})",
            if improved {
                "with 4.3 rules:"
            } else {
                "without 4.3 rules:"
            },
            persistence.mean(),
            heads.mean()
        );
    }
    println!("\npaper (15 min, 0-1.6 m/s): 82% with the rules vs 78% without");
}
