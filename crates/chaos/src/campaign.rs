//! Seed-deterministic adversary campaigns.

use mwn_graph::{NodeId, Topology};
use mwn_sim::{Fault, FaultPlan, Lie, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One class of adversarial behavior a campaign may draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Arbitrary state corruption of one node.
    Corrupt,
    /// Arbitrary state corruption of a random fraction of nodes.
    CorruptFraction,
    /// A node's radio goes permanently dark.
    Isolate,
    /// Crash with stale-state resurrection ([`Fault::CrashRecover`]).
    CrashRecover,
    /// Forged/replayed beacons for a window
    /// ([`Fault::ByzantineBeacon`]).
    Byzantine,
    /// Bisection with later healing ([`Fault::PartitionHeal`]).
    PartitionHeal,
    /// Regional medium blackout with later restoration
    /// ([`Fault::Jam`]).
    Jam,
}

impl FaultKind {
    /// Every shipped kind — the default draw set of a campaign.
    pub fn all() -> Vec<FaultKind> {
        vec![
            FaultKind::Corrupt,
            FaultKind::CorruptFraction,
            FaultKind::Isolate,
            FaultKind::CrashRecover,
            FaultKind::Byzantine,
            FaultKind::PartitionHeal,
            FaultKind::Jam,
        ]
    }

    /// The healing kinds only — every fault's damage is later undone,
    /// so the pre-campaign fixpoint is recoverable (what the certifier
    /// smoke asserts against a known component structure).
    pub fn healing() -> Vec<FaultKind> {
        vec![
            FaultKind::Corrupt,
            FaultKind::CorruptFraction,
            FaultKind::CrashRecover,
            FaultKind::Byzantine,
            FaultKind::PartitionHeal,
            FaultKind::Jam,
        ]
    }
}

/// A compact, replayable description of a randomized adversary
/// schedule: the same spec expands to the same `(step, fault)` script
/// on any driver, for any run — victims, windows and kinds are all
/// drawn from `StdRng::seed_from_u64(seed)` and nothing else.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Seed of the campaign's private draw stream.
    pub seed: u64,
    /// Number of faults to inject.
    pub injections: usize,
    /// Logical steps between consecutive injection slots (the i-th
    /// fault is scheduled at `(i + 1) · spacing`; the certifier lets
    /// the network restabilize between slots regardless).
    pub spacing: u64,
    /// Upper bound on drawn windows (darkness, lie, partition, jam
    /// durations); actual windows are `1..=max_window`.
    pub max_window: u64,
    /// The fault classes this adversary may draw from.
    pub kinds: Vec<FaultKind>,
}

impl CampaignSpec {
    /// A small healing-faults campaign — the certifier smoke shape.
    pub fn smoke(seed: u64) -> Self {
        CampaignSpec {
            seed,
            injections: 6,
            spacing: 10,
            max_window: 4,
            kinds: FaultKind::healing(),
        }
    }

    /// Expands the spec into its deterministic `(step, fault)` script
    /// for `topo` (the deployment the campaign will run on; victims
    /// and regions are drawn against its node count and positions).
    pub fn schedule(&self, topo: &Topology) -> Vec<(u64, Fault)> {
        assert!(
            !self.kinds.is_empty(),
            "a campaign draws from at least one kind"
        );
        let n = topo.len() as u32;
        assert!(n > 0, "a campaign needs a populated deployment");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.injections)
            .map(|i| {
                let step = (i as u64 + 1) * self.spacing;
                let kind = self.kinds[rng.random_range(0..self.kinds.len())];
                let victim = NodeId::new(rng.random_range(0..n));
                let window = 1 + rng.random_range(0..self.max_window.max(1));
                let fault = match kind {
                    FaultKind::Corrupt => Fault::CorruptNode(victim),
                    FaultKind::CorruptFraction => {
                        Fault::CorruptFraction(0.1 + 0.4 * rng.random_range(0.0..1.0))
                    }
                    FaultKind::Isolate => Fault::Isolate(victim),
                    FaultKind::CrashRecover => Fault::CrashRecover {
                        node: victim,
                        dark_for: window,
                    },
                    FaultKind::Byzantine => Fault::ByzantineBeacon {
                        node: victim,
                        lie: if rng.random_bool(0.5) {
                            Lie::Forged
                        } else {
                            Lie::Replayed
                        },
                        until: step + window,
                    },
                    FaultKind::PartitionHeal => Fault::PartitionHeal {
                        cut: draw_cut(topo, &mut rng),
                        heal_at: step + window,
                    },
                    FaultKind::Jam => Fault::Jam {
                        region: draw_region(topo, victim, &mut rng),
                        until: step + window,
                    },
                };
                (step, fault)
            })
            .collect()
    }

    /// The schedule as an installable [`FaultPlan`] (for
    /// `Scenario::faults` or `FaultPlan::run`).
    pub fn plan(&self, topo: &Topology) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for (step, fault) in self.schedule(topo) {
            plan.at(step, fault);
        }
        plan
    }
}

/// Draws one side of a bisection: a half-plane through a random pivot
/// node on positioned deployments, an id-prefix cut otherwise.
fn draw_cut(topo: &Topology, rng: &mut StdRng) -> Vec<NodeId> {
    let n = topo.len() as u32;
    if let Some(positions) = topo.positions() {
        let pivot = positions[rng.random_range(0..n) as usize];
        let by_x = rng.random_bool(0.5);
        topo.nodes()
            .filter(|p| {
                let pos = positions[p.index()];
                if by_x {
                    pos.x <= pivot.x
                } else {
                    pos.y <= pivot.y
                }
            })
            .collect()
    } else {
        let split = 1 + rng.random_range(0..n.max(2) - 1);
        topo.nodes().filter(|p| p.value() < split).collect()
    }
}

/// Draws a jam region: a disk around a victim on positioned
/// deployments, the victim plus its 1-neighborhood otherwise.
fn draw_region(topo: &Topology, victim: NodeId, rng: &mut StdRng) -> Region {
    if let Some(positions) = topo.positions() {
        let center = positions[victim.index()];
        Region::Disk {
            x: center.x,
            y: center.y,
            r: 0.15 + 0.15 * rng.random_range(0.0..1.0),
        }
    } else {
        let mut nodes = vec![victim];
        nodes.extend_from_slice(topo.neighbors(victim));
        Region::Nodes(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;

    #[test]
    fn schedules_are_seed_deterministic_and_replayable() {
        let mut rng = StdRng::seed_from_u64(11);
        let topo = builders::uniform(30, 0.25, &mut rng);
        let spec = CampaignSpec {
            seed: 42,
            injections: 12,
            spacing: 7,
            max_window: 5,
            kinds: FaultKind::all(),
        };
        let a = spec.schedule(&topo);
        let b = spec.schedule(&topo);
        assert_eq!(a.len(), 12);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "same seed, same campaign"
        );
        let different = CampaignSpec { seed: 43, ..spec }.schedule(&topo);
        assert_ne!(
            format!("{a:?}"),
            format!("{different:?}"),
            "different seed, different campaign"
        );
    }

    #[test]
    fn schedules_validate_against_their_deployment() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = builders::uniform(20, 0.3, &mut rng);
        let spec = CampaignSpec {
            seed: 9,
            injections: 20,
            spacing: 5,
            max_window: 6,
            kinds: FaultKind::all(),
        };
        spec.plan(&topo)
            .validate_for(&topo)
            .expect("generated campaigns are always well-formed");
    }

    #[test]
    fn unpositioned_deployments_draw_node_regions_and_prefix_cuts() {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = builders::gnp(12, 0.4, &mut rng);
        let spec = CampaignSpec {
            seed: 1,
            injections: 30,
            spacing: 4,
            max_window: 3,
            kinds: vec![FaultKind::PartitionHeal, FaultKind::Jam],
        };
        for (_, fault) in spec.schedule(&topo) {
            match fault {
                Fault::Jam { region, .. } => {
                    assert!(matches!(region, Region::Nodes(_)));
                }
                Fault::PartitionHeal { cut, .. } => {
                    assert!(!cut.is_empty() && cut.len() < topo.len());
                }
                other => panic!("unexpected kind: {other:?}"),
            }
        }
        spec.plan(&topo)
            .validate_for(&topo)
            .expect("well-formed without positions");
    }
}
