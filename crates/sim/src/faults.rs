//! Scheduled fault injection: declarative "at step k, break X" plans
//! for reproducible robustness experiments.
//!
//! Self-stabilization's fault model is the strongest possible — the
//! adversary may place the system in *any* configuration — but real
//! experiments need orchestrated, reproducible sequences of faults. A
//! [`FaultPlan`] is a script of [`Fault`]s executed while a driver
//! runs.
//!
//! Beyond the benign verbs (corrupt, isolate, set-topology), the model
//! speaks the classic adversary shapes:
//!
//! * [`Fault::CrashRecover`] — a node goes dark (all links severed),
//!   then resurrects with its **stale pre-crash state**: the transient
//!   fault self-stabilization is defined against.
//! * [`Fault::ByzantineBeacon`] — a node broadcasts forged or replayed
//!   beacons for a window while its true state stays intact: the
//!   poison propagates exactly as far as the epoch gating lets it.
//! * [`Fault::PartitionHeal`] — the topology is bisected along a cut,
//!   later restored: both fragments must converge separately and then
//!   merge.
//! * [`Fault::Jam`] — a regional medium blackout (every link touching
//!   the region severed), lifted at a deadline.
//!
//! The timed second phases (resurrection, healing, lie expiry) are
//! scheduled by the driver as [`Followup`]s that fire at logical-step
//! boundaries **before** scripted faults, which fire before sends —
//! the same `fault ≤ send` ordering `tests/fault_ordering.rs` pins.
//!
//! Malformed plans (out-of-range victims, node-count-changing
//! topologies, position-free deployments with disk regions) are
//! rejected **before the run starts** by [`FaultPlan::validate_for`],
//! which the [`crate::Scenario`] builders and [`FaultPlan::run`] call —
//! a bad campaign fails the run with a typed [`SimError`], not the
//! process.

use mwn_graph::{NodeId, Topology};
use mwn_radio::Medium;

use crate::error::SimError;
use crate::protocol::Protocol;
use crate::{Corruptible, Network};

/// What a Byzantine node puts on the air instead of its true beacon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lie {
    /// A beacon forged from an adversarially corrupted clone of the
    /// node's state (drawn on the dedicated corruption stream); the
    /// true state is untouched.
    Forged,
    /// The node's beacon frozen at fault time and retransmitted
    /// verbatim for the whole window — a stale-retransmission replay
    /// that masks every genuine change until the window closes.
    Replayed,
}

/// The victims of a [`Fault::Jam`].
#[derive(Clone, Debug)]
pub enum Region {
    /// An explicit node set.
    Nodes(Vec<NodeId>),
    /// Every node within distance `r` of `(x, y)` — requires a
    /// positioned topology (checked by [`FaultPlan::validate_for`]).
    Disk {
        /// Center x coordinate.
        x: f64,
        /// Center y coordinate.
        y: f64,
        /// Radius.
        r: f64,
    },
}

impl Region {
    /// Resolves the region to its member nodes on `topo`.
    pub fn members(&self, topo: &Topology) -> Vec<NodeId> {
        match self {
            Region::Nodes(nodes) => nodes.clone(),
            Region::Disk { x, y, r } => {
                let positions = topo
                    .positions()
                    .expect("disk regions require positioned topologies (validate_for)");
                topo.nodes()
                    .filter(|p| {
                        let d = positions[p.index()];
                        let (dx, dy) = (d.x - x, d.y - y);
                        dx * dx + dy * dy <= r * r
                    })
                    .collect()
            }
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Corrupt the state of one node arbitrarily.
    CorruptNode(NodeId),
    /// Corrupt every node (restart the self-stabilization clock).
    CorruptAll,
    /// Corrupt approximately this fraction of nodes.
    CorruptFraction(f64),
    /// Sever all links of a node (its radio goes dark).
    Isolate(NodeId),
    /// Replace the topology (e.g. restore links, or apply a mobility
    /// snapshot). Must keep the node count.
    SetTopology(Topology),
    /// The node crashes (all links severed) and resurrects `dark_for`
    /// steps later with its **stale pre-crash state** and its
    /// still-present pre-crash links restored.
    CrashRecover {
        /// The crashing node.
        node: NodeId,
        /// Logical steps of darkness (clamped to at least 1).
        dark_for: u64,
    },
    /// The node broadcasts a [`Lie`] instead of its true beacon until
    /// logical step `until` (exclusive window end; clamped to fire at
    /// least one step after injection). Its true state is intact the
    /// whole time.
    ByzantineBeacon {
        /// The lying node.
        node: NodeId,
        /// What it puts on the air.
        lie: Lie,
        /// Logical step at which the lie expires.
        until: u64,
    },
    /// Sever every edge with exactly one endpoint in `cut` (a
    /// bisection), then restore the severed edges at step `heal_at`.
    PartitionHeal {
        /// One side of the bisection.
        cut: Vec<NodeId>,
        /// Logical step at which the severed edges are restored.
        heal_at: u64,
    },
    /// Regional medium blackout: sever every edge touching the region,
    /// restore the severed edges at step `until`.
    Jam {
        /// The jammed nodes.
        region: Region,
        /// Logical step at which the severed edges are restored.
        until: u64,
    },
}

impl Fault {
    /// Stable snake-case class label, for per-fault-class statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Fault::CorruptNode(_) => "corrupt-node",
            Fault::CorruptAll => "corrupt-all",
            Fault::CorruptFraction(_) => "corrupt-fraction",
            Fault::Isolate(_) => "isolate",
            Fault::SetTopology(_) => "set-topology",
            Fault::CrashRecover { .. } => "crash-recover",
            Fault::ByzantineBeacon { .. } => "byzantine-beacon",
            Fault::PartitionHeal { .. } => "partition-heal",
            Fault::Jam { .. } => "jam",
        }
    }

    /// The logical step by which this fault's scripted after-effects
    /// (resurrection, healing, lie expiry) have fired, given that the
    /// fault itself fired at step `fired_at`. Immediate faults settle
    /// at `fired_at`.
    pub fn settles_by(&self, fired_at: u64) -> u64 {
        match self {
            Fault::CrashRecover { dark_for, .. } => fired_at + (*dark_for).max(1),
            Fault::ByzantineBeacon { until, .. } => (*until).max(fired_at + 1),
            Fault::PartitionHeal { heal_at, .. } => (*heal_at).max(fired_at + 1),
            Fault::Jam { until, .. } => (*until).max(fired_at + 1),
            _ => fired_at,
        }
    }
}

/// A timed second phase of a fault, scheduled by the driver that fired
/// it and executed at a later logical-step boundary — before that
/// boundary's scripted faults, which fire before its sends.
pub(crate) enum Followup<P: Protocol> {
    /// End of a [`Fault::CrashRecover`] darkness: restore the stale
    /// pre-crash state and re-add the recorded links that are still
    /// absent.
    Resurrect {
        node: NodeId,
        state: P::State,
        links: Vec<NodeId>,
    },
    /// End of a [`Fault::PartitionHeal`] / [`Fault::Jam`]: re-add the
    /// recorded severed edges that are still absent.
    RestoreEdges { edges: Vec<(NodeId, NodeId)> },
    /// End of a [`Fault::ByzantineBeacon`] window: drop the lie and
    /// wake the node so the truth re-propagates.
    ClearLie { node: NodeId },
}

/// A reproducible script of faults, each fired *before* the given step
/// executes.
///
/// # Examples
///
/// ```
/// use mwn_graph::{builders, NodeId};
/// use mwn_radio::PerfectMedium;
/// use mwn_sim::{Fault, FaultPlan, Network, Protocol};
/// use rand::rngs::StdRng;
///
/// # struct Noop;
/// # impl Protocol for Noop {
/// #     type State = u32; type Beacon = u32;
/// #     fn init(&self, n: NodeId, _: &mut StdRng) -> u32 { n.value() }
/// #     fn beacon(&self, _: NodeId, s: &u32) -> u32 { *s }
/// #     fn receive(&self, _: NodeId, s: &mut u32, _: NodeId, b: &u32, _: u64) { *s = (*s).max(*b); }
/// #     fn update(&self, n: NodeId, s: &mut u32, _: u64, _: &mut StdRng) { *s = (*s).max(n.value()); }
/// # }
/// # impl mwn_sim::Corruptible for Noop {
/// #     fn corrupt(&self, _: NodeId, s: &mut u32, _: &mut StdRng) { *s = 0; }
/// # }
/// let mut plan = FaultPlan::new();
/// plan.at(5, Fault::CorruptAll).at(10, Fault::Isolate(NodeId::new(0)));
/// let mut net = Network::new(Noop, PerfectMedium, builders::line(4), 1);
/// plan.run(&mut net, 20).expect("valid plan");
/// assert_eq!(net.now(), 20);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(u64, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `fault` to fire right before step `step` executes.
    /// Multiple faults may share a step; they fire in insertion order.
    ///
    /// Insertion is O(1): the script is built unsorted and sorted once
    /// (stably, so same-step insertion order survives) when the plan
    /// is installed into a driver or run.
    pub fn at(&mut self, step: u64, fault: Fault) -> &mut Self {
        self.events.push((step, fault));
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Consumes the plan into its sorted `(step, fault)` script — the
    /// form [`crate::Scenario`] installs into the driver. The sort is
    /// stable: faults sharing a step keep their insertion order.
    pub(crate) fn into_events(self) -> Vec<(u64, Fault)> {
        let mut events = self.events;
        events.sort_by_key(|(step, _)| *step);
        events
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every scheduled fault against the deployment it will run
    /// on, so a malformed campaign fails at build time with a typed
    /// error instead of panicking mid-run.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeCountMismatch`] for a [`Fault::SetTopology`]
    /// that changes the node count; [`SimError::InvalidConfig`] for
    /// out-of-range victims or a [`Region::Disk`] over a topology
    /// without positions.
    pub fn validate_for(&self, topo: &Topology) -> Result<(), SimError> {
        let n = topo.len();
        let check_node = |p: NodeId, role: &str| {
            if p.index() >= n {
                return Err(SimError::InvalidConfig(format!(
                    "fault plan names {role} node {p} but the deployment has {n} nodes"
                )));
            }
            Ok(())
        };
        for (_, fault) in &self.events {
            match fault {
                Fault::CorruptNode(p) => check_node(*p, "corruption victim")?,
                Fault::Isolate(p) => check_node(*p, "isolation victim")?,
                Fault::CrashRecover { node, .. } => check_node(*node, "crash victim")?,
                Fault::ByzantineBeacon { node, .. } => check_node(*node, "Byzantine")?,
                Fault::SetTopology(t) => {
                    if t.len() != n {
                        return Err(SimError::NodeCountMismatch {
                            expected: n,
                            got: t.len(),
                        });
                    }
                }
                Fault::PartitionHeal { cut, .. } => {
                    for p in cut {
                        check_node(*p, "partition-cut")?;
                    }
                }
                Fault::Jam { region, .. } => match region {
                    Region::Nodes(nodes) => {
                        for p in nodes {
                            check_node(*p, "jam-region")?;
                        }
                    }
                    Region::Disk { .. } => {
                        if topo.positions().is_none() {
                            return Err(SimError::InvalidConfig(
                                "a disk jam region requires a positioned topology".to_string(),
                            ));
                        }
                    }
                },
                Fault::CorruptAll | Fault::CorruptFraction(_) => {}
            }
        }
        Ok(())
    }

    /// Runs `net` until `until_step`, firing scheduled faults along the
    /// way. Faults scheduled before the current step fire immediately;
    /// faults scheduled at or after `until_step` do not fire.
    ///
    /// # Errors
    ///
    /// Everything [`FaultPlan::validate_for`] rejects — the plan is
    /// validated against `net`'s topology before any step executes.
    pub fn run<P, M>(&self, net: &mut Network<P, M>, until_step: u64) -> Result<(), SimError>
    where
        P: Corruptible,
        M: Medium,
    {
        self.validate_for(net.topology())?;
        let mut script: Vec<&(u64, Fault)> = self.events.iter().collect();
        script.sort_by_key(|(step, _)| *step);
        let mut pending = script.into_iter().peekable();
        // Skip/fire anything already due.
        while net.now() < until_step {
            while let Some((step, fault)) = pending.peek() {
                if *step <= net.now() {
                    net.inject(fault).expect("plan validated before running");
                    pending.next();
                } else {
                    break;
                }
            }
            net.step();
        }
        // Faults due exactly at the final step boundary still fire (the
        // caller observes the post-fault state).
        while let Some((step, fault)) = pending.peek() {
            if *step <= net.now() {
                net.inject(fault).expect("plan validated before running");
                pending.next();
            } else {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol;
    use mwn_graph::builders;
    use mwn_radio::PerfectMedium;
    use rand::rngs::StdRng;

    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            *state = (*state).max(node.value());
        }
    }
    impl Corruptible for MaxFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }

    #[test]
    fn faults_fire_in_order_and_heal() {
        let mut plan = FaultPlan::new();
        plan.at(10, Fault::CorruptAll);
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(5), 1);
        plan.run(&mut net, 30).expect("valid plan");
        assert_eq!(net.now(), 30);
        // 20 steps after the corruption: flood reconverged.
        assert!(net.states().iter().all(|&s| s == 4));
    }

    #[test]
    fn isolation_fault_cuts_traffic() {
        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)));
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(5), 2);
        plan.run(&mut net, 20).expect("valid plan");
        assert_eq!(*net.state(NodeId::new(0)), 1, "max id cannot cross the cut");
    }

    #[test]
    fn set_topology_fault_restores_links() {
        let topo = builders::line(5);
        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)))
            .at(10, Fault::SetTopology(topo.clone()));
        let mut net = Network::new(MaxFlood, PerfectMedium, topo, 3);
        plan.run(&mut net, 30).expect("valid plan");
        assert!(net.states().iter().all(|&s| s == 4), "healed after re-link");
    }

    #[test]
    fn fraction_and_single_node_faults() {
        let mut plan = FaultPlan::new();
        plan.at(5, Fault::CorruptFraction(0.5))
            .at(6, Fault::CorruptNode(NodeId::new(0)));
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::ring(8), 4);
        plan.run(&mut net, 40).expect("valid plan");
        assert!(net.states().iter().all(|&s| s == 7));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_plan_is_plain_run() {
        let plan = FaultPlan::new();
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(3), 5);
        plan.run(&mut net, 7).expect("valid plan");
        assert_eq!(net.now(), 7);
        assert!(plan.is_empty());
    }

    #[test]
    fn insertion_is_unsorted_and_the_script_sorts_stably() {
        // Regression for the old `at` that re-sorted the whole script
        // on every insertion: building is push-only now, and the final
        // sort must keep same-step faults in insertion order.
        let mut plan = FaultPlan::new();
        plan.at(5, Fault::CorruptNode(NodeId::new(10)))
            .at(3, Fault::CorruptAll)
            .at(5, Fault::CorruptNode(NodeId::new(20)))
            .at(1, Fault::Isolate(NodeId::new(0)))
            .at(5, Fault::CorruptNode(NodeId::new(30)));
        let events = plan.into_events();
        let steps: Vec<u64> = events.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![1, 3, 5, 5, 5], "sorted by step");
        let same_step: Vec<u32> = events
            .iter()
            .filter_map(|(s, f)| match (s, f) {
                (5, Fault::CorruptNode(p)) => Some(p.value()),
                _ => None,
            })
            .collect();
        assert_eq!(same_step, vec![10, 20, 30], "insertion order preserved");
    }

    #[test]
    fn malformed_plans_fail_the_run_not_the_process() {
        // Node-count-changing topology: a typed error, not a panic.
        let mut plan = FaultPlan::new();
        plan.at(2, Fault::SetTopology(builders::line(7)));
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(5), 1);
        assert_eq!(
            plan.run(&mut net, 10),
            Err(SimError::NodeCountMismatch {
                expected: 5,
                got: 7
            })
        );
        assert_eq!(net.now(), 0, "nothing ran");

        // Out-of-range victims are named in the error.
        let mut plan = FaultPlan::new();
        plan.at(
            0,
            Fault::CrashRecover {
                node: NodeId::new(99),
                dark_for: 3,
            },
        );
        let err = plan.run(&mut net, 10).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("99"), "err: {err}");

        // Disk jam regions need positions (G(n, p) topologies have
        // none).
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(7);
        let unpositioned = builders::gnp(5, 0.5, &mut rng);
        let mut net = Network::new(MaxFlood, PerfectMedium, unpositioned, 1);
        let mut plan = FaultPlan::new();
        plan.at(
            0,
            Fault::Jam {
                region: Region::Disk {
                    x: 0.5,
                    y: 0.5,
                    r: 0.2,
                },
                until: 5,
            },
        );
        let err = plan.run(&mut net, 10).unwrap_err();
        assert!(err.to_string().contains("positioned"), "err: {err}");
    }

    #[test]
    fn settles_by_covers_every_timed_kind() {
        assert_eq!(Fault::CorruptAll.settles_by(7), 7);
        assert_eq!(
            Fault::CrashRecover {
                node: NodeId::new(0),
                dark_for: 4
            }
            .settles_by(10),
            14
        );
        // Zero-length windows still settle strictly after injection.
        assert_eq!(
            Fault::CrashRecover {
                node: NodeId::new(0),
                dark_for: 0
            }
            .settles_by(10),
            11
        );
        assert_eq!(
            Fault::ByzantineBeacon {
                node: NodeId::new(1),
                lie: Lie::Forged,
                until: 3
            }
            .settles_by(10),
            11
        );
        assert_eq!(
            Fault::PartitionHeal {
                cut: vec![NodeId::new(0)],
                heal_at: 25
            }
            .settles_by(10),
            25
        );
        assert_eq!(
            Fault::Jam {
                region: Region::Nodes(vec![NodeId::new(0)]),
                until: 30
            }
            .settles_by(10),
            30
        );
    }
}
