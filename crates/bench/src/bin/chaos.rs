//! Adversary-campaign certification at scale: restabilization-time
//! distributions per fault class, plus the closure and gated-liveness
//! verdicts, on Poisson deployments.
//!
//! ```sh
//! cargo run --release -p mwn-bench --bin chaos             # 1k + 10k
//! cargo run --release -p mwn-bench --bin chaos -- --quick  # 1k (CI smoke)
//! ```
//!
//! Writes `BENCH_chaos.json` next to the working directory. Exits
//! non-zero (asserts) unless every size earns a clean certificate:
//! closure holds, every fault restabilizes within the horizon, and
//! the forced-eager liveness audit finds no stale gated node.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes: Vec<usize> = if quick {
        vec![1_000]
    } else {
        vec![1_000, 10_000]
    };
    let points = mwn_bench::chaos::run(&sizes, 20050610, quick);
    println!("{}", mwn_bench::chaos::render(&points));
    for p in &points {
        println!("{}", p.cert.headline());
        assert!(
            p.cert.is_clean(),
            "dirty certificate at n = {}: {}",
            p.nodes,
            p.cert.headline()
        );
    }
    let json = mwn_bench::chaos::to_json(&points);
    let path = "BENCH_chaos.json";
    std::fs::write(path, &json).expect("write BENCH_chaos.json");
    println!("\nwrote {path}");
}
