//! Structured sensor field: the paper's adversarial grid (Table 5 /
//! Figures 2–3). Sensor ids were assigned in installation order —
//! row by row — which makes every interior density equal and collapses
//! the id-based election into one network-wide cluster. Enabling the
//! constant-height DAG renaming (Section 4.1) restores locality.
//!
//! Writes `sensor_grid_no_dag.svg` and `sensor_grid_dag.svg`.
//!
//! ```sh
//! cargo run --example sensor_grid
//! ```

use selfstab::prelude::*;

fn main() {
    let side = 20;
    // One-cell reach, like the paper's 32×32 grid at R = 0.05.
    let radius = 0.05 * 31.0 / (side - 1) as f64;
    let topo = builders::grid(side, side, radius);
    println!(
        "sensor grid: {side}×{side}, reach {:.3}, interior density {}",
        radius,
        density_of(&topo, NodeId::new((side * side / 2 + side / 2) as u32))
    );

    // Without the DAG: ids decide every tie — one giant cluster.
    let (no_dag, _, _) = run_to_fixpoint(topo.clone(), ClusterConfig::default());
    println!("\nwithout DAG: {} cluster(s)", no_dag.head_count());

    // With the DAG renaming: local names from γ = δ².
    let gamma = NameSpace::delta_squared(topo.max_degree());
    let dag_config = ClusterConfig {
        dag: Some(DagConfig {
            gamma,
            variant: DagVariant::SmallestIdRedraws,
        }),
        ..ClusterConfig::default()
    };
    let (with_dag, _, steps) = run_to_fixpoint(topo.clone(), dag_config);
    println!(
        "with DAG (|γ| = {}): {} clusters, stabilized in {} steps",
        gamma.size(),
        with_dag.head_count(),
        steps
    );

    println!("\nclustering with DAG (heads upper-case):");
    print!("{}", ascii_grid_clustering(&with_dag, side, side));

    write_svg_clustering("sensor_grid_no_dag.svg", &topo, &no_dag).expect("write svg");
    write_svg_clustering("sensor_grid_dag.svg", &topo, &with_dag).expect("write svg");
    println!("wrote sensor_grid_no_dag.svg and sensor_grid_dag.svg");
}

fn run_to_fixpoint(topo: Topology, config: ClusterConfig) -> (Clustering, Vec<u32>, u64) {
    let mut net = Scenario::new(DensityCluster::new(config))
        .topology(topo)
        .seed(3)
        .validate(move |t| config.validate_for(t))
        .build()
        .expect("valid scenario");
    let report = net.run_to(&StopWhen::stable_for(4).within(2000));
    let steps = report.expect_stable("stabilizes");
    let clustering = extract_clustering(net.states()).expect("clean");
    let ids = extract_dag_ids(net.states());
    (clustering, ids, steps)
}
