//! The centralized fixpoint oracle: computes, with full topology
//! knowledge, the unique stable clustering the distributed protocol
//! stabilizes to. The test suite checks distributed runs against it.

use mwn_graph::{NodeId, Topology};
use serde::{Deserialize, Serialize};

use crate::{Clustering, Key, MetricKind, OrderKind};

/// Which cluster-head condition is in force.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeadRule {
    /// Section 3 / 4.2: `p` is a head iff it is `≺`-maximal in its
    /// 1-neighborhood.
    #[default]
    Basic,
    /// Section 4.3 fusion refinement: "I am locally maximal *and* any
    /// cluster-head in my 2-neighborhood is smaller than me". A local
    /// maximum beaten by a head two hops away abdicates and merges its
    /// cluster into the winner's, so heads end up ≥ 3 hops apart.
    Fusion,
}

/// Configuration of the (distributed or centralized) election.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Election metric (density in the paper).
    pub metric: MetricKind,
    /// Tie-breaking order (basic, or the incumbency-aware refinement).
    pub order: OrderKind,
    /// Head condition (basic, or the 2-hop fusion refinement).
    pub rule: HeadRule,
    /// Per-node tie-break identifiers — the DAG identifiers of Section
    /// 4.1 when the constant-height DAG is enabled. `None` uses the
    /// globally unique node ids (the "No DAG" configuration of the
    /// paper's Tables 4–5).
    pub tiebreak: Option<Vec<u32>>,
    /// Which nodes are *currently* cluster-heads, for the incumbency
    /// tie-break of [`OrderKind::Stable`]. `None` means nobody is.
    pub prev_heads: Option<Vec<bool>>,
}

/// The election keys of every node under `cfg`.
///
/// # Panics
///
/// Panics if `cfg.tiebreak` or `cfg.prev_heads` is present with a
/// length different from the node count.
pub fn keys_of(topo: &Topology, cfg: &OracleConfig) -> Vec<Key> {
    if let Some(tb) = &cfg.tiebreak {
        assert_eq!(tb.len(), topo.len(), "one tiebreak id per node");
    }
    if let Some(ph) = &cfg.prev_heads {
        assert_eq!(ph.len(), topo.len(), "one incumbency flag per node");
    }
    topo.nodes()
        .map(|p| {
            let tiebreak = cfg.tiebreak.as_ref().map_or(p.value(), |tb| tb[p.index()]);
            let is_head = cfg.prev_heads.as_ref().is_some_and(|ph| ph[p.index()]);
            Key::new(cfg.metric.value_of(topo, p), is_head, tiebreak, p)
        })
        .collect()
}

/// The nodes that are `≺`-maximal in their own 1-neighborhood.
pub fn locally_maximal(topo: &Topology, keys: &[Key], order: OrderKind) -> Vec<bool> {
    topo.nodes()
        .map(|p| {
            topo.neighbors(p)
                .iter()
                .all(|&q| keys[q.index()].precedes(&keys[p.index()], order))
        })
        .collect()
}

/// Computes the stable clustering centrally.
///
/// For [`HeadRule::Basic`] the stable configuration is unique: heads
/// are the local maxima of `≺`, every other node's parent is its
/// strongest neighbor, and `H` follows parent chains (which strictly
/// climb `≺`).
///
/// For [`HeadRule::Fusion`] the stable head set is the greedy 2-hop
/// maximal independent set over local maxima in decreasing `≺` order
/// (see DESIGN.md §4 for why this is the unique fixpoint); an absorbed
/// local maximum adopts the strongest surviving head in its
/// 2-neighborhood as its (logical, 2-hop) parent.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{oracle, OracleConfig};
/// use mwn_graph::builders::fig1_example;
/// use mwn_graph::NodeId;
///
/// let clustering = oracle(&fig1_example(), &OracleConfig::default());
/// // The paper's example stabilizes to clusters headed by h (id 7)
/// // and j (id 5).
/// assert_eq!(clustering.heads(), vec![NodeId::new(5), NodeId::new(7)]);
/// ```
pub fn oracle(topo: &Topology, cfg: &OracleConfig) -> Clustering {
    let keys = keys_of(topo, cfg);
    oracle_with_keys(topo, &keys, cfg.order, cfg.rule)
}

/// [`oracle`] with precomputed keys (used by the protocol's legitimacy
/// checks, which already hold the stabilized keys).
pub fn oracle_with_keys(
    topo: &Topology,
    keys: &[Key],
    order: OrderKind,
    rule: HeadRule,
) -> Clustering {
    let n = topo.len();
    let maximal = locally_maximal(topo, keys, order);

    // Survivors of the head condition.
    let mut is_head = maximal.clone();
    if rule == HeadRule::Fusion {
        // Greedy 2-hop MIS over local maxima, strongest first.
        let mut maxima: Vec<NodeId> = topo.nodes().filter(|p| maximal[p.index()]).collect();
        maxima.sort_by(|&a, &b| keys[b.index()].cmp_under(&keys[a.index()], order));
        let mut selected = vec![false; n];
        for &p in &maxima {
            let blocked = topo
                .two_hop_neighborhood(p)
                .into_iter()
                .any(|q| selected[q.index()]);
            if !blocked {
                selected[p.index()] = true;
            }
        }
        is_head = selected;
    }

    // Parents and heads.
    let mut parent: Vec<NodeId> = Vec::with_capacity(n);
    for p in topo.nodes() {
        if is_head[p.index()] {
            parent.push(p);
        } else if maximal[p.index()] {
            // Absorbed local maximum (fusion only): adopt the strongest
            // surviving head within two hops as a logical parent.
            let absorber = topo
                .two_hop_neighborhood(p)
                .into_iter()
                .filter(|q| is_head[q.index()])
                .max_by(|&a, &b| keys[a.index()].cmp_under(&keys[b.index()], order))
                .expect("an absorbed maximum is blocked by some surviving head");
            parent.push(absorber);
        } else {
            let strongest = topo
                .neighbors(p)
                .iter()
                .copied()
                .max_by(|&a, &b| keys[a.index()].cmp_under(&keys[b.index()], order))
                .expect("a non-maximal node has at least one neighbor");
            parent.push(strongest);
        }
    }

    // Resolve H by walking parent chains in decreasing ≺ order; every
    // parent link strictly climbs ≺, so one pass suffices.
    let mut order_idx: Vec<NodeId> = topo.nodes().collect();
    order_idx.sort_by(|&a, &b| keys[b.index()].cmp_under(&keys[a.index()], order));
    let mut head: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
    for p in order_idx {
        if !is_head[p.index()] {
            head[p.index()] = head[parent[p.index()].index()];
        }
    }
    Clustering::new(parent, head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders::{self, fig1_example, FIG1_LABELS};

    fn by_label(c: char) -> NodeId {
        NodeId::new(FIG1_LABELS.iter().position(|&l| l == c).unwrap() as u32)
    }

    #[test]
    fn paper_example_clusters_around_h_and_j() {
        let topo = fig1_example();
        let c = oracle(&topo, &OracleConfig::default());
        let (h, j, b) = (by_label('h'), by_label('j'), by_label('b'));
        assert!(c.is_head(h));
        assert!(c.is_head(j));
        assert_eq!(c.head_count(), 2);
        // "node c joins b which joins h": F(c)=b, F(b)=h, H(b)=H(c)=h.
        assert_eq!(c.parent(by_label('c')), b);
        assert_eq!(c.parent(b), h);
        assert_eq!(c.head(by_label('c')), h);
        // "F(f)=j and F(j)=j so H(f)=H(j)=j".
        assert_eq!(c.parent(by_label('f')), j);
        assert_eq!(c.head(by_label('f')), j);
        // g joins j's cluster (its strongest neighbors f/j tie at 1.5,
        // j has the smaller id).
        assert_eq!(c.head(by_label('g')), j);
        // a, d, e, i all end up in h's cluster.
        for label in ['a', 'd', 'e', 'i'] {
            assert_eq!(c.head(by_label(label)), h, "node {label}");
        }
    }

    #[test]
    fn heads_are_never_adjacent_basic_rule() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let topo = builders::uniform(150, 0.12, &mut rng);
            let c = oracle(&topo, &OracleConfig::default());
            for h in c.heads() {
                for &q in topo.neighbors(h) {
                    assert!(!c.is_head(q), "adjacent heads {h} and {q}");
                }
            }
        }
    }

    #[test]
    fn fusion_heads_are_three_hops_apart() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let cfg = OracleConfig {
            rule: HeadRule::Fusion,
            ..OracleConfig::default()
        };
        for _ in 0..10 {
            let topo = builders::uniform(150, 0.12, &mut rng);
            let c = oracle(&topo, &cfg);
            for h in c.heads() {
                for q in topo.two_hop_neighborhood(h) {
                    assert!(
                        !c.is_head(q),
                        "heads {h} and {q} within two hops despite fusion"
                    );
                }
            }
        }
    }

    #[test]
    fn fusion_never_increases_head_count() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let topo = builders::uniform(120, 0.15, &mut rng);
            let basic = oracle(&topo, &OracleConfig::default());
            let fusion = oracle(
                &topo,
                &OracleConfig {
                    rule: HeadRule::Fusion,
                    ..OracleConfig::default()
                },
            );
            assert!(fusion.head_count() <= basic.head_count());
        }
    }

    #[test]
    fn parent_chains_climb_the_order() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let topo = builders::uniform(200, 0.1, &mut rng);
        let cfg = OracleConfig::default();
        let keys = keys_of(&topo, &cfg);
        let c = oracle(&topo, &cfg);
        for p in topo.nodes() {
            let f = c.parent(p);
            if f != p {
                assert!(
                    keys[p.index()].precedes(&keys[f.index()], cfg.order),
                    "parent of {p} does not dominate it"
                );
            }
        }
    }

    #[test]
    fn every_chain_reaches_its_head() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for rule in [HeadRule::Basic, HeadRule::Fusion] {
            let topo = builders::uniform(150, 0.12, &mut rng);
            let cfg = OracleConfig {
                rule,
                ..OracleConfig::default()
            };
            let c = oracle(&topo, &cfg);
            for p in topo.nodes() {
                assert!(
                    c.depth_in_hops(&topo, p).is_some(),
                    "broken chain at {p} under {rule:?}"
                );
                assert!(c.is_head(c.head(p)), "head claim of {p} dangles");
            }
        }
    }

    #[test]
    fn unit_metric_is_lowest_id_clustering() {
        let topo = builders::line(5);
        let cfg = OracleConfig {
            metric: MetricKind::Unit,
            ..OracleConfig::default()
        };
        let c = oracle(&topo, &cfg);
        // Node 0 wins its neighborhood; 1 and 2 chain to it; 3 joins 2?
        // No: 3's neighbors are {2, 4}; strongest is 2 (smaller id);
        // head(2) = 0... but 2's strongest neighbor is 1, chains to 0.
        assert!(c.is_head(NodeId::new(0)));
        assert_eq!(c.head(NodeId::new(4)), NodeId::new(0));
        assert_eq!(c.head_count(), 1);
    }

    #[test]
    fn isolated_nodes_are_their_own_heads() {
        let topo = mwn_graph::Topology::empty(3);
        let c = oracle(&topo, &OracleConfig::default());
        assert_eq!(c.head_count(), 3);
        for p in topo.nodes() {
            assert!(c.is_head(p));
        }
    }

    #[test]
    fn incumbency_keeps_previous_head() {
        // Two adjacent nodes with equal density; node 1 was head.
        // Basic order: node 0 (smaller id) wins. Stable order: node 1
        // stays head.
        let topo = mwn_graph::Topology::from_edges(2, &[(0, 1)]).unwrap();
        let basic = oracle(&topo, &OracleConfig::default());
        assert!(basic.is_head(NodeId::new(0)));
        let stable = oracle(
            &topo,
            &OracleConfig {
                order: OrderKind::Stable,
                prev_heads: Some(vec![false, true]),
                ..OracleConfig::default()
            },
        );
        assert!(stable.is_head(NodeId::new(1)));
        assert!(!stable.is_head(NodeId::new(0)));
    }

    #[test]
    fn dag_tiebreak_changes_the_winner() {
        // Equal densities on K2; with explicit tiebreak ids reversing
        // the natural order, the other node must win.
        let topo = mwn_graph::Topology::from_edges(2, &[(0, 1)]).unwrap();
        let c = oracle(
            &topo,
            &OracleConfig {
                tiebreak: Some(vec![9, 1]),
                ..OracleConfig::default()
            },
        );
        assert!(c.is_head(NodeId::new(1)));
    }

    #[test]
    #[should_panic(expected = "one tiebreak id per node")]
    fn tiebreak_length_is_validated() {
        let topo = builders::line(3);
        let _ = oracle(
            &topo,
            &OracleConfig {
                tiebreak: Some(vec![1, 2]),
                ..OracleConfig::default()
            },
        );
    }
}
