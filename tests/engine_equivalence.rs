//! The activity-driven engine's contract, end to end: **gated
//! execution is unobservable**. For every protocol that declares
//! `Activity::Gated`, running with dirty-set scheduling (quiescent
//! nodes skipped, silent senders muted) must produce byte-identical
//! states, observable outputs, and `RunReport`s to eager execution
//! (every guard re-run, every beacon re-broadcast, every step) — across
//! seeds, topologies, media, faults and mobility.
//!
//! This is what makes the near-zero cost of stable regions a pure
//! optimization rather than a semantic change, and it is only possible
//! because every random stream is derived per (step, node) /
//! (step, sender): a skipped node consumes no randomness.

use mwn_sim::kernels;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfstab::prelude::*;

/// Steps a gated and a pinned-eager twin in lockstep for `steps`
/// steps, asserting byte-identical state trajectories, then returns
/// both end states.
fn lockstep<M, F>(build: F, steps: u64) -> Vec<(NodeId, NodeId)>
where
    M: Medium,
    F: Fn() -> mwn_sim::Network<DensityCluster, M>,
{
    let mut gated = build();
    let mut eager = build();
    eager.set_eager(true);
    assert!(!eager.is_gated());
    for s in 0..steps {
        gated.step();
        eager.step();
        assert_eq!(
            gated.states(),
            eager.states(),
            "trajectories diverged at step {s}"
        );
    }
    gated
        .states()
        .iter()
        .map(|st| (st.head, st.parent))
        .collect()
}

fn event_driven_config() -> ClusterConfig {
    ClusterConfig::default().event_driven()
}

#[test]
fn gated_equals_eager_on_perfect_medium_trajectories() {
    for seed in 0..4 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builders::uniform(60, 0.16, &mut rng);
        lockstep(
            || {
                Scenario::new(DensityCluster::new(event_driven_config()))
                    .topology(topo.clone())
                    .seed(seed)
                    .build()
                    .expect("valid scenario")
            },
            40,
        );
    }
}

#[test]
fn gated_equals_eager_under_bernoulli_loss() {
    for seed in 0..4 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
        let topo = builders::uniform(50, 0.18, &mut rng);
        lockstep(
            || {
                Scenario::new(DensityCluster::new(event_driven_config()))
                    .medium(BernoulliLoss::new(0.6))
                    .topology(topo.clone())
                    .seed(seed)
                    .build()
                    .expect("valid scenario")
            },
            60,
        );
    }
}

#[test]
fn gated_equals_eager_under_distance_fading() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let topo = builders::uniform(50, 0.18, &mut rng);
    lockstep(
        || {
            Scenario::new(DensityCluster::new(event_driven_config()))
                .medium(DistanceFading::new(2.0, 0.3))
                .topology(topo.clone())
                .seed(9)
                .build()
                .expect("valid scenario")
        },
        60,
    );
}

#[test]
fn contention_media_gate_through_statistical_occupancy() {
    // Since the gated-contention contract, CSMA fates fold silent
    // in-range transmitters in statistically, so the engine gates them
    // too. The claim is distributional (see `tests/gated_csma.rs`),
    // not byte-identical, so here we only pin the wiring: gating is on,
    // an occupancy summary is maintained, and a stabilized network
    // really does go silent.
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let topo = builders::uniform(40, 0.2, &mut rng);
    let build = || {
        Scenario::new(DensityCluster::new(event_driven_config()))
            .medium(SlottedCsma::new(16))
            .topology(topo.clone())
            .seed(4)
            .build()
            .expect("valid scenario")
    };
    let mut net = build();
    assert!(
        net.is_gated(),
        "gated contention must extend dirty-set gating to CSMA"
    );
    let report = net.run_to(&StopWhen::stable_for(10).within(800));
    report.expect_stable("CSMA run stabilizes");
    let occ = net
        .occupancy()
        .expect("gated CSMA maintains an occupancy summary");
    assert_eq!(
        occ.total(),
        net.topology().len(),
        "after stabilization every node is statistically occupied"
    );
    let msgs = net.messages_total();
    for _ in 0..20 {
        net.step();
    }
    assert_eq!(
        net.messages_total(),
        msgs,
        "quiet CSMA steps must send nothing"
    );
}

#[test]
fn wrapped_contention_media_fall_back_to_eager_and_stay_identical() {
    // `Thinned<SlottedCsma>` advertises neither independent fates nor
    // gated contention, so the engine must refuse to gate senders
    // (physics would change); equivalence is then trivial but the
    // fallback itself is what this checks.
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let topo = builders::uniform(40, 0.2, &mut rng);
    let build = || {
        Scenario::new(DensityCluster::new(event_driven_config()))
            .medium(Thinned::new(SlottedCsma::new(16), 0.9))
            .topology(topo.clone())
            .seed(4)
            .build()
            .expect("valid scenario")
    };
    let probe = build();
    assert!(
        !probe.is_gated(),
        "gating must be disabled on wrapped contention media"
    );
    lockstep(build, 40);
}

#[test]
fn gated_equals_eager_with_scripted_faults() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let topo = builders::uniform(45, 0.18, &mut rng);
    let build = || {
        let mut plan = FaultPlan::new();
        plan.at(10, Fault::CorruptFraction(0.4))
            .at(20, Fault::Isolate(NodeId::new(3)))
            .at(30, Fault::CorruptAll)
            .at(
                38,
                Fault::CrashRecover {
                    node: NodeId::new(7),
                    dark_for: 6,
                },
            )
            .at(
                46,
                Fault::ByzantineBeacon {
                    node: NodeId::new(11),
                    lie: Lie::Forged,
                    until: 50,
                },
            )
            .at(
                54,
                Fault::PartitionHeal {
                    cut: (0..20).map(NodeId::new).collect(),
                    heal_at: 60,
                },
            )
            .at(
                64,
                Fault::Jam {
                    region: Region::Disk {
                        x: 0.5,
                        y: 0.5,
                        r: 0.2,
                    },
                    until: 68,
                },
            );
        Scenario::new(DensityCluster::new(event_driven_config()))
            .topology(topo.clone())
            .seed(6)
            .faults(plan)
            .build()
            .expect("valid scenario")
    };
    lockstep(build, 85);
}

#[test]
fn gated_equals_eager_under_mobility_deltas() {
    let build = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let topo = builders::uniform(50, 0.18, &mut rng);
        let model = RandomWaypoint::new(topo.len(), 0.0..=meters_per_second(25.0), 0.5);
        let dynamics = MobileScenario::new(topo.clone(), model, 5).into_dynamics(2.0);
        Scenario::new(DensityCluster::new(event_driven_config()))
            .topology(topo)
            .seed(seed)
            .mobility(dynamics)
            .build()
            .expect("valid scenario")
    };
    let mut gated = build(8);
    let mut eager = build(8);
    eager.set_eager(true);
    for s in 0..50 {
        gated.step();
        eager.step();
        assert_eq!(
            gated.topology(),
            eager.topology(),
            "mobility deltas diverged at step {s}"
        );
        assert_eq!(
            gated.states(),
            eager.states(),
            "states diverged under mobility at step {s}"
        );
    }
}

#[test]
fn gated_equals_eager_run_reports() {
    // The full run_to pipeline: identical RunReports (stabilization
    // step, steps executed, timeout flags) under composite conditions.
    for seed in 0..5 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(300 + seed);
        let topo = builders::uniform(55, 0.17, &mut rng);
        let run = |eager: bool| {
            let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
                .topology(topo.clone())
                .seed(seed)
                .build()
                .expect("valid scenario");
            net.set_eager(eager);
            let first = net.run_to(&StopWhen::stable_for(4).within(500));
            net.corrupt_all();
            let healed = net.run_to(
                &StopWhen::stable_for(3)
                    .and(StopWhen::max_steps(5))
                    .within(500),
            );
            (first, healed, net.outputs(), net.now())
        };
        assert_eq!(run(false), run(true), "seed {seed}");
    }
}

#[test]
fn gated_equals_eager_for_the_dag_protocol() {
    for seed in 0..4 {
        let topo = builders::grid(9, 9, 0.2);
        let gamma = NameSpace::delta_squared(topo.max_degree());
        let run = |eager: bool| {
            let mut net = Scenario::new(DagProtocol::event_driven(
                gamma,
                DagVariant::SmallestIdRedraws,
            ))
            .topology(topo.clone())
            .seed(seed)
            .build()
            .expect("valid scenario");
            net.set_eager(eager);
            let report = net.run_to(&StopWhen::stable_for(3).within(400));
            (report, net.outputs())
        };
        assert_eq!(run(false), run(true), "seed {seed}");
    }
}

#[test]
fn silence_is_total_after_stabilization() {
    // The acceptance criterion in numbers: once the output stabilizes,
    // active nodes and messages drop to exactly zero and stay there.
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let topo = builders::uniform(80, 0.15, &mut rng);
    let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
        .topology(topo)
        .seed(12)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(2).within(500))
        .expect_stable("stabilizes");
    // One or two more steps may drain the last pending beacons (quiet
    // output does not instantly imply every neighbor caught up).
    net.run(3);
    let frozen = net.messages_total();
    for _ in 0..50 {
        net.step();
        let a = net.last_activity();
        assert_eq!(a.senders, 0);
        assert_eq!(a.updates, 0);
        assert_eq!(a.frames_attempted, 0);
        assert_eq!(a.changed, 0);
    }
    assert_eq!(net.messages_total(), frozen);
}

#[test]
fn sharded_equals_serial_across_shard_counts() {
    // The deterministic owner-computes partition of the active-set
    // pass: every forced shard count must reproduce the serial
    // trajectory byte for byte — states, outputs, RunReports — through
    // loss, scripted faults and re-stabilization. This is what makes
    // the converging-phase parallelism testable on a 1-CPU container.
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let topo = builders::uniform(60, 0.16, &mut rng);
    let run = |shards: Option<usize>, eager: bool| {
        let mut plan = FaultPlan::new();
        plan.at(12, Fault::CorruptFraction(0.5))
            .at(25, Fault::CorruptAll);
        let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
            .medium(BernoulliLoss::new(0.7))
            .topology(topo.clone())
            .seed(5)
            .faults(plan)
            .build()
            .expect("valid scenario");
        net.set_eager(eager);
        net.set_shards(shards);
        let report = net.run_to(&StopWhen::stable_for(6).within(800));
        (report, net.outputs(), net.messages_total(), net.now())
    };
    for eager in [false, true] {
        let serial = run(Some(1), eager);
        for shards in [2, 4, 7] {
            assert_eq!(
                serial,
                run(Some(shards), eager),
                "{shards} shards diverged from serial (eager = {eager})"
            );
        }
        assert_eq!(serial, run(None, eager), "auto sharding diverged");
    }
}

#[test]
fn event_driver_gated_equals_eager_trajectories() {
    // The continuous-time counterpart of the round-driver equivalence:
    // on an independent-fates medium, muting silent senders (gated)
    // must be unobservable against the sequential eager reference that
    // transmits at every beacon slot — same states, same outputs, same
    // stabilization times, across seeds and media.
    for seed in 0..3 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(500 + seed);
        let topo = builders::uniform(45, 0.18, &mut rng);
        let run = |eager: bool| {
            let mut driver = Scenario::new(DensityCluster::new(event_driven_config()))
                .medium(BernoulliLoss::new(0.75))
                .topology(topo.clone())
                .seed(seed)
                .build_events(EventConfig::default())
                .expect("valid event scenario");
            driver.set_eager(eager);
            assert_eq!(driver.is_gated(), !eager);
            let first = driver.run_until_output_stable(1.0, 5, 600.0);
            driver.corrupt_all();
            let healed = driver.run_until_output_stable(1.0, 5, 600.0);
            let outputs: Vec<_> = driver.states().iter().map(|s| (s.head, s.parent)).collect();
            (first, healed, outputs)
        };
        let gated = run(false);
        let eager = run(true);
        assert_eq!(gated, eager, "seed {seed}");
        assert!(
            gated.0.is_some() && gated.1.is_some(),
            "both phases stabilize"
        );
    }
}

#[test]
fn event_driver_silence_is_total_after_stabilization() {
    // The acceptance criterion for the continuous clock: once a gated
    // network stabilizes, the event queue drains — a long quiet
    // interval processes zero events and sends zero messages, so its
    // cost is O(1), not O(n · periods).
    let mut rng = rand::rngs::StdRng::seed_from_u64(91);
    let topo = builders::uniform(70, 0.15, &mut rng);
    let mut driver = Scenario::new(DensityCluster::new(event_driven_config()))
        .topology(topo)
        .seed(4)
        .build_events(EventConfig::default())
        .expect("valid event scenario");
    assert!(driver.is_gated());
    driver
        .run_until_output_stable(1.0, 5, 600.0)
        .expect("stabilizes");
    // Let the last pending beacons retire.
    driver.run_until_time(driver.time() + 20.0);
    let (messages, events) = (driver.messages_total(), driver.events_processed());
    driver.run_until_time(driver.time() + 10_000.0);
    assert_eq!(driver.messages_total(), messages, "silence must be total");
    assert_eq!(driver.events_processed(), events, "no events while quiet");
    // And the network is still awake: a corruption re-floods.
    driver.corrupt_all();
    driver
        .run_until_output_stable(1.0, 5, 600.0)
        .expect("heals after the quiet eon");
    assert!(driver.messages_total() > messages);
}

#[test]
fn event_driver_gated_equals_eager_under_mobility() {
    // Mobility in continuous time (the last PR-1 open item): dynamics
    // tick at logical-step boundaries in both modes, apply incremental
    // deltas and fire link_down — and gating stays unobservable while
    // the topology churns.
    let run = |eager: bool| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let topo = builders::uniform(50, 0.18, &mut rng);
        let model = RandomWaypoint::new(topo.len(), 0.0..=meters_per_second(20.0), 0.5);
        let dynamics = MobileScenario::new(topo.clone(), model, 5).into_dynamics(2.0);
        let mut driver = Scenario::new(DensityCluster::new(event_driven_config()))
            .topology(topo)
            .seed(8)
            .mobility(dynamics)
            .build_events(EventConfig::default())
            .expect("valid event scenario");
        driver.set_eager(eager);
        driver.run_until_time(40.0);
        let outputs: Vec<_> = driver.states().iter().map(|s| (s.head, s.parent)).collect();
        (
            driver.topology().edges().collect::<Vec<_>>(),
            outputs,
            driver.time(),
        )
    };
    assert_eq!(run(false), run(true), "mobility must not break equivalence");
}

#[test]
fn event_driver_mobility_then_settlement_stabilizes() {
    // After the nodes stop moving, the protocol settles on the final
    // topology and the gated driver goes silent on it.
    let mut rng = rand::rngs::StdRng::seed_from_u64(47);
    let topo = builders::uniform(40, 0.2, &mut rng);
    let model = RandomWaypoint::new(topo.len(), 0.0..=meters_per_second(15.0), 0.5);
    let dynamics = MobileScenario::new(topo.clone(), model, 9).into_dynamics(2.0);
    let mut driver = Scenario::new(DensityCluster::new(event_driven_config()))
        .topology(topo)
        .seed(10)
        .mobility(dynamics)
        .build_events(EventConfig::default())
        .expect("valid event scenario");
    driver.run_until_time(30.0);
    assert!(driver.stop_dynamics(), "dynamics were attached");
    driver
        .run_until_output_stable(1.0, 5, 600.0)
        .expect("settles once the nodes stop moving");
    let clustering = extract_clustering(driver.states()).expect("clean fixpoint");
    assert!(clustering.head_count() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The kernelized active pass — word-at-a-time dirty-set drains,
    /// sorted-join receive loop, CSR reception rows, pooled shard
    /// arenas — is byte-identical to the scalar reference across shard
    /// counts {1, 2, 4, 7} on both clocks.
    ///
    /// Two legs close the chain. (1) The kernels themselves are pinned
    /// against their scalar references (`binary_search` per frame,
    /// early-exiting `any`) on join shapes sampled from the *actual*
    /// adjacency lists of the generated topology. (2) Whole-trajectory
    /// equivalence: on the round clock every shard count must
    /// reproduce the serial trajectory (reports, outputs, message
    /// totals) through corruption and healing, gated and eager; on the
    /// continuous clock, where the same kernelized reception path
    /// feeds the event loop, gated ≡ eager pins it against the
    /// scalar-semantics reference.
    #[test]
    fn kernelized_pass_equals_scalar_across_shards_and_clocks(
        n in 30usize..60,
        r in 15u32..21,
        tau_pct in 55u32..96,
        seed in 0u64..1_000_000,
    ) {
        let mut trng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let topo = builders::uniform(n, f64::from(r) / 100.0, &mut trng);

        // Leg 1: kernels vs scalar references on real adjacency rows.
        let mut krng = StdRng::seed_from_u64(seed ^ 0xD00D);
        for p in topo.nodes() {
            let neighbors = topo.neighbors(p);
            if neighbors.is_empty() {
                continue;
            }
            let mut senders: Vec<NodeId> = neighbors
                .iter()
                .copied()
                .filter(|_| krng.random_bool(0.6))
                .collect();
            senders.sort_unstable();
            let mut fast = Vec::new();
            kernels::sorted_positions(neighbors, &senders, |idx, s| fast.push((idx, s)));
            let mut scalar = Vec::new();
            kernels::sorted_positions_scalar(neighbors, &senders, |idx, s| scalar.push((idx, s)));
            prop_assert_eq!(&fast, &scalar, "join diverged at node {}", p);
            let epochs: Vec<u32> = (0..topo.len()).map(|_| krng.random_range(0..3)).collect();
            let heard_row: Vec<u32> = neighbors.iter().map(|_| krng.random_range(0..3)).collect();
            prop_assert_eq!(
                kernels::any_fresh(&heard_row, &epochs, neighbors, &senders),
                kernels::any_fresh_scalar(&heard_row, &epochs, neighbors, &senders)
            );
        }

        // Leg 2a: round clock, every shard count, gated and eager.
        let run = |shards: Option<usize>, eager: bool| {
            let mut net = Scenario::new(DensityCluster::new(event_driven_config()))
                .medium(BernoulliLoss::new(f64::from(tau_pct) / 100.0))
                .topology(topo.clone())
                .seed(seed)
                .build()
                .expect("valid scenario");
            net.set_eager(eager);
            net.set_shards(shards);
            let report = net.run_to(&StopWhen::stable_for(3).within(400));
            net.corrupt_all();
            let healed = net.run_to(&StopWhen::stable_for(3).within(400));
            (report, healed, net.outputs(), net.messages_total(), net.now())
        };
        for eager in [false, true] {
            let serial = run(Some(1), eager);
            for shards in [2usize, 4, 7] {
                let forced = run(Some(shards), eager);
                prop_assert_eq!(&serial, &forced, "{} shards, eager = {}", shards, eager);
            }
        }

        // Leg 2b: the continuous clock over the same kernel substrate.
        let run_events = |eager: bool| {
            let mut driver = Scenario::new(DensityCluster::new(event_driven_config()))
                .medium(BernoulliLoss::new(f64::from(tau_pct) / 100.0))
                .topology(topo.clone())
                .seed(seed)
                .build_events(EventConfig::default())
                .expect("valid event scenario");
            driver.set_eager(eager);
            let stable = driver.run_until_output_stable(1.0, 4, 400.0);
            let outputs: Vec<_> = driver.states().iter().map(|s| (s.head, s.parent)).collect();
            // (messages_total is *not* compared: sending less is the
            // entire point of gating — states and outputs are.)
            (stable, outputs)
        };
        prop_assert_eq!(run_events(false), run_events(true));
    }
}

#[test]
fn wilson_convergence_probability_pipeline() {
    // The Sweep::convergence + mwn_metrics::wilson_interval pairing
    // the weak-stabilization experiments use.
    let estimate = mwn_sim::Sweep::over(12, 5)
        .convergence(
            |seed| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let topo = builders::uniform(40, 0.2, &mut rng);
                Scenario::new(DensityCluster::new(event_driven_config()))
                    .topology(topo)
                    .seed(seed)
            },
            &StopWhen::stable_for(3).within(300),
        )
        .expect("all scenarios build");
    assert_eq!(estimate.stabilized, estimate.runs, "Lemma 2 at work");
    let (low, high) = mwn_metrics::wilson_interval(estimate.stabilized, estimate.runs, 1.96);
    assert!(low > 0.7, "12/12 successes put the 95% lower bound high");
    assert_eq!(high, 1.0);
}
