//! Two-tier backbone: the hierarchical-clustering extension from the
//! paper's conclusion. Cluster a large field, then cluster the
//! cluster-head overlay, producing the kind of multi-level structure
//! hierarchical routing needs. Writes one SVG per level.
//!
//! ```sh
//! cargo run --example two_tier_backbone
//! ```

use rand::SeedableRng;
use selfstab::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let topo = builders::poisson(1200.0, 0.06, &mut rng);
    println!(
        "field: {} nodes, {} links, δ = {}",
        topo.len(),
        topo.edge_count(),
        topo.max_degree()
    );

    let hierarchy = build_hierarchy(&topo, &OracleConfig::default(), 10);
    println!("hierarchy depth: {} levels", hierarchy.depth());
    for (k, level) in hierarchy.levels().iter().enumerate() {
        println!(
            "  level {k}: {:4} nodes → {:4} clusters (mean size {:.1})",
            level.members.len(),
            level.clustering.head_count(),
            level.members.len() as f64 / level.clustering.head_count().max(1) as f64
        );
        let path = format!("backbone_level{k}.svg");
        write_svg_clustering(&path, &level.topology, &level.clustering).expect("write level SVG");
    }
    println!("top-level roots: {:?}", hierarchy.top_heads());

    // Hierarchical addressing: where does an arbitrary node report?
    let p = NodeId::new(0);
    let chain: Vec<String> = (0..hierarchy.depth())
        .map(|k| hierarchy.head_of(p, k).expect("in range").to_string())
        .collect();
    println!("node {p} reports via: {}", chain.join(" → "));
    println!("wrote backbone_level*.svg");
}
