//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of the `rand` 0.9 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `random`, `random_range` and `random_bool`.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a
//! well-studied, fast, deterministic PRNG. Streams are *not*
//! bit-compatible with upstream `rand`'s ChaCha-based `StdRng`; every
//! consumer in this workspace only relies on determinism and
//! statistical quality, never on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their full domain.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via 128-bit multiply-shift.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64) - (self.start as u64);
                self.start + bounded_u64(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64) - (lo as u64);
                if width == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + bounded_u64(rng, width + 1) as $t
            }
        }
    )+};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + bounded_u64(rng, width) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                (lo as i64).wrapping_add(bounded_u64(rng, width + 1) as i64) as $t
            }
        }
    )+};
}

signed_int_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <f64 as Standard>::standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <f64 as Standard>::standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )+};
}

float_range!(f32, f64);

/// The user-facing generator interface.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly over the type's full domain
    /// (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::standard(self) < p
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl Rng for &mut StdRng {
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_land_inside_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.random_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&y));
            let z: usize = rng.random_range(0..=4);
            assert!(z <= 4);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: u64 = rng.random_range(2..u64::MAX);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn mean_of_unit_floats_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let total: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum();
        let mean = total / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
