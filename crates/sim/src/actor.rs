//! The **actor driver**: the protocol as real message-passing
//! processes — the third execution substrate next to the synchronous
//! [`crate::Network`] and the continuous-time [`crate::EventDriver`].
//!
//! Every claim the repo makes elsewhere is measured on *simulated*
//! clocks; this driver is the validation harness that runs the same
//! protocol as genuinely concurrent actors. Each node is an actor: a
//! bounded multi-producer mailbox plus its protocol state. Actors are
//! multiplexed over a small pool of OS worker threads (`threads`), and
//! they exchange **serialized beacon frames** ([`crate::WireBeacon`])
//! through a [`MediumProxy`] that replays the scenario's [`Medium`]
//! decisions on the same split-RNG streams the round driver uses — so
//! for a given seed, exactly the same frame copies are dropped on both
//! drivers.
//!
//! # The virtual-time token governor
//!
//! Real concurrency over 10⁴–10⁵ nodes cannot mean 10⁵ OS threads.
//! Instead every actor holds a logical clock (the beacon period `k`),
//! and the driver releases beacon slots one period at a time:
//!
//! 1. **Slot release** — mobility ticks and scripted faults for period
//!    `k` fire first (the *fault ≤ send* ordering contract), then every
//!    send-pending actor's beacon slot is released at once.
//! 2. **Send phase** — the released actors run concurrently on the
//!    worker pool: each evaluates its frame fates through the shared
//!    [`MediumProxy`], encodes its beacon once, and pushes one frame
//!    copy into each lucky receiver's bounded mailbox.
//! 3. **Quiescence barrier** — the governor waits until every released
//!    slot has quiesced (all sends delivered), then releases the
//!    receive side: actors with mail or pending guards drain their
//!    mailboxes **in arrival order**, decode, receive, and run one pass
//!    of guarded assignments.
//!
//! Within a slot the interleaving is genuinely nondeterministic: with
//! `threads > 1` the OS scheduler decides the cross-sender arrival
//! order in every mailbox, and receivers process frames in exactly that
//! order. Across slots the governor keeps the run aligned with the
//! synchronous rounds, which is what keeps huge actor counts feasible
//! and the comparison against the other drivers meaningful:
//!
//! - **`threads == 1`** — arrival order degenerates to sorted sender
//!   order and the whole run is deterministic.
//! - **`threads > 1`** — per-seed frame fates, update randomness, and
//!   fault timing are still byte-reproducible (they live on derived
//!   streams), but arrival order varies run to run. For protocols whose
//!   per-period receives commute (each sender touches its own cache
//!   entry — true of `DensityCluster` and the flooding test protocols)
//!   the period outcome is order-independent and the actor run tracks
//!   the round driver **exactly**; in general the agreement is
//!   distributional (see `tests/actor_equivalence.rs`).
//!
//! The driver supports the same [`Scenario`](crate::Scenario) surface
//! as the other two: scripted faults, mobility ticks at period
//! boundaries, [`StopWhen`] conditions, and [`RunReport`] results.

use std::sync::{Arc, Mutex};

use mwn_graph::{NodeId, Point2, Topology, TopologyDelta};
use mwn_radio::{Medium, PerfectMedium};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{run_pooled, ActivityCore, NodeSet};
use crate::error::SimError;
use crate::faults::{Fault, Followup, Lie};
use crate::network::{Corruptor, StepActivity};
use crate::observable::Observable;
use crate::protocol::{Activity, Corruptible, Protocol};
use crate::rng::derive_seed;
use crate::scenario::TopologyDynamics;
use crate::stop::{Obs, RunReport, StopWhen};
use crate::wire::WireBeacon;

/// One serialized beacon in flight: the wire bytes plus the routing
/// metadata a link layer would carry in the frame header.
struct ActorFrame {
    sender: NodeId,
    epoch: u32,
    payload: Arc<[u8]>,
}

/// A bounded multi-producer mailbox: the channel end of one actor.
///
/// The bound is the actor's in-degree — the protocol sends at most one
/// beacon per neighbor per period, so a push can never block and an
/// overflow is a driver bug, not backpressure.
struct Mailbox {
    capacity: usize,
    queue: Mutex<Vec<ActorFrame>>,
}

impl Mailbox {
    fn new(capacity: usize) -> Self {
        Mailbox {
            capacity,
            queue: Mutex::new(Vec::new()),
        }
    }

    fn push(&self, frame: ActorFrame) {
        let mut q = self.queue.lock().expect("mailbox lock");
        assert!(
            q.len() < self.capacity.max(1),
            "mailbox overflow: more than one frame per neighbor per period"
        );
        q.push(frame);
    }

    fn drain_into(&self, out: &mut Vec<ActorFrame>) {
        out.clear();
        out.append(&mut self.queue.lock().expect("mailbox lock"));
    }
}

/// Shares the scenario's medium across the send-phase workers and
/// replays its drop decisions on the round driver's per-(period,
/// sender) RNG streams — the actor fabric's stand-in for the ether.
struct MediumProxy<'a, M> {
    medium: &'a M,
    medium_base: u64,
}

impl<M: Medium> MediumProxy<'_, M> {
    /// Which neighbors hear `sender`'s period-`k` frame; returns the
    /// attempted copy count. Identical stream keying to the round
    /// driver's delivery phase, so both drivers drop the same copies.
    fn fates(
        &self,
        topo: &Topology,
        period: u64,
        sender: NodeId,
        heard: &mut Vec<NodeId>,
    ) -> usize {
        let mut rng = crate::rng::split_rng(self.medium_base, period, u64::from(sender.value()));
        self.medium.proxy_fates(topo, sender, &mut rng, heard)
    }
}

/// The per-candidate outcome of one receive-phase actor execution,
/// merged back by the governor in deterministic (sorted) order.
struct NodeOutcome<P: Protocol> {
    /// The actor's post-period state; `None` when the actor stayed
    /// inactive (gated, no pending guards, nothing fresh in the mail).
    state: Option<P::State>,
    /// Reception-row patches: `(adjacency slot, incorporated epoch)`.
    patches: Vec<(u32, u32)>,
    receives: u32,
    changed: bool,
}

/// The actor driver. Build one through
/// [`Scenario::build_actors`](crate::Scenario::build_actors).
pub struct ActorDriver<P: Protocol, M: Medium = PerfectMedium> {
    protocol: P,
    medium: M,
    topo: Topology,
    core: ActivityCore<P>,
    threads: usize,
    period: u64,
    force_eager: bool,
    mailboxes: Vec<Mailbox>,
    scripted: Vec<(u64, Fault)>,
    next_scripted: usize,
    /// Timed second phases of fired faults (resurrections, healings,
    /// lie expiries), as `(due_period, seq, followup)`; fired in
    /// ascending `(due, seq)` order before that period's scripted
    /// faults, which fire before its slot release.
    followups: Vec<(u64, u64, Followup<P>)>,
    followup_seq: u64,
    corruptor: Option<Corruptor<P>>,
    fault_rng: StdRng,
    dynamics: Option<Box<dyn TopologyDynamics + Send>>,
    env_changed: bool,
    messages_total: u64,
    last_activity: StepActivity,
    scratch_nodes: Vec<NodeId>,
    stale_buf: Vec<NodeId>,
    senders_buf: Vec<NodeId>,
    dirty_buf: Vec<NodeId>,
    touched_buf: Vec<NodeId>,
    touched: NodeSet,
}

impl<P, M> ActorDriver<P, M>
where
    P: Protocol,
    P::Beacon: WireBeacon,
    M: Medium + Sync,
{
    /// Creates the actor fabric over `topo` with `threads` worker
    /// threads (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless the medium supports
    /// shared-reference fate evaluation ([`Medium::proxyable`]) —
    /// contention-coupled media (CSMA) serialize all senders through
    /// one channel state and cannot be replayed concurrently. The
    /// message names the medium and its gated-contention status, so a
    /// user who just watched CSMA gate on the round/event drivers
    /// learns that the statistical-occupancy contract does *not* carry
    /// over to message-passing actors.
    pub fn new(
        protocol: P,
        medium: M,
        topo: Topology,
        seed: u64,
        threads: usize,
    ) -> Result<Self, SimError> {
        if !medium.proxyable() {
            let status = if medium.gated_contention() {
                "its gated-contention contract (statistical slot occupancy) \
                 covers the round and event drivers only"
            } else {
                "it offers no gated-contention contract either"
            };
            return Err(SimError::InvalidConfig(format!(
                "medium `{}` cannot back the actor driver: per-sender frame \
                 fates must be evaluable through a shared reference \
                 (Medium::proxyable), and {status}",
                medium.name()
            )));
        }
        let core = ActivityCore::new(&protocol, &topo, seed);
        let mailboxes = topo.nodes().map(|p| Mailbox::new(topo.degree(p))).collect();
        Ok(ActorDriver {
            protocol,
            medium,
            core,
            threads: threads.max(1),
            period: 0,
            force_eager: false,
            mailboxes,
            scripted: Vec::new(),
            next_scripted: 0,
            followups: Vec::new(),
            followup_seq: 0,
            corruptor: None,
            fault_rng: StdRng::seed_from_u64(derive_seed(seed, u64::MAX - 2)),
            dynamics: None,
            env_changed: false,
            messages_total: 0,
            last_activity: StepActivity::default(),
            scratch_nodes: Vec::new(),
            stale_buf: Vec::new(),
            senders_buf: Vec::new(),
            dirty_buf: Vec::new(),
            touched_buf: Vec::new(),
            touched: NodeSet::new(topo.len()),
            topo,
        })
    }

    pub(crate) fn install_script(
        &mut self,
        scripted: Vec<(u64, Fault)>,
        corruptor: Option<Corruptor<P>>,
    ) {
        self.scripted = scripted;
        self.next_scripted = 0;
        self.corruptor = corruptor;
    }

    pub(crate) fn install_dynamics(&mut self, dynamics: Box<dyn TopologyDynamics + Send>) {
        self.dynamics = Some(dynamics);
    }

    /// Re-derives every mailbox bound after a topology change (the
    /// in-degree bound follows the adjacency lists).
    fn resize_mailboxes(&mut self) {
        for p in self.topo.nodes() {
            self.mailboxes[p.index()].capacity = self.topo.degree(p);
        }
    }

    /// `true` when the driver is currently using dirty-set (gated)
    /// scheduling — same contract as [`crate::Network::is_gated`].
    pub fn is_gated(&self) -> bool {
        !self.force_eager
            && self.protocol.activity() == Activity::Gated
            && self.medium.independent_fates()
    }

    /// Pins eager scheduling (`true`) or restores the automatic choice.
    pub fn set_eager(&mut self, eager: bool) {
        if self.force_eager && !eager {
            self.core.table.mark_all(&self.topo);
        }
        self.force_eager = eager;
    }

    /// The worker-thread count the actor pool multiplexes over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn apply_dynamics(&mut self) {
        let Some(mut dynamics) = self.dynamics.take() else {
            return;
        };
        let step = self.period;
        if let Some(moves) = dynamics.next_moves(step) {
            if !moves.is_empty() {
                let delta = self.topo.apply_moves(moves);
                self.apply_delta(&delta);
            }
        } else if let Some(topo) = dynamics.next_topology(step) {
            assert_eq!(
                topo.len(),
                self.topo.len(),
                "topology dynamics must preserve the node count"
            );
            self.topo.clone_from(topo);
            self.core.table.mark_all(&self.topo);
            self.resize_mailboxes();
            self.env_changed = true;
        }
        self.dynamics = Some(dynamics);
    }

    fn apply_delta(&mut self, delta: &TopologyDelta) {
        if self.core.apply_delta(&self.protocol, &self.topo, delta) {
            self.env_changed = true;
        }
        self.resize_mailboxes();
    }

    fn corrupt_scripted(&mut self, p: NodeId) {
        let mut rng = self.core.corrupt_rng(p);
        let corruptor = self
            .corruptor
            .as_ref()
            .expect("Scenario::faults installs the corruption hook");
        corruptor(
            &self.protocol,
            p,
            &mut self.core.table.states[p.index()],
            &mut rng,
        );
        self.core.wake_mutated(p, &self.topo);
    }

    fn pick_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        let mut picks = std::mem::take(&mut self.scratch_nodes);
        picks.clear();
        let fraction = fraction.clamp(0.0, 1.0);
        for p in self.topo.nodes() {
            if self.fault_rng.random_bool(fraction) {
                picks.push(p);
            }
        }
        picks
    }

    /// Fires every scripted fault due at the current period — **before**
    /// the period's beacon slots are released. This is the actor-side
    /// ordering contract: at equal logical timestamps, fault ≤ send, so
    /// a frame is never evaluated against a pre-fault topology (see
    /// `tests/fault_ordering.rs`).
    fn fire_scripted(&mut self) {
        while self.next_scripted < self.scripted.len()
            && self.scripted[self.next_scripted].0 <= self.period
        {
            let fault = self.scripted[self.next_scripted].1.clone();
            self.next_scripted += 1;
            self.dispatch_fault(&fault);
        }
    }

    /// Applies one fault right now. Shared by the scripted stream and
    /// [`ActorDriver::inject`].
    fn dispatch_fault(&mut self, fault: &Fault) {
        self.env_changed = true;
        match fault {
            Fault::CorruptNode(p) => self.corrupt_scripted(*p),
            Fault::CorruptAll => {
                for i in 0..self.topo.len() {
                    self.corrupt_scripted(NodeId::new(i as u32));
                }
            }
            Fault::CorruptFraction(f) => {
                let picks = self.pick_fraction(*f);
                for &p in &picks {
                    self.corrupt_scripted(p);
                }
                self.scratch_nodes = picks;
            }
            Fault::Isolate(p) => self.isolate(*p),
            Fault::SetTopology(topo) => self
                .set_topology(topo.clone())
                .expect("scripted topology keeps the node count"),
            Fault::CrashRecover { node, dark_for } => {
                let state = self.core.table.states[node.index()].clone();
                let links = self.topo.neighbors(*node).to_vec();
                self.isolate(*node);
                self.push_followup(
                    self.period + (*dark_for).max(1),
                    Followup::Resurrect {
                        node: *node,
                        state,
                        links,
                    },
                );
            }
            Fault::ByzantineBeacon { node, lie, until } => {
                let beacon = match lie {
                    Lie::Forged => {
                        let corruptor = self
                            .corruptor
                            .as_ref()
                            .expect("Scenario::faults installs the corruption hook");
                        let mut rng = self.core.corrupt_rng(*node);
                        let mut fake = self.core.table.states[node.index()].clone();
                        corruptor(&self.protocol, *node, &mut fake, &mut rng);
                        self.protocol.beacon(*node, &fake)
                    }
                    Lie::Replayed => self.core.table.beacons[node.index()].clone(),
                };
                self.core.install_lie(&self.topo, *node, beacon);
                self.push_followup(
                    (*until).max(self.period + 1),
                    Followup::ClearLie { node: *node },
                );
            }
            Fault::PartitionHeal { cut, heal_at } => {
                let mut in_cut = vec![false; self.topo.len()];
                for &p in cut {
                    in_cut[p.index()] = true;
                }
                let edges: Vec<(NodeId, NodeId)> = self
                    .topo
                    .edges()
                    .filter(|&(u, v)| in_cut[u.index()] != in_cut[v.index()])
                    .collect();
                self.sever_edges(edges, *heal_at);
            }
            Fault::Jam { region, until } => {
                let members = region.members(&self.topo);
                let mut jammed = vec![false; self.topo.len()];
                for &p in &members {
                    jammed[p.index()] = true;
                }
                let edges: Vec<(NodeId, NodeId)> = self
                    .topo
                    .edges()
                    .filter(|&(u, v)| jammed[u.index()] || jammed[v.index()])
                    .collect();
                self.sever_edges(edges, *until);
            }
        }
    }

    /// Removes `edges` (all currently present) through the incremental
    /// delta path and schedules their restoration.
    fn sever_edges(&mut self, edges: Vec<(NodeId, NodeId)>, restore_at: u64) {
        if edges.is_empty() {
            return;
        }
        for &(u, v) in &edges {
            self.topo.remove_edge(u, v);
        }
        let delta = TopologyDelta {
            removed: edges.clone(),
            ..TopologyDelta::default()
        };
        self.apply_delta(&delta);
        self.push_followup(
            restore_at.max(self.period + 1),
            Followup::RestoreEdges { edges },
        );
    }

    /// Re-adds whichever of `edges` are still absent, through the
    /// incremental delta path.
    fn restore_edges(&mut self, edges: &[(NodeId, NodeId)]) {
        let mut added = Vec::new();
        for &(u, v) in edges {
            if !self.topo.has_edge(u, v) && self.topo.add_edge(u, v).is_ok() {
                added.push((u, v));
            }
        }
        let delta = TopologyDelta {
            added,
            ..TopologyDelta::default()
        };
        self.apply_delta(&delta);
    }

    fn push_followup(&mut self, due: u64, followup: Followup<P>) {
        let seq = self.followup_seq;
        self.followup_seq += 1;
        self.followups.push((due, seq, followup));
    }

    /// Fires every due followup in ascending `(due, seq)` order —
    /// before this period's scripted faults, which fire before its
    /// slot release.
    fn fire_followups(&mut self) {
        if self.followups.is_empty() {
            return;
        }
        let now = self.period;
        let mut due: Vec<(u64, u64, Followup<P>)> = Vec::new();
        let mut i = 0;
        while i < self.followups.len() {
            if self.followups[i].0 <= now {
                due.push(self.followups.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|&(d, seq, _)| (d, seq));
        for (_, _, followup) in due {
            self.apply_followup(followup);
        }
    }

    fn apply_followup(&mut self, followup: Followup<P>) {
        self.env_changed = true;
        match followup {
            Followup::Resurrect { node, state, links } => {
                self.core.table.states[node.index()] = state;
                self.core.wake_mutated(node, &self.topo);
                let edges: Vec<(NodeId, NodeId)> = links
                    .iter()
                    .map(|&q| if node < q { (node, q) } else { (q, node) })
                    .collect();
                self.restore_edges(&edges);
            }
            Followup::RestoreEdges { edges } => self.restore_edges(&edges),
            Followup::ClearLie { node } => {
                self.core.clear_lie(&self.protocol, &self.topo, node);
            }
        }
    }

    /// Executes one beacon period of the actor fabric; returns the new
    /// period count.
    ///
    /// One call is one governor cycle: slot release (dynamics, faults,
    /// beacon refresh), the concurrent send phase, the quiescence
    /// barrier, and the concurrent receive/update phase.
    pub fn step(&mut self) -> u64 {
        self.env_changed = false;
        self.core.table.changed.clear();
        self.apply_dynamics();
        self.fire_followups();
        self.fire_scripted();
        let eager = !self.is_gated();
        if eager {
            self.core.table.update_dirty.insert_all();
            self.core.table.beacon_stale.insert_all();
            self.core.table.send_pending.insert_all();
        }

        // Slot release: refresh the beacons of state-changed actors and
        // pick this period's senders (serial — it touches the shared
        // epoch column, and is cheap relative to the phases it gates).
        let mut stale_buf = std::mem::take(&mut self.stale_buf);
        self.core
            .table
            .beacon_stale
            .drain_sorted_into(&mut stale_buf);
        for &p in &stale_buf {
            self.core.refresh_beacon(&self.protocol, &self.topo, p);
        }
        self.stale_buf = stale_buf;
        let mut senders = std::mem::take(&mut self.senders_buf);
        self.core
            .table
            .send_pending
            .collect_sorted_into(&mut senders);

        // Send phase: released actors broadcast concurrently. Each
        // evaluates its fates through the shared medium proxy, encodes
        // its beacon once, and pushes one frame per lucky receiver.
        // Cross-sender push order into a mailbox is whatever the OS
        // scheduler makes of it — the genuine nondeterminism this
        // driver exists to exercise.
        let period = self.period;
        let proxy = MediumProxy {
            medium: &self.medium,
            medium_base: self.core.medium_base,
        };
        let (mut attempted, mut delivered) = (0usize, 0usize);
        {
            let topo = &self.topo;
            let table = &self.core.table;
            let mailboxes = &self.mailboxes;
            let sent = run_pooled(senders.len(), self.threads, |i| {
                let s = senders[i];
                let mut heard = Vec::new();
                let attempted = proxy.fates(topo, period, s, &mut heard);
                if heard.is_empty() {
                    return (attempted, 0usize);
                }
                let mut bytes = Vec::new();
                table.beacons[s.index()].encode(&mut bytes);
                let payload: Arc<[u8]> = bytes.into();
                let epoch = table.epoch[s.index()];
                for &r in &heard {
                    mailboxes[r.index()].push(ActorFrame {
                        sender: s,
                        epoch,
                        payload: payload.clone(),
                    });
                }
                (attempted, heard.len())
            });
            for (a, d) in sent {
                attempted += a;
                delivered += d;
            }
        }

        // Quiescence barrier: run_pooled joined its workers, so every
        // released slot has delivered. Release the receive side: the
        // candidates are actors with pending guards plus the touched
        // receivers (under gating a candidate only actually runs when
        // its mail contains an epoch it has not incorporated yet —
        // mirroring the round driver's freshness kernel).
        let mut dirty_buf = std::mem::take(&mut self.dirty_buf);
        self.core
            .table
            .update_dirty
            .drain_sorted_into(&mut dirty_buf);
        for &s in &senders {
            for &r in self.topo.neighbors(s) {
                self.touched.insert(r);
            }
        }
        let mut touched_buf = std::mem::take(&mut self.touched_buf);
        self.touched.drain_sorted_into(&mut touched_buf);

        let mut receives = 0usize;
        let mut updates = 0usize;
        {
            let topo = &self.topo;
            let table = &self.core.table;
            let protocol = &self.protocol;
            let core = &self.core;
            let mailboxes = &self.mailboxes;
            // Sorted union of the two candidate lists, with a "guards
            // pending" flag per entry.
            let candidates = merge_candidates(&dirty_buf, &touched_buf);
            let outcomes: Vec<NodeOutcome<P>> = run_pooled(candidates.len(), self.threads, |i| {
                let (r, was_dirty) = candidates[i];
                let mut inbox = Vec::new();
                mailboxes[r.index()].drain_into(&mut inbox);
                let mut state: Option<P::State> = None;
                let mut patches = Vec::new();
                let mut receives = 0u32;
                for frame in &inbox {
                    // A frame whose link a fault severed at this
                    // very timestamp is dead air (fault ≤ delivery).
                    let Ok(slot) = topo.neighbors(r).binary_search(&frame.sender) else {
                        continue;
                    };
                    if !eager && table.heard.get(r.index(), slot) == frame.epoch {
                        continue; // already incorporated: a state no-op
                    }
                    let beacon = P::Beacon::decode(&frame.payload)
                        .expect("wire beacons round-trip losslessly");
                    let s = state.get_or_insert_with(|| table.states[r.index()].clone());
                    protocol.receive(r, s, frame.sender, &beacon, period);
                    patches.push((slot as u32, frame.epoch));
                    receives += 1;
                }
                if !was_dirty && state.is_none() {
                    // Gated and nothing fresh: the actor never wakes.
                    return NodeOutcome {
                        state: None,
                        patches,
                        receives,
                        changed: false,
                    };
                }
                let s = state.get_or_insert_with(|| table.states[r.index()].clone());
                let mut rng = core.update_rng(period, r);
                protocol.update(r, s, period, &mut rng);
                let changed = !eager
                    && (table.forced_changed.contains(r)
                        || state.as_ref() != Some(&table.states[r.index()]));
                NodeOutcome {
                    state,
                    patches,
                    receives,
                    changed,
                }
            });

            // Ordered merge: the governor owns the table again.
            let table = &mut self.core.table;
            for (i, outcome) in outcomes.into_iter().enumerate() {
                let (r, _) = candidates[i];
                receives += outcome.receives as usize;
                for &(slot, epoch) in &outcome.patches {
                    table.heard.set(r.index(), slot as usize, epoch);
                }
                if let Some(state) = outcome.state {
                    table.states[r.index()] = state;
                    updates += 1;
                }
                if outcome.changed {
                    table.changed.push(r);
                    table.update_dirty.insert(r);
                    table.beacon_stale.insert(r);
                }
            }
        }

        // Retirement: senders every neighbor has caught up with leave
        // the pending set, so lossy media keep re-beaconing until the
        // frame lands (the paper's τ > 0 hypothesis at work).
        if !eager {
            for &s in &senders {
                if self.core.all_caught_up(&self.topo, s) {
                    self.core.table.send_pending.remove(s);
                }
            }
            self.core.table.forced_changed.clear();
        }

        self.last_activity = StepActivity {
            senders: senders.len(),
            frames_attempted: attempted,
            frames_delivered: delivered,
            receives,
            updates,
            changed: self.core.table.changed.len(),
        };
        self.messages_total += senders.len() as u64;
        self.senders_buf = senders;
        self.dirty_buf = dirty_buf;
        self.touched_buf = touched_buf;
        self.period += 1;
        self.period
    }

    /// Runs `periods` governor cycles.
    pub fn run(&mut self, periods: u64) {
        for _ in 0..periods {
            self.step();
        }
    }

    /// Runs until `pred` holds (checked before the first period and
    /// after every period), or `max_periods` is reached.
    pub fn run_until<F>(&mut self, mut pred: F, max_periods: u64) -> Option<u64>
    where
        F: FnMut(&Self) -> bool,
    {
        if pred(self) {
            return Some(self.period);
        }
        while self.period < max_periods {
            self.step();
            if pred(self) {
                return Some(self.period);
            }
        }
        None
    }

    /// Current period count (the governor's virtual clock).
    pub fn now(&self) -> u64 {
        self.period
    }

    /// The topology the actors communicate over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Replaces the topology (same node count); see
    /// [`crate::Network::set_topology`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeCountMismatch`] if the node count
    /// changes.
    pub fn set_topology(&mut self, topo: Topology) -> Result<(), SimError> {
        if topo.len() != self.topo.len() {
            return Err(SimError::NodeCountMismatch {
                expected: self.topo.len(),
                got: topo.len(),
            });
        }
        self.topo = topo;
        self.core.table.mark_all(&self.topo);
        self.resize_mailboxes();
        self.env_changed = true;
        Ok(())
    }

    /// Applies incremental node moves (unit-disk only), waking exactly
    /// the actors whose links changed. Returns the link churn.
    pub fn apply_moves(&mut self, moves: &[(NodeId, Point2)]) -> TopologyDelta {
        let delta = self.topo.apply_moves(moves);
        self.apply_delta(&delta);
        delta
    }

    /// All node states, indexed by [`NodeId`].
    pub fn states(&self) -> &[P::State] {
        &self.core.table.states
    }

    /// The state of one node.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.core.table.states[p.index()]
    }

    /// Mutable state access; the actor is rescheduled (external
    /// mutation is a fault).
    pub fn state_mut(&mut self, p: NodeId) -> &mut P::State {
        self.core.wake_mutated(p, &self.topo);
        &mut self.core.table.states[p.index()]
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Severs every link of `p`; see [`crate::Network::isolate`].
    pub fn isolate(&mut self, p: NodeId) {
        let mut nbrs = std::mem::take(&mut self.scratch_nodes);
        self.core
            .isolate(&self.protocol, &mut self.topo, p, &mut nbrs);
        self.env_changed = true;
        self.scratch_nodes = nbrs;
        self.resize_mailboxes();
    }

    /// Total broadcasts since construction.
    pub fn messages_total(&self) -> u64 {
        self.messages_total
    }

    /// Activity counters of the most recent period.
    pub fn last_activity(&self) -> StepActivity {
        self.last_activity
    }
}

/// Sorted-merge of the dirty and touched candidate lists into
/// `(node, guards pending)` pairs.
fn merge_candidates(dirty: &[NodeId], touched: &[NodeId]) -> Vec<(NodeId, bool)> {
    let mut out = Vec::with_capacity(dirty.len() + touched.len());
    let (mut i, mut j) = (0, 0);
    while i < dirty.len() && j < touched.len() {
        match dirty[i].cmp(&touched[j]) {
            std::cmp::Ordering::Less => {
                out.push((dirty[i], true));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((touched[j], false));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((dirty[i], true));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend(dirty[i..].iter().map(|&p| (p, true)));
    out.extend(touched[j..].iter().map(|&p| (p, false)));
    out
}

impl<P, M> ActorDriver<P, M>
where
    P: Observable,
    P::Beacon: WireBeacon,
    M: Medium + Sync,
{
    /// Projects every node's observable output into `buf`.
    pub fn outputs_into(&self, buf: &mut Vec<P::Output>) {
        buf.clear();
        buf.extend(
            self.core
                .table
                .states
                .iter()
                .enumerate()
                .map(|(i, s)| self.protocol.output(NodeId::new(i as u32), s)),
        );
    }

    /// The observable output of every node.
    pub fn outputs(&self) -> Vec<P::Output> {
        let mut buf = Vec::with_capacity(self.core.table.states.len());
        self.outputs_into(&mut buf);
        buf
    }

    /// Runs until `stop` is satisfied and reports what happened — the
    /// same contract (and the same [`RunReport`]) as
    /// [`crate::Network::run_to`] and the event driver's stop methods.
    pub fn run_to(&mut self, stop: &StopWhen<P>) -> RunReport {
        let start = self.period;
        let mut cursor = stop.cursor();
        let gated = self.is_gated();
        let needs_outputs = stop.needs_outputs();
        let mut outputs: Vec<P::Output> = Vec::with_capacity(self.core.table.states.len());
        if needs_outputs {
            self.outputs_into(&mut outputs);
        }
        let mut verdict = cursor.observe(
            self.period,
            0,
            &self.topo,
            &self.core.table.states,
            &Obs::Full { outputs: &outputs },
        );
        while !verdict.satisfied {
            self.step();
            let obs = if gated {
                let mut output_changed = false;
                if needs_outputs {
                    for &p in &self.core.table.changed {
                        let fresh = self.protocol.output(p, &self.core.table.states[p.index()]);
                        if outputs[p.index()] != fresh {
                            outputs[p.index()] = fresh;
                            output_changed = true;
                        }
                    }
                }
                Obs::Delta {
                    output_changed,
                    state_changed: !self.core.table.changed.is_empty(),
                    env_changed: self.env_changed,
                }
            } else {
                if needs_outputs {
                    self.outputs_into(&mut outputs);
                }
                Obs::Full { outputs: &outputs }
            };
            verdict = cursor.observe(
                self.period,
                self.period - start,
                &self.topo,
                &self.core.table.states,
                &obs,
            );
        }
        RunReport {
            stabilized: cursor.stabilized(),
            steps: self.period - start,
            end_step: self.period,
            satisfied: !verdict.budget_only,
            timed_out: verdict.budget_only,
        }
    }
}

impl<P, M> ActorDriver<P, M>
where
    P: Corruptible,
    P::Beacon: WireBeacon,
    M: Medium + Sync,
{
    /// Corrupts the state of one node arbitrarily.
    pub fn corrupt(&mut self, p: NodeId) {
        let mut rng = self.core.corrupt_rng(p);
        self.protocol
            .corrupt(p, &mut self.core.table.states[p.index()], &mut rng);
        self.core.wake_mutated(p, &self.topo);
    }

    /// Corrupts every node: the adversarial "arbitrary initial
    /// configuration" of the self-stabilization definition.
    pub fn corrupt_all(&mut self) {
        for i in 0..self.topo.len() {
            self.corrupt(NodeId::new(i as u32));
        }
    }

    /// Applies one [`Fault`] right now — the entry point the chaos
    /// harness uses to drive unscripted campaigns. Timed second phases
    /// (resurrection, healing, lie expiry) fire at the start of their
    /// due period, before that period's scripted faults and slot
    /// release.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeCountMismatch`] for a [`Fault::SetTopology`]
    /// that changes the node count.
    pub fn inject(&mut self, fault: &Fault) -> Result<(), SimError> {
        if self.corruptor.is_none() {
            self.corruptor = Some(Box::new(
                |protocol: &P, p, state: &mut P::State, rng: &mut StdRng| {
                    protocol.corrupt(p, state, rng);
                },
            ));
        }
        if let Fault::SetTopology(topo) = fault {
            return self.set_topology(topo.clone());
        }
        self.dispatch_fault(fault);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::stop::StopWhen;
    use mwn_graph::builders;
    use mwn_radio::{BernoulliLoss, SlottedCsma, Thinned};

    /// Gated max-flood over `u32` beacons (already wire-codable).
    struct GatedFlood;

    impl Protocol for GatedFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            *state = (*state).max(node.value());
        }
        fn activity(&self) -> Activity {
            Activity::Gated
        }
        fn beacon_changed(&self, old: &u32, new: &u32) -> bool {
            old != new
        }
    }

    impl Observable for GatedFlood {
        type Output = u32;
        fn output(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
    }

    impl Corruptible for GatedFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }

    fn flood_actors(n: usize, threads: usize) -> ActorDriver<GatedFlood> {
        Scenario::new(GatedFlood)
            .topology(builders::line(n))
            .seed(9)
            .build_actors(threads)
            .expect("valid actor scenario")
    }

    #[test]
    fn flood_converges_and_goes_silent() {
        for threads in [1, 2, 4] {
            let mut driver = flood_actors(12, threads);
            let report = driver.run_to(&StopWhen::stable_for(3).within(200));
            report.expect_stable("the flood converges on the actor fabric");
            assert!(driver.states().iter().all(|&s| s == 11));
            // Silence: a stabilized gated run sends nothing more.
            let before = driver.messages_total();
            driver.run(20);
            assert_eq!(driver.messages_total(), before, "threads={threads}");
            assert_eq!(driver.last_activity().updates, 0);
        }
    }

    #[test]
    fn actor_run_matches_round_driver_byte_for_byte() {
        // GatedFlood receives commute, so each period's outcome is
        // arrival-order independent: the actor fabric must track the
        // synchronous rounds exactly — states, messages and report.
        for (seed, threads) in [(1u64, 1usize), (1, 4), (5, 2), (9, 4)] {
            let topo = builders::grid(6, 6, 1.1 / 5.0);
            let mut net = Scenario::new(GatedFlood)
                .topology(topo.clone())
                .seed(seed)
                .build()
                .unwrap();
            let mut actors = Scenario::new(GatedFlood)
                .topology(topo)
                .seed(seed)
                .build_actors(threads)
                .unwrap();
            let stop = StopWhen::stable_for(3).within(300);
            let net_report = net.run_to(&stop);
            let actor_report = actors.run_to(&stop);
            assert_eq!(net_report, actor_report, "seed={seed} threads={threads}");
            assert_eq!(net.states(), actors.states());
            assert_eq!(net.messages_total(), actors.messages_total());
        }
    }

    #[test]
    fn lossy_medium_replays_the_round_driver_fates() {
        let topo = builders::grid(5, 5, 1.1 / 4.0);
        let mut net = Scenario::new(GatedFlood)
            .medium(BernoulliLoss::new(0.6))
            .topology(topo.clone())
            .seed(3)
            .build()
            .unwrap();
        let mut actors = Scenario::new(GatedFlood)
            .medium(BernoulliLoss::new(0.6))
            .topology(topo)
            .seed(3)
            .build_actors(4)
            .unwrap();
        for _ in 0..40 {
            net.step();
            actors.step();
            let n = net.last_activity();
            let a = actors.last_activity();
            assert_eq!(n.frames_attempted, a.frames_attempted);
            assert_eq!(n.frames_delivered, a.frames_delivered);
        }
        assert_eq!(net.states(), actors.states());
    }

    #[test]
    fn contention_media_are_rejected() {
        let result = Scenario::new(GatedFlood)
            .medium(SlottedCsma::new(8))
            .topology(builders::line(4))
            .seed(1)
            .build_actors(2);
        let Err(err) = result else {
            panic!("contention-coupled media must be rejected");
        };
        assert!(matches!(err, SimError::InvalidConfig(_)));
        // The error must name the offending medium AND its
        // gated-contention status — pinned verbatim so the message
        // cannot silently regress into something less actionable.
        let text = err.to_string();
        assert!(text.contains("actor driver"), "text: {text}");
        assert!(text.contains("medium `slotted-csma`"), "text: {text}");
        assert!(
            text.contains(
                "its gated-contention contract (statistical slot occupancy) \
                 covers the round and event drivers only"
            ),
            "text: {text}"
        );
    }

    #[test]
    fn non_gating_contention_media_are_rejected_with_their_status() {
        let result = Scenario::new(GatedFlood)
            .medium(Thinned::new(SlottedCsma::new(8), 0.9))
            .topology(builders::line(4))
            .seed(1)
            .build_actors(2);
        let Err(err) = result else {
            panic!("wrapped contention media must be rejected");
        };
        let text = err.to_string();
        assert!(text.contains("medium `thinned`"), "text: {text}");
        assert!(
            text.contains("no gated-contention contract either"),
            "text: {text}"
        );
    }

    #[test]
    fn scripted_isolation_cuts_the_actor_topology() {
        use crate::faults::FaultPlan;

        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)));
        let mut driver = Scenario::new(GatedFlood)
            .topology(builders::line(5))
            .seed(2)
            .faults(plan)
            .build_actors(2)
            .expect("valid actor scenario");
        driver
            .run_to(&StopWhen::stable_for(3).within(100))
            .expect_stable("both fragments settle");
        // The isolate fired before period 0's slots: node 2 never
        // beaconed across the severed links, so the left fragment's
        // maximum is 1, not 4.
        assert_eq!(*driver.state(NodeId::new(0)), 1);
        assert_eq!(*driver.state(NodeId::new(1)), 1);
        assert_eq!(*driver.state(NodeId::new(4)), 4);
    }

    #[test]
    fn mobility_ticks_fire_at_period_boundaries() {
        // Two disconnected halves; at period 5 a bridge appears via a
        // scripted topology swap driven through the dynamics hook.
        struct Bridge {
            before: Topology,
            after: Topology,
        }
        impl TopologyDynamics for Bridge {
            fn next_topology(&mut self, step: u64) -> Option<&Topology> {
                Some(if step >= 5 { &self.after } else { &self.before })
            }
        }
        let before = Topology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let after = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut driver = ActorDriver::new(GatedFlood, PerfectMedium, before.clone(), 4, 2)
            .expect("valid actor driver");
        driver.install_dynamics(Box::new(Bridge { before, after }));
        // Before the bridge: the fragments converge separately.
        driver.run(5);
        assert_eq!(*driver.state(NodeId::new(0)), 1, "no link yet");
        // After the bridge the flood crosses it.
        driver
            .run_to(&StopWhen::stable_for(3).within(100))
            .expect_stable("the bridged flood settles");
        assert!(driver.states().iter().all(|&s| s == 3));
    }

    #[test]
    fn merge_candidates_is_a_sorted_union() {
        let d = [NodeId::new(1), NodeId::new(4)];
        let t = [NodeId::new(0), NodeId::new(4), NodeId::new(6)];
        let merged = merge_candidates(&d, &t);
        assert_eq!(
            merged,
            vec![
                (NodeId::new(0), false),
                (NodeId::new(1), true),
                (NodeId::new(4), true),
                (NodeId::new(6), false),
            ]
        );
    }
}
