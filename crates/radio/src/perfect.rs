use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;

use crate::{Delivery, Medium};

/// The collision-free medium: every broadcast reaches every 1-neighbor.
///
/// This realizes the paper's Section 5 simulation abstraction: "in a
/// bounded time Δ(τ), each node is able to locally broadcast one frame
/// and then receive all packets sent by its 1-neighbors. Such a Δ(τ)
/// time unit is called a *step*." With this medium one driver round is
/// exactly one such step, and τ = 1.
///
/// # Examples
///
/// ```
/// use mwn_graph::{builders, NodeId};
/// use mwn_radio::{Medium, PerfectMedium};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let topo = builders::line(3);
/// let mut rng = StdRng::seed_from_u64(0);
/// let d = PerfectMedium.deliver(&topo, &[NodeId::new(1)], &mut rng);
/// assert_eq!(d.heard[0], vec![NodeId::new(1)]);
/// assert_eq!(d.heard[2], vec![NodeId::new(1)]);
/// assert!(d.heard[1].is_empty()); // nodes do not hear themselves
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfectMedium;

impl Medium for PerfectMedium {
    fn deliver_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        for &s in senders {
            self.deliver_from(topo, s, rng, out);
        }
    }

    fn deliver_from(
        &mut self,
        topo: &Topology,
        sender: NodeId,
        _rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        for &r in topo.neighbors(sender) {
            out.attempted += 1;
            out.record(r, sender);
        }
    }

    fn independent_fates(&self) -> bool {
        true
    }

    fn proxyable(&self) -> bool {
        true
    }

    fn proxy_fates(
        &self,
        topo: &Topology,
        sender: NodeId,
        _rng: &mut StdRng,
        heard: &mut Vec<NodeId>,
    ) -> usize {
        heard.extend_from_slice(topo.neighbors(sender));
        topo.degree(sender)
    }

    fn name(&self) -> &'static str {
        "perfect"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use rand::SeedableRng;

    #[test]
    fn all_neighbor_copies_delivered() {
        let topo = builders::complete(5);
        let senders: Vec<NodeId> = topo.nodes().collect();
        let mut rng = StdRng::seed_from_u64(0);
        let d = PerfectMedium.deliver(&topo, &senders, &mut rng);
        assert_eq!(d.attempted, 20); // 5 senders × 4 neighbors
        assert_eq!(d.delivered, 20);
        for r in topo.nodes() {
            assert_eq!(d.heard[r.index()].len(), 4);
            assert!(!d.heard[r.index()].contains(&r));
        }
    }

    #[test]
    fn non_senders_send_nothing() {
        let topo = builders::line(4);
        let mut rng = StdRng::seed_from_u64(0);
        let d = PerfectMedium.deliver(&topo, &[], &mut rng);
        assert_eq!(d.attempted, 0);
        assert!(d.heard.iter().all(Vec::is_empty));
    }

    #[test]
    fn delivery_respects_radio_range() {
        let topo = builders::line(4); // 0-1-2-3
        let mut rng = StdRng::seed_from_u64(0);
        let d = PerfectMedium.deliver(&topo, &[NodeId::new(0)], &mut rng);
        assert_eq!(d.heard[1], vec![NodeId::new(0)]);
        assert!(d.heard[2].is_empty());
        assert!(d.heard[3].is_empty());
    }
}
