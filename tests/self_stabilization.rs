//! Self-stabilization integration tests: convergence from arbitrary
//! configurations and closure of legitimate ones, under every fault
//! scenario the drivers can express (total corruption, partial
//! corruption, repeated corruption mid-convergence, link failures,
//! corruption under a lossy medium).

use rand::SeedableRng;
use selfstab::prelude::*;

fn field(seed: u64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    builders::poisson(250.0, 0.12, &mut rng)
}

#[test]
fn total_corruption_reconverges_to_the_same_fixpoint() {
    let mut net = Network::new(
        DensityCluster::new(ClusterConfig::default()),
        PerfectMedium,
        field(1),
        1,
    );
    net.run(25);
    let fixpoint = extract_clustering(net.states()).expect("stabilized");
    for round in 0..5 {
        net.corrupt_all();
        net.run_until_stable(|_, s| s.output(), 3, 10_000)
            .unwrap_or_else(|| panic!("round {round}: no reconvergence"));
        assert_eq!(
            extract_clustering(net.states()).expect("clean"),
            fixpoint,
            "round {round}"
        );
    }
}

#[test]
fn partial_corruption_reconverges() {
    for fraction in [0.1, 0.5, 0.9] {
        let mut net = Network::new(
            DensityCluster::new(ClusterConfig::default()),
            PerfectMedium,
            field(2),
            2,
        );
        net.run(25);
        let fixpoint = extract_clustering(net.states()).expect("stabilized");
        net.corrupt_fraction(fraction);
        net.run_until_stable(|_, s| s.output(), 3, 10_000)
            .expect("reconverges");
        assert_eq!(extract_clustering(net.states()).expect("clean"), fixpoint);
    }
}

#[test]
fn corruption_during_convergence_is_harmless() {
    // Corrupt before the system ever stabilizes — the definition of
    // self-stabilization makes no assumption about when faults stop.
    let mut net = Network::new(
        DensityCluster::new(ClusterConfig::default()),
        PerfectMedium,
        field(3),
        3,
    );
    for step in [1, 2, 3, 5] {
        net.run(step);
        net.corrupt_fraction(0.4);
    }
    net.run_until_stable(|_, s| s.output(), 3, 10_000)
        .expect("still converges");
    check_legitimate(&net).expect("legitimate after turbulent start");
}

#[test]
fn closure_holds_for_thousands_of_steps() {
    let mut net = Network::new(
        DensityCluster::new(ClusterConfig::default()),
        PerfectMedium,
        field(4),
        4,
    );
    net.run(30);
    let fixpoint = extract_clustering(net.states()).expect("stabilized");
    for _ in 0..20 {
        net.run(100);
        assert_eq!(
            extract_clustering(net.states()).expect("clean"),
            fixpoint,
            "output drifted without any fault"
        );
    }
}

#[test]
fn corruption_under_lossy_medium_reconverges() {
    let mut net = Network::new(
        DensityCluster::new(ClusterConfig {
            cache_ttl: 30,
            ..ClusterConfig::default()
        }),
        BernoulliLoss::new(0.6),
        field(5),
        5,
    );
    net.run_until_stable(|_, s| s.output(), 25, 20_000)
        .expect("initial convergence");
    let fixpoint = extract_clustering(net.states()).expect("stabilized");
    net.corrupt_all();
    net.run_until_stable(|_, s| s.output(), 25, 40_000)
        .expect("reconvergence under loss");
    assert_eq!(extract_clustering(net.states()).expect("clean"), fixpoint);
}

#[test]
fn dag_names_self_heal_with_the_full_protocol() {
    let topo = builders::grid(8, 8, 0.2);
    let gamma = NameSpace::delta_squared(topo.max_degree());
    let config = ClusterConfig {
        dag: Some(DagConfig {
            gamma,
            variant: DagVariant::Randomized,
        }),
        ..ClusterConfig::default()
    };
    let mut net = Network::new(DensityCluster::new(config), PerfectMedium, topo, 6);
    net.run_until_stable(|_, s| (s.dag_id, s.head, s.parent), 4, 1000)
        .expect("stabilizes");
    net.corrupt_all();
    net.run_until_stable(|_, s| (s.dag_id, s.head, s.parent), 4, 1000)
        .expect("reconverges");
    check_legitimate(&net).expect("names and election both legitimate");
}

#[test]
fn link_failure_and_recovery_restabilizes() {
    let topo = field(7);
    let mut net = Network::new(
        DensityCluster::new(ClusterConfig::default()),
        PerfectMedium,
        topo.clone(),
        7,
    );
    net.run(25);
    let before = extract_clustering(net.states()).expect("stabilized");

    // Kill the busiest node's radio.
    let busiest = topo
        .nodes()
        .max_by_key(|&p| topo.degree(p))
        .expect("non-empty");
    net.isolate(busiest);
    net.run_until_stable(|_, s| s.output(), 5, 5000)
        .expect("restabilizes without the hub");
    let during = extract_clustering(net.states()).expect("clean");
    assert!(during.is_head(busiest), "an isolated node heads itself");

    // Radio comes back: the network returns to the original fixpoint.
    net.set_topology(topo);
    net.run_until_stable(|_, s| s.output(), 5, 5000)
        .expect("restabilizes after recovery");
    assert_eq!(extract_clustering(net.states()).expect("clean"), before);
}

#[test]
fn event_driver_corruption_reconverges() {
    let mut driver = EventDriver::new(
        DensityCluster::new(ClusterConfig {
            cache_ttl: 25,
            ..ClusterConfig::default()
        }),
        field(8),
        EventConfig::default(),
        8,
    );
    // The quiet window must outlast the cache TTL (25 periods):
    // corrupted ghost entries influence the output *constantly* until
    // they expire, so a shorter window could report them as "stable".
    driver
        .run_until_stable(|_, s| s.output(), 1.0, 30, 3000.0)
        .expect("initial convergence");
    let fixpoint = extract_clustering(driver.states()).expect("stabilized");
    driver.corrupt_all();
    driver
        .run_until_stable(|_, s| s.output(), 1.0, 30, 6000.0)
        .expect("reconvergence");
    assert_eq!(extract_clustering(driver.states()).expect("clean"), fixpoint);
}
