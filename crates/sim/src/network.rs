use mwn_graph::{NodeId, Point2, Topology, TopologyDelta};
use mwn_radio::{Delivery, Medium, Occupancy};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::{kernels, run_sharded, ActivityCore};
use crate::faults::{Followup, Lie, Region};
use crate::rng::{derive_seed, split_rng};
use crate::scenario::TopologyDynamics;
use crate::stop::{Obs, RunReport, StopWhen};
use crate::{Activity, Corruptible, Fault, Observable, Protocol, SimError, StabilityTracker};

/// The boxed corruption hook installed by [`crate::Scenario::faults`]:
/// it captures the [`Corruptible`] capability so scripted faults can
/// fire inside [`Network::step`] without bounding every driver method.
pub(crate) type Corruptor<P> =
    Box<dyn Fn(&P, NodeId, &mut <P as Protocol>::State, &mut StdRng) + Send + Sync>;

/// What one [`Network::step`] actually did — the activity counters of
/// the dirty-set engine.
///
/// For a *silent* protocol under gated scheduling, every field except
/// `updates`/`receives` drops to zero once the network stabilizes: no
/// node broadcasts, no frame flies, no guard runs. Under eager
/// scheduling `senders` and `updates` are always the node count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepActivity {
    /// Nodes that broadcast a beacon this step.
    pub senders: usize,
    /// (sender, 1-neighbor) frame copies that were in range.
    pub frames_attempted: usize,
    /// Frame copies actually received.
    pub frames_delivered: usize,
    /// [`Protocol::receive`] invocations.
    pub receives: usize,
    /// [`Protocol::update`] invocations.
    pub updates: usize,
    /// Nodes whose state changed (tracked under gated scheduling only;
    /// 0 under eager scheduling).
    pub changed: usize,
}

/// How many worker shards the per-step active-set pass uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShardMode {
    /// Size from `available_parallelism`, and only shard when the
    /// active set is large enough to amortize thread spawn.
    Auto,
    /// Always split into exactly this many shards (equivalence tests,
    /// the CI forced-shard matrix leg).
    Forced(usize),
}

/// Below this many active nodes the sharded pass is not worth the
/// scoped-thread round trip; `Auto` falls back to the serial loop.
const AUTO_SHARD_MIN_ACTIVE: usize = 1024;

/// One shard's reusable outcome arena for the sharded phase-5 pass:
/// the worker appends its chunk's results here (SoA: post-pass states,
/// flattened reception patches, change flags), and the ordered merge
/// drains them back into the table. Buffers keep their capacity across
/// steps, so the steady-state converging loop performs zero per-node
/// heap allocation; the `align(64)` pads each arena onto its own cache
/// line so two workers never write the same line (the padding audit in
/// [`crate::kernels`]).
#[repr(align(64))]
struct ShardScratch<P: Protocol> {
    /// Start of this shard's contiguous active-buffer chunk.
    lo: usize,
    /// End (exclusive) of the chunk.
    hi: usize,
    /// Post-pass state per chunk node.
    states: Vec<P::State>,
    /// Reception-row writes, flattened: `patch_len[k]` entries belong
    /// to chunk node `k`; adjacency-slot and epoch columns.
    patch_idx: Vec<u32>,
    patch_epoch: Vec<u32>,
    patch_len: Vec<u32>,
    /// Whether the pass changed the node's state (gated only).
    changed: Vec<bool>,
    /// [`Protocol::receive`] invocations in this chunk.
    receives: u32,
}

impl<P: Protocol> ShardScratch<P> {
    fn new() -> Self {
        ShardScratch {
            lo: 0,
            hi: 0,
            states: Vec::new(),
            patch_idx: Vec::new(),
            patch_epoch: Vec::new(),
            patch_len: Vec::new(),
            changed: Vec::new(),
            receives: 0,
        }
    }

    /// Re-arms the arena for a fresh chunk, keeping every buffer's
    /// capacity.
    fn reset(&mut self, lo: usize, hi: usize) {
        self.lo = lo;
        self.hi = hi;
        self.states.clear();
        self.patch_idx.clear();
        self.patch_epoch.clear();
        self.patch_len.clear();
        self.changed.clear();
        self.receives = 0;
    }
}

/// The synchronous round driver: one call to [`Network::step`] is one
/// of the paper's Δ(τ) "steps" (Section 5).
///
/// Within a step, in order:
///
/// 1. if the scenario attached mobility dynamics, the topology moves
///    (incrementally via [`Topology::apply_moves`] when the dynamics
///    provide per-step moves);
/// 2. scripted faults due at this step fire;
/// 3. every *scheduled* node snapshots its shared variables
///    ([`Protocol::beacon`]) — simultaneous, so information moves at
///    most one hop per step, exactly as in the paper's Table 2;
/// 4. the [`Medium`] decides which frame copies arrive;
/// 5. receivers process arrivals ([`Protocol::receive`]);
/// 6. scheduled nodes execute their enabled guarded assignments
///    ([`Protocol::update`]).
///
/// # Activity-driven scheduling
///
/// The paper's algorithms are **silent**: in the legitimate
/// configuration nothing changes any more. The driver exploits this
/// through the shared [`crate::engine`] core (dirty sets, beacon
/// epochs, per-edge reception tracking): when the protocol opts in
/// ([`Activity::Gated`]) *and* the medium supports gating, a node is
/// scheduled only if its state changed last round, a beacon it heard
/// changed, a topology delta touched it, or a fault hit it — quiescent
/// regions cost (near) zero work and zero messages.
///
/// Two media classes support gating. Per-copy independent fates
/// ([`Medium::independent_fates`]): all randomness is derived per
/// (step, node) / (step, sender) from the constructor seed
/// ([`crate::split_rng`]), so skipping an idle node consumes no
/// randomness and gated and eager execution are **byte-identical**
/// (property-tested in `tests/engine_equivalence.rs`). Contention
/// media implementing [`Medium::gated_contention`]: retired senders
/// keep *occupying* their slot statistically (an [`Occupancy`] summary
/// maintained incrementally by the engine), active frames fold that
/// population into their collision draws, and gated ≡ eager holds
/// **distributionally** — Wilson-band agreement on stabilization time,
/// delivery ratio and outputs (`tests/gated_csma.rs`). Fault injection
/// draws from a dedicated stream and never perturbs frame delivery.
///
/// # Sharded execution
///
/// The per-node pass of a step (phase 5) only ever writes a node's own
/// state and reception row while reading frozen beacon columns, so it
/// is embarrassingly parallel. [`Network::set_shards`] splits the
/// active set into deterministic contiguous chunks, runs them on the
/// shared worker pool, and merges the outcomes **in active-set order**
/// — sharded and serial execution are byte-identical for every shard
/// count (states, outputs, `RunReport`s), which is what makes the
/// parallelism testable on any machine. The `MWN_FORCE_SHARDS`
/// environment variable forces a shard count at construction (the CI
/// matrix leg runs the whole suite with 4).
///
/// Networks are normally built through [`crate::Scenario`]; the
/// constructor and the closure-projection run methods remain available
/// as the low-level interface.
pub struct Network<P: Protocol, M> {
    protocol: P,
    medium: M,
    topo: Topology,
    /// The shared activity core: columnar node table, dirty sets and
    /// derived-stream bases.
    core: ActivityCore<P>,
    /// Sequential stream for contention-coupled media (whose rounds
    /// are evaluated with the full sender set in one call).
    medium_rng: StdRng,
    /// Sequential stream for fault-site selection.
    fault_rng: StdRng,
    step: u64,
    /// `true` when the user pinned the driver to eager scheduling.
    force_eager: bool,
    /// How the per-step active pass is split across workers.
    shards: ShardMode,
    /// Scenario-scripted faults, fired inside [`Network::step`].
    scripted: Vec<(u64, Fault)>,
    next_scripted: usize,
    /// Timed second phases of fired faults (resurrections, healings,
    /// lie expiries), as `(due_step, seq, followup)`; fired in
    /// ascending `(due, seq)` order before that step's scripted faults.
    followups: Vec<(u64, u64, Followup<P>)>,
    followup_seq: u64,
    corruptor: Option<Corruptor<P>>,
    dynamics: Option<Box<dyn TopologyDynamics + Send>>,
    // Reused step buffers: no per-step allocation in steady state.
    senders_buf: Vec<NodeId>,
    active_buf: Vec<NodeId>,
    stale_buf: Vec<NodeId>,
    scratch_nodes: Vec<NodeId>,
    /// Pooled per-shard outcome arenas for the sharded active pass.
    shard_scratch: Vec<ShardScratch<P>>,
    delivery: Delivery,
    // Per-step observability for stop conditions and metrics.
    last_activity: StepActivity,
    env_changed: bool,
    messages_total: u64,
}

impl<P: Protocol, M> std::fmt::Debug for Network<P, M>
where
    P: std::fmt::Debug,
    M: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("protocol", &self.protocol)
            .field("medium", &self.medium)
            .field("topo", &self.topo)
            .field("states", &self.core.table.states)
            .field("step", &self.step)
            .field("scripted", &self.scripted.len())
            .field("dynamics", &self.dynamics.is_some())
            .finish_non_exhaustive()
    }
}

impl<P: Protocol, M: Medium> Network<P, M> {
    /// Creates a network of cold-start nodes over `topo`.
    pub fn new(protocol: P, medium: M, topo: Topology, seed: u64) -> Self {
        let mut core = ActivityCore::new(&protocol, &topo, seed);
        if protocol.activity() == Activity::Gated && medium.gated_contention() {
            // Contention media can only gate silent senders if the
            // retired population keeps occupying its slots; the engine
            // maintains the summary alongside `send_pending`.
            core.table.occupancy = Some(Occupancy::new(topo.len()));
        }
        let shards = std::env::var("MWN_FORCE_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|k| ShardMode::Forced(k.max(1)))
            .unwrap_or(ShardMode::Auto);
        Network {
            core,
            protocol,
            medium,
            topo,
            medium_rng: StdRng::seed_from_u64(derive_seed(seed, u64::MAX)),
            fault_rng: StdRng::seed_from_u64(derive_seed(seed, u64::MAX - 2)),
            step: 0,
            force_eager: false,
            shards,
            scripted: Vec::new(),
            next_scripted: 0,
            followups: Vec::new(),
            followup_seq: 0,
            corruptor: None,
            dynamics: None,
            senders_buf: Vec::new(),
            active_buf: Vec::new(),
            stale_buf: Vec::new(),
            scratch_nodes: Vec::new(),
            shard_scratch: Vec::new(),
            delivery: Delivery::empty(0),
            last_activity: StepActivity::default(),
            env_changed: false,
            messages_total: 0,
        }
    }

    pub(crate) fn install_script(
        &mut self,
        scripted: Vec<(u64, Fault)>,
        corruptor: Option<Corruptor<P>>,
    ) {
        self.scripted = scripted;
        self.next_scripted = 0;
        self.corruptor = corruptor;
    }

    pub(crate) fn install_dynamics(&mut self, dynamics: Box<dyn TopologyDynamics + Send>) {
        self.dynamics = Some(dynamics);
    }

    /// Detaches any topology dynamics attached by
    /// [`crate::Scenario::mobility`] — "the nodes stop moving" — so
    /// the protocol can settle on the final topology. Returns whether
    /// dynamics were attached.
    pub fn stop_dynamics(&mut self) -> bool {
        self.dynamics.take().is_some()
    }

    /// `true` when the driver is currently using dirty-set (gated)
    /// scheduling: the protocol declared [`Activity::Gated`], the
    /// medium supports it — independent frame fates
    /// ([`Medium::independent_fates`], byte-identical gating) or the
    /// gated-contention contract
    /// ([`Medium::gated_contention`], distributional gating via
    /// statistical slot occupancy) — and the user did not pin eager
    /// scheduling.
    pub fn is_gated(&self) -> bool {
        !self.force_eager
            && self.protocol.activity() == Activity::Gated
            && (self.medium.independent_fates() || self.medium.gated_contention())
    }

    /// The statistical slot-occupancy summary of the retired
    /// population — `Some` exactly when the driver was built to gate a
    /// contention medium. Exposed for the occupancy property tests and
    /// diagnostics; the counts always match a from-scratch recount
    /// over the current topology.
    pub fn occupancy(&self) -> Option<&Occupancy> {
        self.core.table.occupancy.as_ref()
    }

    /// Pins the driver to eager scheduling (`true`) or restores the
    /// automatic choice (`false`). Used by equivalence tests and
    /// before/after benchmarks; both modes are byte-identical for
    /// protocols honoring the [`Activity::Gated`] contract.
    pub fn set_eager(&mut self, eager: bool) {
        if self.force_eager && !eager {
            // Re-enabling gating after an eager stretch: the dirty
            // bookkeeping was degenerate, resynchronize conservatively.
            self.core.table.mark_all(&self.topo);
        }
        self.force_eager = eager;
    }

    /// Overrides how the per-step active pass is split across worker
    /// threads: `Some(k)` forces exactly `k` shards for every step
    /// (even tiny ones — what the equivalence tests rely on), `None`
    /// restores the automatic policy (shard by `available_parallelism`
    /// once the active set is large enough to amortize thread spawn).
    ///
    /// Sharded and serial execution are byte-identical for every shard
    /// count; this knob only moves wall-clock time.
    pub fn set_shards(&mut self, shards: Option<usize>) {
        self.shards = match shards {
            Some(k) => ShardMode::Forced(k.max(1)),
            None => ShardMode::Auto,
        };
    }

    /// How many shards the next active pass of `active` nodes would
    /// use.
    fn shard_count(&self, active: usize) -> usize {
        match self.shards {
            ShardMode::Forced(k) => k.min(active.max(1)),
            ShardMode::Auto => {
                if active < AUTO_SHARD_MIN_ACTIVE {
                    1
                } else {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                }
            }
        }
    }

    /// The activity counters of the most recent step.
    pub fn last_activity(&self) -> StepActivity {
        self.last_activity
    }

    /// Total beacon broadcasts since construction — the message-count
    /// metric of the communication-efficiency literature (Devismes et
    /// al.): for a silent protocol under gated scheduling this stops
    /// growing once the network stabilizes.
    pub fn messages_total(&self) -> u64 {
        self.messages_total
    }

    /// Nodes whose state changed during the last step (gated
    /// scheduling only; empty under eager scheduling, which does not
    /// track changes).
    pub fn last_changed(&self) -> &[NodeId] {
        &self.core.table.changed
    }

    fn apply_dynamics(&mut self) {
        let Some(mut dynamics) = self.dynamics.take() else {
            return;
        };
        let step = self.step;
        if let Some(moves) = dynamics.next_moves(step) {
            if !moves.is_empty() {
                let delta = self.topo.apply_moves(moves);
                self.apply_delta(&delta);
            }
        } else if let Some(topo) = dynamics.next_topology(step) {
            assert_eq!(
                topo.len(),
                self.topo.len(),
                "topology dynamics must preserve the node count"
            );
            // clone_from reuses the driver's existing adjacency
            // buffers where possible; a wholesale swap invalidates all
            // incremental bookkeeping.
            self.topo.clone_from(topo);
            self.core.table.mark_all(&self.topo);
            self.env_changed = true;
        }
        self.dynamics = Some(dynamics);
    }

    /// Processes an incremental topology change through the shared
    /// core: notify the protocol of vanished links, wake the touched
    /// nodes, realign their reception bookkeeping.
    fn apply_delta(&mut self, delta: &TopologyDelta) {
        if self.core.apply_delta(&self.protocol, &self.topo, delta) {
            // Even a link-preserving move changes the topology's
            // geometry: memoized predicate verdicts over (topo, states)
            // are stale.
            self.env_changed = true;
        }
    }

    fn corrupt_scripted(&mut self, p: NodeId) {
        let mut rng = self.core.corrupt_rng(p);
        let corruptor = self
            .corruptor
            .as_ref()
            .expect("Scenario::faults installs the corruption hook");
        corruptor(
            &self.protocol,
            p,
            &mut self.core.table.states[p.index()],
            &mut rng,
        );
        self.core.wake_mutated(p, &self.topo);
    }

    /// Deterministically picks ≈ `fraction` of the nodes from the
    /// dedicated fault stream into the reused scratch buffer.
    fn pick_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        use rand::Rng;
        let mut picks = std::mem::take(&mut self.scratch_nodes);
        picks.clear();
        let fraction = fraction.clamp(0.0, 1.0);
        for p in self.topo.nodes() {
            if self.fault_rng.random_bool(fraction) {
                picks.push(p);
            }
        }
        picks
    }

    fn fire_scripted(&mut self) {
        while self.next_scripted < self.scripted.len()
            && self.scripted[self.next_scripted].0 <= self.step
        {
            let fault = self.scripted[self.next_scripted].1.clone();
            self.next_scripted += 1;
            self.dispatch_fault(&fault);
        }
    }

    /// Applies one fault right now. Shared by the scripted stream and
    /// [`Network::inject`]; the plan is validated before installation
    /// ([`crate::FaultPlan::validate_for`]), so the remaining
    /// `SetTopology` expect is unreachable from scripts.
    fn dispatch_fault(&mut self, fault: &Fault) {
        self.env_changed = true;
        match fault {
            Fault::CorruptNode(p) => self.corrupt_scripted(*p),
            Fault::CorruptAll => {
                for i in 0..self.topo.len() {
                    self.corrupt_scripted(NodeId::new(i as u32));
                }
            }
            Fault::CorruptFraction(f) => {
                let picks = self.pick_fraction(*f);
                for &p in &picks {
                    self.corrupt_scripted(p);
                }
                self.scratch_nodes = picks;
            }
            Fault::Isolate(p) => self.isolate(*p),
            Fault::SetTopology(topo) => self
                .set_topology(topo.clone())
                .expect("scripted topology keeps the node count"),
            Fault::CrashRecover { node, dark_for } => self.crash(*node, *dark_for),
            Fault::ByzantineBeacon { node, lie, until } => self.byzantine(*node, *lie, *until),
            Fault::PartitionHeal { cut, heal_at } => self.partition(cut, *heal_at),
            Fault::Jam { region, until } => self.jam(region, *until),
        }
    }

    /// [`Fault::CrashRecover`]: snapshot state + links, go dark via
    /// [`Network::isolate`], schedule the resurrection.
    fn crash(&mut self, p: NodeId, dark_for: u64) {
        let state = self.core.table.states[p.index()].clone();
        let links = self.topo.neighbors(p).to_vec();
        self.isolate(p);
        self.push_followup(
            self.step + dark_for.max(1),
            Followup::Resurrect {
                node: p,
                state,
                links,
            },
        );
    }

    /// [`Fault::ByzantineBeacon`]: install the lie at the engine level
    /// (epoch-bumped, send-pending, occupancy-released) and schedule
    /// its expiry. The forged content draws on the dedicated
    /// per-corruption-event stream, so frame-delivery randomness is
    /// untouched.
    fn byzantine(&mut self, p: NodeId, lie: Lie, until: u64) {
        let beacon = match lie {
            Lie::Forged => {
                let corruptor = self
                    .corruptor
                    .as_ref()
                    .expect("Scenario::faults installs the corruption hook");
                let mut rng = self.core.corrupt_rng(p);
                let mut fake = self.core.table.states[p.index()].clone();
                corruptor(&self.protocol, p, &mut fake, &mut rng);
                self.protocol.beacon(p, &fake)
            }
            Lie::Replayed => self.core.table.beacons[p.index()].clone(),
        };
        self.core.install_lie(&self.topo, p, beacon);
        self.push_followup(until.max(self.step + 1), Followup::ClearLie { node: p });
    }

    /// [`Fault::PartitionHeal`]: sever every edge crossing the cut,
    /// schedule the heal.
    fn partition(&mut self, cut: &[NodeId], heal_at: u64) {
        let mut in_cut = vec![false; self.topo.len()];
        for &p in cut {
            in_cut[p.index()] = true;
        }
        let edges: Vec<(NodeId, NodeId)> = self
            .topo
            .edges()
            .filter(|&(u, v)| in_cut[u.index()] != in_cut[v.index()])
            .collect();
        self.sever_edges(edges, heal_at);
    }

    /// [`Fault::Jam`]: sever every edge touching the region, schedule
    /// the restoration.
    fn jam(&mut self, region: &Region, until: u64) {
        let members = region.members(&self.topo);
        let mut jammed = vec![false; self.topo.len()];
        for &p in &members {
            jammed[p.index()] = true;
        }
        let edges: Vec<(NodeId, NodeId)> = self
            .topo
            .edges()
            .filter(|&(u, v)| jammed[u.index()] || jammed[v.index()])
            .collect();
        self.sever_edges(edges, until);
    }

    /// Removes `edges` (all currently present) through the incremental
    /// delta path — occupancy adjusted edge-wise, `link_down` fired,
    /// touched nodes woken — and schedules their restoration.
    fn sever_edges(&mut self, edges: Vec<(NodeId, NodeId)>, restore_at: u64) {
        if edges.is_empty() {
            return;
        }
        for &(u, v) in &edges {
            self.topo.remove_edge(u, v);
        }
        let delta = TopologyDelta {
            removed: edges.clone(),
            ..TopologyDelta::default()
        };
        self.apply_delta(&delta);
        self.push_followup(
            restore_at.max(self.step + 1),
            Followup::RestoreEdges { edges },
        );
    }

    /// Re-adds whichever of `edges` are still absent (mobility or later
    /// faults may have restored or re-severed some), again through the
    /// incremental delta path.
    fn restore_edges(&mut self, edges: &[(NodeId, NodeId)]) {
        let mut added = Vec::new();
        for &(u, v) in edges {
            if !self.topo.has_edge(u, v) && self.topo.add_edge(u, v).is_ok() {
                added.push((u, v));
            }
        }
        let delta = TopologyDelta {
            added,
            ..TopologyDelta::default()
        };
        self.apply_delta(&delta);
    }

    fn push_followup(&mut self, due: u64, followup: Followup<P>) {
        let seq = self.followup_seq;
        self.followup_seq += 1;
        self.followups.push((due, seq, followup));
    }

    /// Fires every due followup in ascending `(due, seq)` order —
    /// before this step's scripted faults, which fire before sends.
    fn fire_followups(&mut self) {
        if self.followups.is_empty() {
            return;
        }
        let now = self.step;
        let mut due: Vec<(u64, u64, Followup<P>)> = Vec::new();
        let mut i = 0;
        while i < self.followups.len() {
            if self.followups[i].0 <= now {
                due.push(self.followups.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|&(d, seq, _)| (d, seq));
        for (_, _, followup) in due {
            self.apply_followup(followup);
        }
    }

    fn apply_followup(&mut self, followup: Followup<P>) {
        self.env_changed = true;
        match followup {
            Followup::Resurrect { node, state, links } => {
                self.core.table.states[node.index()] = state;
                self.core.wake_mutated(node, &self.topo);
                let edges: Vec<(NodeId, NodeId)> = links
                    .iter()
                    .map(|&q| if node < q { (node, q) } else { (q, node) })
                    .collect();
                self.restore_edges(&edges);
            }
            Followup::RestoreEdges { edges } => self.restore_edges(&edges),
            Followup::ClearLie { node } => {
                self.core.clear_lie(&self.protocol, &self.topo, node);
            }
        }
    }

    /// Executes one synchronous step; returns the new step count.
    pub fn step(&mut self) -> u64 {
        self.env_changed = false;
        self.core.table.changed.clear();
        self.apply_dynamics();
        self.fire_followups();
        self.fire_scripted();
        let eager = !self.is_gated();
        if eager {
            // Degenerate dirty sets: everyone beacons, hears and runs —
            // the classic semantics, and the reference the gated mode
            // is tested against.
            self.core.table.update_dirty.insert_all();
            self.core.table.beacon_stale.insert_all();
            self.core.table.send_pending.insert_all();
            if let Some(occ) = &mut self.core.table.occupancy {
                // Everyone transmits for real: nobody occupies
                // statistically (O(1) once drained).
                occ.release_all();
            }
        }

        // Phase 1: refresh the beacons of nodes whose state changed.
        self.core
            .table
            .beacon_stale
            .drain_sorted_into(&mut self.stale_buf);
        for &p in &self.stale_buf {
            self.core.refresh_beacon(&self.protocol, &self.topo, p);
        }

        // Phase 2: the senders of this round.
        self.core
            .table
            .send_pending
            .collect_sorted_into(&mut self.senders_buf);

        // Phase 3: frame delivery. Media with independent fates get one
        // derived stream per (step, sender), so a frame's fate can
        // never depend on who else transmitted. Gated contention media
        // deliver the active set exactly while folding the retired
        // population in statistically (per-(step, sender) and
        // per-(step, receiver, sender) streams). Everything else —
        // and every eager round — evaluates the full sender set on the
        // sequential medium stream.
        self.delivery.reset(self.topo.len());
        if self.medium.independent_fates() {
            for &s in &self.senders_buf {
                let mut rng = self.core.medium_rng(self.step, s);
                self.medium
                    .deliver_from(&self.topo, s, &mut rng, &mut self.delivery);
            }
        } else if !eager && self.medium.gated_contention() {
            let streams = self.core.contention_streams(self.step);
            let occ = self
                .core
                .table
                .occupancy
                .as_ref()
                .expect("gated contention maintains an occupancy summary");
            self.medium.deliver_occupied_into(
                &self.topo,
                &self.senders_buf,
                occ,
                &streams,
                &mut self.delivery,
            );
        } else {
            self.medium.deliver_into(
                &self.topo,
                &self.senders_buf,
                &mut self.medium_rng,
                &mut self.delivery,
            );
        }

        // Phase 4: the active set — nodes already dirty plus receivers
        // of a beacon epoch they have not incorporated yet. The
        // freshness test is the branch-lean epoch-compare kernel over
        // the receiver's contiguous reception row.
        if !eager {
            let table = &mut self.core.table;
            let topo = &self.topo;
            for &r in &self.delivery.touched {
                if kernels::any_fresh(
                    table.heard.row(r.index()),
                    &table.epoch,
                    topo.neighbors(r),
                    &self.delivery.heard[r.index()],
                ) {
                    table.update_dirty.insert(r);
                }
            }
        }
        self.core
            .table
            .update_dirty
            .drain_sorted_into(&mut self.active_buf);

        // Phase 5: per-node execution — cached-copy refresh for heard
        // frames, then one pass of guarded assignments. Nodes only ever
        // touch their own state and read frozen beacons, so per-node
        // processing is equivalent to the classic all-receives-then-
        // all-updates phasing — and embarrassingly parallel: the
        // sharded pass splits the active set into contiguous chunks and
        // merges outcomes in order, byte-identical to the serial loop.
        let now = self.step;
        let shards = self.shard_count(self.active_buf.len());
        let receives = if shards > 1 {
            self.sharded_active_pass(eager, now, shards)
        } else {
            self.serial_active_pass(eager, now)
        };

        // Phase 6: retire senders every neighbor has caught up with. A
        // retiring sender under a contention medium starts occupying
        // its slot statistically instead of transmitting for real.
        if !eager {
            for &s in &self.senders_buf {
                if self.core.all_caught_up(&self.topo, s) {
                    self.core.table.send_pending.remove(s);
                    if let Some(occ) = &mut self.core.table.occupancy {
                        occ.occupy(s, &self.topo);
                    }
                }
            }
            // Forced marks are consumed by the change detection above.
            self.core.table.forced_changed.clear();
        }

        self.last_activity = StepActivity {
            senders: self.senders_buf.len(),
            frames_attempted: self.delivery.attempted,
            frames_delivered: self.delivery.delivered,
            receives,
            updates: self.active_buf.len(),
            changed: self.core.table.changed.len(),
        };
        self.messages_total += self.senders_buf.len() as u64;
        self.step += 1;
        self.step
    }

    /// The serial phase-5 loop: in-place state mutation, no per-node
    /// allocation. The reference the sharded pass is tested against.
    ///
    /// The per-frame binary search of the scalar reference is replaced
    /// by the sorted-join kernel: the delivered-sender list and the
    /// adjacency list merge in one two-pointer sweep per node
    /// ([`kernels::sorted_positions`]).
    fn serial_active_pass(&mut self, eager: bool, now: u64) -> usize {
        let mut receives = 0usize;
        let update_base = self.core.update_base;
        let table = &mut self.core.table;
        let protocol = &self.protocol;
        let topo = &self.topo;
        let delivery = &self.delivery;
        for &p in &self.active_buf {
            if !eager {
                match &mut table.scratch_state {
                    Some(s) => s.clone_from(&table.states[p.index()]),
                    None => table.scratch_state = Some(table.states[p.index()].clone()),
                }
            }
            kernels::sorted_positions(topo.neighbors(p), &delivery.heard[p.index()], |idx, s| {
                let e = table.epoch[s.index()];
                // Eager mode processes every delivered frame (classic
                // semantics); gated mode skips re-receptions of an
                // already-incorporated beacon, which the silence
                // contract makes state no-ops.
                if eager || table.heard.get(p.index(), idx) != e {
                    table.heard.set(p.index(), idx, e);
                    let (states, beacons) = (&mut table.states, &table.beacons);
                    protocol.receive(p, &mut states[p.index()], s, &beacons[s.index()], now);
                    receives += 1;
                }
            });
            let mut rng = split_rng(update_base, now, u64::from(p.value()));
            protocol.update(p, &mut table.states[p.index()], now, &mut rng);
            if !eager {
                let changed = table.forced_changed.contains(p)
                    || table.scratch_state.as_ref() != Some(&table.states[p.index()]);
                if changed {
                    table.changed.push(p);
                    table.update_dirty.insert(p);
                    table.beacon_stale.insert(p);
                }
            }
        }
        receives
    }

    /// The sharded phase-5 pass: a deterministic owner-computes
    /// partition of the active set into `shards` contiguous chunks,
    /// computed over pooled per-shard arenas ([`ShardScratch`]), merged
    /// back **in active-set order**.
    ///
    /// Workers read only frozen columns (beacons, epochs, pre-pass
    /// states, the delivery) and write only their own arena: the
    /// single-threaded merge then applies the arenas exactly as the
    /// serial loop would have — which is why sharded ≡ serial holds
    /// byte-for-byte for every shard count. The arenas are reused
    /// across steps ([`run_sharded`] spawns one scoped thread per
    /// slot, no result vectors), so the steady-state pass performs
    /// zero per-node heap allocation.
    fn sharded_active_pass(&mut self, eager: bool, now: u64, shards: usize) -> usize {
        if self.shard_scratch.len() != shards {
            self.shard_scratch.resize_with(shards, ShardScratch::new);
        }
        let n_active = self.active_buf.len();
        let chunk = n_active.div_ceil(shards);
        for (i, sc) in self.shard_scratch.iter_mut().enumerate() {
            sc.reset((i * chunk).min(n_active), ((i + 1) * chunk).min(n_active));
        }
        let update_base = self.core.update_base;
        {
            let table = &self.core.table;
            let protocol = &self.protocol;
            let topo = &self.topo;
            let delivery = &self.delivery;
            let active = &self.active_buf;
            run_sharded(&mut self.shard_scratch, |_, sc| {
                for &p in &active[sc.lo..sc.hi] {
                    let mut state = table.states[p.index()].clone();
                    let before = sc.patch_idx.len();
                    kernels::sorted_positions(
                        topo.neighbors(p),
                        &delivery.heard[p.index()],
                        |idx, s| {
                            let e = table.epoch[s.index()];
                            if eager || table.heard.get(p.index(), idx) != e {
                                sc.patch_idx.push(idx as u32);
                                sc.patch_epoch.push(e);
                                protocol.receive(p, &mut state, s, &table.beacons[s.index()], now);
                                sc.receives += 1;
                            }
                        },
                    );
                    let mut rng = split_rng(update_base, now, u64::from(p.value()));
                    protocol.update(p, &mut state, now, &mut rng);
                    let changed = !eager
                        && (table.forced_changed.contains(p) || state != table.states[p.index()]);
                    sc.patch_len.push((sc.patch_idx.len() - before) as u32);
                    sc.changed.push(changed);
                    sc.states.push(state);
                }
            });
        }
        let mut receives = 0usize;
        let table = &mut self.core.table;
        for sc in self.shard_scratch.iter_mut() {
            receives += sc.receives as usize;
            let mut patch_cursor = 0usize;
            for (k, state) in sc.states.drain(..).enumerate() {
                let p = self.active_buf[sc.lo + k];
                let np = sc.patch_len[k] as usize;
                for j in patch_cursor..patch_cursor + np {
                    table
                        .heard
                        .set(p.index(), sc.patch_idx[j] as usize, sc.patch_epoch[j]);
                }
                patch_cursor += np;
                table.states[p.index()] = state;
                if sc.changed[k] {
                    table.changed.push(p);
                    table.update_dirty.insert(p);
                    table.beacon_stale.insert(p);
                }
            }
            debug_assert_eq!(patch_cursor, sc.patch_idx.len());
        }
        receives
    }

    /// Runs `steps` synchronous steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Low-level: runs until the projection of every node state is
    /// unchanged for `quiet` consecutive steps, or the absolute step
    /// count reaches `max_steps`.
    ///
    /// Returns `Some(step)` — the step count after which the projection
    /// last changed (the *stabilization time* in steps) — or `None` on
    /// timeout. Prefer [`Network::run_to`] with
    /// [`StopWhen::stable_for`], which uses the protocol's canonical
    /// [`Observable`] projection instead of a caller-supplied closure.
    pub fn run_until_stable<K, F>(
        &mut self,
        mut project: F,
        quiet: u64,
        max_steps: u64,
    ) -> Option<u64>
    where
        K: PartialEq + Clone,
        F: FnMut(NodeId, &P::State) -> K,
    {
        let mut tracker = StabilityTracker::new(quiet);
        let mut buf: Vec<K> = Vec::with_capacity(self.core.table.states.len());
        let mut snapshot = |states: &[P::State], buf: &mut Vec<K>| {
            buf.clear();
            buf.extend(
                states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| project(NodeId::new(i as u32), s)),
            );
        };
        snapshot(&self.core.table.states, &mut buf);
        tracker.observe_slice(self.step, &buf);
        while self.step < max_steps {
            self.step();
            snapshot(&self.core.table.states, &mut buf);
            if tracker.observe_slice(self.step, &buf) {
                return Some(tracker.last_change());
            }
        }
        None
    }

    /// Low-level: runs until `pred` holds (checked after each step), or
    /// the absolute step count reaches `max_steps`. Returns the step
    /// count at which the predicate first held. Prefer
    /// [`Network::run_to`] with [`StopWhen::predicate`].
    pub fn run_until<F>(&mut self, mut pred: F, max_steps: u64) -> Option<u64>
    where
        F: FnMut(&Self) -> bool,
    {
        if pred(self) {
            return Some(self.step);
        }
        while self.step < max_steps {
            self.step();
            if pred(self) {
                return Some(self.step);
            }
        }
        None
    }

    /// Current step count.
    pub fn now(&self) -> u64 {
        self.step
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Replaces the topology (same node count), e.g. after a mobility
    /// tick moved nodes. States are preserved: the protocol must cope
    /// with neighbors appearing and disappearing — that is the point.
    ///
    /// A wholesale swap carries no link-level delta, so it conservatively
    /// reschedules every node (and fires no [`Protocol::link_down`]
    /// notifications); incremental paths — mobility moves, scripted
    /// isolation — stay surgical.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeCountMismatch`] if the node count
    /// changes: protocol state is indexed by node, so nodes cannot be
    /// added or removed mid-run.
    pub fn set_topology(&mut self, topo: Topology) -> Result<(), SimError> {
        if topo.len() != self.topo.len() {
            return Err(SimError::NodeCountMismatch {
                expected: self.topo.len(),
                got: topo.len(),
            });
        }
        self.topo = topo;
        self.core.table.mark_all(&self.topo);
        self.env_changed = true;
        Ok(())
    }

    /// Applies incremental node moves to the simulated topology
    /// (unit-disk only), waking exactly the nodes whose links changed.
    /// Returns the link churn.
    pub fn apply_moves(&mut self, moves: &[(NodeId, Point2)]) -> TopologyDelta {
        let delta = self.topo.apply_moves(moves);
        self.apply_delta(&delta);
        delta
    }

    /// All node states, indexed by [`NodeId`].
    pub fn states(&self) -> &[P::State] {
        &self.core.table.states
    }

    /// The state of one node.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.core.table.states[p.index()]
    }

    /// Mutable state access (used by hand-written fault scenarios).
    /// The node is rescheduled: external mutation is a fault.
    pub fn state_mut(&mut self, p: NodeId) -> &mut P::State {
        self.core.wake_mutated(p, &self.topo);
        &mut self.core.table.states[p.index()]
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Severs every link of `p` by removing its edges — the node's
    /// radio goes dark but its state survives (crash of the *link*
    /// layer). Fires [`Protocol::link_down`] on both endpoints of every
    /// severed link. Use [`Network::set_topology`] to restore
    /// connectivity.
    pub fn isolate(&mut self, p: NodeId) {
        let mut nbrs = std::mem::take(&mut self.scratch_nodes);
        self.core
            .isolate(&self.protocol, &mut self.topo, p, &mut nbrs);
        self.env_changed = true;
        self.scratch_nodes = nbrs;
    }
}

impl<P: Observable, M: Medium> Network<P, M> {
    /// Projects every node's observable output into `buf` (cleared
    /// first); the buffer can be reused across steps.
    pub fn outputs_into(&self, buf: &mut Vec<P::Output>) {
        buf.clear();
        buf.extend(
            self.core
                .table
                .states
                .iter()
                .enumerate()
                .map(|(i, s)| self.protocol.output(NodeId::new(i as u32), s)),
        );
    }

    /// The observable output of every node.
    pub fn outputs(&self) -> Vec<P::Output> {
        let mut buf = Vec::with_capacity(self.core.table.states.len());
        self.outputs_into(&mut buf);
        buf
    }

    /// Runs until `stop` is satisfied and reports what happened — the
    /// primary run method of the [`crate::Scenario`] API.
    ///
    /// The condition is checked before the first step and after every
    /// step. A condition with no [`StopWhen::MaxSteps`] budget that
    /// never holds runs forever; every long-running experiment should
    /// carry a budget (see [`StopWhen::within`]).
    ///
    /// Under gated scheduling the per-step evaluation is incremental: a
    /// quiescent step extends stability streaks and reuses memoized
    /// predicate verdicts without projecting a single output —
    /// [`StopWhen::StableFor`] effectively reads "dirty set empty".
    ///
    /// # Examples
    ///
    /// See the crate-level example.
    pub fn run_to(&mut self, stop: &StopWhen<P>) -> RunReport {
        let start = self.step;
        let mut cursor = stop.cursor();
        let gated = self.is_gated();
        // Only project outputs when a StableFor leaf will read them (or
        // when the gated engine tracks them incrementally);
        // predicate/budget-only stops skip the per-step O(n) pass.
        let needs_outputs = stop.needs_outputs();
        let mut outputs: Vec<P::Output> = Vec::with_capacity(self.core.table.states.len());
        if needs_outputs {
            self.outputs_into(&mut outputs);
        }
        let mut verdict = cursor.observe(
            self.step,
            0,
            &self.topo,
            &self.core.table.states,
            &Obs::Full { outputs: &outputs },
        );
        while !verdict.satisfied {
            self.step();
            let obs = if gated {
                let mut output_changed = false;
                if needs_outputs {
                    for &p in &self.core.table.changed {
                        let fresh = self.protocol.output(p, &self.core.table.states[p.index()]);
                        if outputs[p.index()] != fresh {
                            outputs[p.index()] = fresh;
                            output_changed = true;
                        }
                    }
                }
                Obs::Delta {
                    output_changed,
                    state_changed: !self.core.table.changed.is_empty(),
                    env_changed: self.env_changed,
                }
            } else {
                if needs_outputs {
                    self.outputs_into(&mut outputs);
                }
                Obs::Full { outputs: &outputs }
            };
            verdict = cursor.observe(
                self.step,
                self.step - start,
                &self.topo,
                &self.core.table.states,
                &obs,
            );
        }
        RunReport {
            stabilized: cursor.stabilized(),
            steps: self.step - start,
            end_step: self.step,
            satisfied: !verdict.budget_only,
            timed_out: verdict.budget_only,
        }
    }
}

impl<P: Corruptible, M: Medium> Network<P, M> {
    /// Corrupts the state of one node arbitrarily.
    pub fn corrupt(&mut self, p: NodeId) {
        let mut rng = self.core.corrupt_rng(p);
        self.protocol
            .corrupt(p, &mut self.core.table.states[p.index()], &mut rng);
        self.core.wake_mutated(p, &self.topo);
    }

    /// Corrupts every node: the adversarial "arbitrary initial
    /// configuration" of the self-stabilization definition.
    pub fn corrupt_all(&mut self) {
        for i in 0..self.topo.len() {
            self.corrupt(NodeId::new(i as u32));
        }
    }

    /// Corrupts a deterministic pseudo-random subset of about
    /// `fraction` of the nodes; returns how many were corrupted.
    ///
    /// The subset is drawn from a dedicated fault stream, so injecting
    /// faults never perturbs frame-delivery randomness: two runs with
    /// the same seed see identical deliveries whether or not one of
    /// them injects faults.
    pub fn corrupt_fraction(&mut self, fraction: f64) -> usize {
        let picks = self.pick_fraction(fraction);
        let count = picks.len();
        for &p in &picks {
            self.corrupt(p);
        }
        self.scratch_nodes = picks;
        count
    }

    /// Applies one [`Fault`] right now — the entry point the chaos
    /// harness uses to drive unscripted campaigns. Timed second phases
    /// (resurrection, healing, lie expiry) are scheduled as followups
    /// and fire at the start of their due step, before that step's
    /// scripted faults and sends.
    ///
    /// Victims must be in range (see
    /// [`crate::FaultPlan::validate_for`] for pre-run checking of whole
    /// plans).
    ///
    /// # Errors
    ///
    /// [`SimError::NodeCountMismatch`] for a [`Fault::SetTopology`]
    /// that changes the node count.
    pub fn inject(&mut self, fault: &Fault) -> Result<(), SimError> {
        if self.corruptor.is_none() {
            self.corruptor = Some(Box::new(
                |protocol: &P, p, state: &mut P::State, rng: &mut StdRng| {
                    protocol.corrupt(p, state, rng);
                },
            ));
        }
        if let Fault::SetTopology(topo) = fault {
            return self.set_topology(topo.clone());
        }
        self.dispatch_fault(fault);
        Ok(())
    }

    /// Corrupts `p` **without** waking it — a deliberately broken wake
    /// rule. Exists only so the certifier's liveness audit can be
    /// demonstrated to catch exactly this class of engine bug; never
    /// use it to model a fault.
    #[doc(hidden)]
    pub fn corrupt_silently(&mut self, p: NodeId) {
        let mut rng = self.core.corrupt_rng(p);
        self.protocol
            .corrupt(p, &mut self.core.table.states[p.index()], &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use mwn_radio::{BernoulliLoss, PerfectMedium};

    /// Stabilizes to the maximum id seen; corruption plants a huge fake
    /// value that only TTL-free re-flooding would *not* fix — so we use
    /// it to test corrupt/convergence mechanics, not the protocol.
    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            // Re-asserting the node's own id is what makes the flood
            // self-stabilizing: corrupted state cannot erase the source.
            *state = (*state).max(node.value());
        }
    }
    impl Corruptible for MaxFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }
    impl Observable for MaxFlood {
        type Output = u32;
        fn output(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
    }

    /// The same flood with the silence contract declared: receive of an
    /// already-incorporated beacon and update at a fixpoint are no-ops.
    struct GatedFlood;
    impl Protocol for GatedFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            *state = (*state).max(node.value());
        }
        fn activity(&self) -> Activity {
            Activity::Gated
        }
        fn beacon_changed(&self, old: &u32, new: &u32) -> bool {
            old != new
        }
    }
    impl Observable for GatedFlood {
        type Output = u32;
        fn output(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
    }
    impl Corruptible for GatedFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }

    #[test]
    fn max_flood_converges_on_a_line() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(6), 1);
        let report = net.run_to(&StopWhen::stable_for(3).within(100));
        assert!(net.states().iter().all(|&s| s == 5));
        // Information moves one hop per step: node 0 is 5 hops from node 5.
        assert_eq!(report.expect_stable("converges"), 5);
        assert!(!report.timed_out);
    }

    #[test]
    fn one_hop_per_step_information_speed() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(10), 1);
        net.run(3);
        // After 3 steps the max id (9) can have travelled exactly 3 hops.
        assert_eq!(*net.state(NodeId::new(6)), 9);
        assert_eq!(*net.state(NodeId::new(5)), 8);
    }

    #[test]
    fn lossy_medium_still_converges() {
        let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.3), builders::line(6), 3);
        let report = net.run_to(&StopWhen::stable_for(10).within(2000));
        assert!(report.is_stable(), "τ = 0.3 must still converge w.p. 1");
        assert!(net.states().iter().all(|&s| s == 5));
    }

    #[test]
    fn corruption_then_reconvergence() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::ring(8), 4);
        net.run(10);
        net.corrupt_all();
        assert!(net.states().iter().all(|&s| s == 0));
        net.run(10);
        assert!(net.states().iter().all(|&s| s == 7));
    }

    #[test]
    fn corrupt_fraction_reports_count() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::ring(50), 5);
        let corrupted = net.corrupt_fraction(0.5);
        assert!(corrupted > 5 && corrupted < 45, "got {corrupted}");
    }

    #[test]
    fn fault_stream_is_independent_of_delivery_stream() {
        // Regression: corrupt_fraction used to draw from the medium's
        // stream, so "same seed + one corruption call" changed which
        // frames were later lost. With a dedicated fault stream, a run
        // that injects (zero-effect) faults sees identical deliveries.
        let run = |inject: bool| {
            let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.5), builders::ring(16), 9);
            net.run(3);
            if inject {
                // Draws from the fault stream but corrupts nobody.
                assert_eq!(net.corrupt_fraction(0.0), 0);
            }
            net.run(12);
            net.states().to_vec()
        };
        assert_eq!(
            run(true),
            run(false),
            "fault injection must not perturb delivery randomness"
        );
    }

    #[test]
    fn isolation_stops_information_flow() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(5), 6);
        net.isolate(NodeId::new(2)); // cut the middle
        net.run(20);
        // Max id 4 cannot cross the cut.
        assert_eq!(*net.state(NodeId::new(0)), 1);
        assert_eq!(*net.state(NodeId::new(1)), 1);
    }

    #[test]
    fn runs_are_reproducible_from_seed() {
        let run = |seed| {
            let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.5), builders::ring(12), seed);
            net.run(7);
            net.states().to_vec()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn run_to_predicate() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(4), 1);
        let report = net
            .run_to(&StopWhen::predicate(|_, states| states.iter().all(|&s| s == 3)).within(100));
        assert!(report.satisfied && !report.timed_out);
        assert_eq!(report.end_step, 3);
    }

    #[test]
    fn run_to_budget_reports_timeout() {
        // A predicate that can never hold: only the budget fires.
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(4), 1);
        let report = net.run_to(&StopWhen::predicate(|_, states| states.contains(&99)).within(10));
        assert!(report.timed_out);
        assert!(!report.satisfied);
        assert_eq!(report.steps, 10);
        assert_eq!(report.stabilized, None);
    }

    #[test]
    fn run_to_composes_all_and_any() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(6), 2);
        // Stable AND at least 8 steps executed: forces the run past the
        // 5-step stabilization point.
        let report = net.run_to(
            &StopWhen::stable_for(2)
                .and(StopWhen::max_steps(8))
                .within(100),
        );
        assert_eq!(report.expect_stable("line flood stabilizes"), 5);
        assert!(report.steps >= 8);
    }

    #[test]
    fn stability_streak_spans_run_to_restarts() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(6), 3);
        net.run_to(&StopWhen::stable_for(3).within(100));
        // Re-arming on an already-stable network satisfies quickly and
        // reports the (unchanged-since) current step as last change.
        let report = net.run_to(&StopWhen::stable_for(2).within(10));
        assert!(report.is_stable());
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn set_topology_rejects_resize() {
        let mut net = Network::new(MaxFlood, PerfectMedium, builders::line(4), 1);
        let err = net.set_topology(builders::line(5)).unwrap_err();
        assert_eq!(
            err,
            SimError::NodeCountMismatch {
                expected: 4,
                got: 5
            }
        );
        // The rejected swap left the network untouched.
        assert_eq!(net.topology().len(), 4);
        assert!(net.set_topology(builders::line(4)).is_ok());
    }

    #[test]
    fn gated_flood_goes_silent_after_stabilization() {
        let mut net = Network::new(GatedFlood, PerfectMedium, builders::line(6), 1);
        assert!(net.is_gated());
        let report = net.run_to(&StopWhen::stable_for(3).within(100));
        assert_eq!(report.expect_stable("converges"), 5);
        let sent_before = net.messages_total();
        net.run(25);
        let tail = net.last_activity();
        assert_eq!(tail.senders, 0, "silent network must not broadcast");
        assert_eq!(tail.updates, 0, "silent network must not run guards");
        assert_eq!(tail.frames_attempted, 0);
        assert_eq!(
            net.messages_total(),
            sent_before,
            "message count frozen after stabilization"
        );
    }

    #[test]
    fn gated_equals_eager_on_perfect_medium() {
        let run = |eager: bool| {
            let mut net = Network::new(GatedFlood, PerfectMedium, builders::ring(9), 5);
            net.set_eager(eager);
            let report = net.run_to(&StopWhen::stable_for(4).within(200));
            (report, net.states().to_vec())
        };
        assert_eq!(run(true), run(false), "gating must be unobservable");
    }

    #[test]
    fn gated_equals_eager_under_loss_and_corruption() {
        let run = |eager: bool| {
            let mut net = Network::new(GatedFlood, BernoulliLoss::new(0.6), builders::ring(10), 13);
            net.set_eager(eager);
            net.run(5);
            net.corrupt_all();
            let report = net.run_to(&StopWhen::stable_for(8).within(1000));
            (report, net.states().to_vec(), net.now())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn eager_protocols_never_gate() {
        let net = Network::new(MaxFlood, PerfectMedium, builders::line(3), 0);
        assert!(!net.is_gated(), "Activity::Eager is the default contract");
    }

    #[test]
    fn gated_wakes_up_after_corruption() {
        let mut net = Network::new(GatedFlood, PerfectMedium, builders::line(5), 2);
        net.run_to(&StopWhen::stable_for(2).within(100));
        net.run(3);
        assert_eq!(net.last_activity().senders, 0);
        net.corrupt(NodeId::new(4));
        assert_eq!(*net.state(NodeId::new(4)), 0);
        let report = net.run_to(&StopWhen::stable_for(2).within(100));
        assert!(report.is_stable());
        assert!(net.states().iter().all(|&s| s == 4), "re-flooded the max");
    }

    #[test]
    fn step_activity_counts_the_cold_start() {
        let mut net = Network::new(GatedFlood, PerfectMedium, builders::line(4), 3);
        net.step();
        let first = net.last_activity();
        assert_eq!(first.senders, 4, "cold start: everyone broadcasts");
        assert_eq!(first.updates, 4);
        assert_eq!(first.frames_attempted, 6, "2·|E| in-range copies");
        assert_eq!(net.messages_total(), 4);
    }

    #[test]
    fn sharded_steps_equal_serial_steps() {
        // The deterministic owner-computes partition: every forced
        // shard count must reproduce the serial trajectory byte for
        // byte, through corruption and re-stabilization.
        let run = |shards: Option<usize>| {
            let mut net = Network::new(GatedFlood, BernoulliLoss::new(0.7), builders::ring(24), 8);
            net.set_shards(shards);
            net.run(6);
            net.corrupt_all();
            let report = net.run_to(&StopWhen::stable_for(5).within(500));
            (report, net.states().to_vec(), net.messages_total())
        };
        let serial = run(Some(1));
        for shards in [2, 3, 4, 7] {
            assert_eq!(serial, run(Some(shards)), "{shards} shards diverged");
        }
        assert_eq!(serial, run(None));
    }

    #[test]
    fn sharded_eager_equals_serial_eager() {
        let run = |shards: usize| {
            let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.5), builders::ring(17), 21);
            net.set_shards(Some(shards));
            net.run(25);
            net.states().to_vec()
        };
        assert_eq!(run(1), run(4));
    }
}
