//! Degree statistics for deployed topologies.
//!
//! The paper's model assumes a sparse distribution: "there is some known
//! constant δ such that for any node p, |N_p| ≤ δ", and suggests
//! controlling density "by adjusting their communication range and/or
//! powering off nodes in areas that are too dense". These helpers
//! expose the quantities an operator would use for that control loop.

use serde::{Deserialize, Serialize};

use crate::Topology;

/// Summary of a topology's degree distribution.
///
/// # Examples
///
/// ```
/// use mwn_graph::{builders, stats::DegreeStats};
///
/// let topo = builders::star(5);
/// let s = DegreeStats::of(&topo);
/// assert_eq!(s.max, 4);
/// assert_eq!(s.min, 1);
/// assert!((s.mean - 1.6).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree — the constant `δ` of the paper's model.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of isolated nodes (degree 0).
    pub isolated: usize,
}

impl DegreeStats {
    /// Computes degree statistics for `topo`. For an empty topology all
    /// counts are zero.
    pub fn of(topo: &Topology) -> Self {
        if topo.is_empty() {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                isolated: 0,
            };
        }
        let degrees: Vec<usize> = topo.nodes().map(|p| topo.degree(p)).collect();
        DegreeStats {
            min: degrees.iter().copied().min().unwrap_or(0),
            max: degrees.iter().copied().max().unwrap_or(0),
            mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
            isolated: degrees.iter().filter(|&&d| d == 0).count(),
        }
    }
}

/// Histogram of node degrees: `histogram[d]` is the number of nodes
/// with degree `d`. Empty for an empty topology.
pub fn degree_histogram(topo: &Topology) -> Vec<usize> {
    let mut hist = vec![0usize; topo.max_degree() + 1];
    if topo.is_empty() {
        return Vec::new();
    }
    for p in topo.nodes() {
        hist[topo.degree(p)] += 1;
    }
    hist
}

/// The expected mean degree of a Poisson(λ) unit-disk deployment with
/// range `R`, ignoring border effects: `λ·π·R²`. Useful to pick λ and
/// `R` so that a target `δ` is respected with high probability.
pub fn expected_poisson_degree(lambda: f64, radius: f64) -> f64 {
    lambda * std::f64::consts::PI * radius * radius
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_sums_to_node_count() {
        let mut rng = StdRng::seed_from_u64(11);
        let topo = builders::uniform(200, 0.1, &mut rng);
        let hist = degree_histogram(&topo);
        assert_eq!(hist.iter().sum::<usize>(), 200);
    }

    #[test]
    fn empty_topology_stats() {
        let topo = Topology::empty(0);
        let s = DegreeStats::of(&topo);
        assert_eq!(s.max, 0);
        assert_eq!(degree_histogram(&topo), Vec::<usize>::new());
    }

    #[test]
    fn isolated_nodes_are_counted() {
        let topo = Topology::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(DegreeStats::of(&topo).isolated, 2);
    }

    #[test]
    fn expected_degree_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(5);
        let lambda = 1000.0;
        let radius = 0.08;
        let expected = expected_poisson_degree(lambda, radius);
        let mut mean = 0.0;
        let runs = 20;
        for _ in 0..runs {
            mean += builders::poisson(lambda, radius, &mut rng).mean_degree();
        }
        mean /= runs as f64;
        // Border effects push the empirical mean a bit below λπR².
        assert!(
            mean > expected * 0.8 && mean < expected * 1.05,
            "mean {mean} vs {expected}"
        );
    }
}
