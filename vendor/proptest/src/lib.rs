//! Offline subset of `proptest`: enough of the API for this
//! workspace's property tests to run without registry access.
//!
//! Supported surface: `Strategy` with `prop_map`, range strategies for
//! integers and floats, tuple strategies, `any::<bool>()`,
//! `proptest::collection::vec`, the `proptest!` macro with an optional
//! `#![proptest_config(..)]` header, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence (identical on every run) and failing
//! cases are **not shrunk** — the panic message reports the case
//! index instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration: how many cases each property runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic per-case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for one case index (fixed salt, so runs are
    /// identical across invocations).
    pub fn for_case(case: u32) -> Self {
        TestRng(StdRng::seed_from_u64(
            0x5EED_CA5E ^ (u64::from(case) << 32 | u64::from(case)),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy over a type's whole domain; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<bool>()`-style full-domain strategies.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.0.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Why one generated case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// A `prop_assume!` precondition rejected the case — skip it.
    Reject,
}

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// runs its body over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!("property failed at case {case}: {message}");
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {} out of range", y);
        }

        #[test]
        fn mapped_tuples_compose(v in (1usize..5, 2u64..9).prop_map(|(a, b)| a as u64 + b)) {
            prop_assert!((3..14).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for x in xs {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn any_bool_hits_both_values(pair in (any::<bool>(), any::<bool>())) {
            let (a, b) = pair;
            prop_assert_eq!(a & b, b & a);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case(3);
        let mut b = crate::TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
