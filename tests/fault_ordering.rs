//! Pins the **fault ≤ event ordering contract** on both event-shaped
//! drivers.
//!
//! Scripted faults are timestamped in logical steps (beacon periods).
//! When a fault and a protocol event fall on the same instant, the
//! fault fires first — on the [`EventDriver`] the equal-instant
//! priority is dynamics ≤ faults ≤ events, and a beacon frame already
//! *in flight* across a link the fault severs is dead air (the receive
//! handler re-checks the link at arrival time). On the [`ActorDriver`]
//! the same contract holds structurally: faults fire at the period
//! boundary **before** that period's beacon slots are released, so the
//! topology is constant within a period and no frame can be evaluated
//! against a pre-fault topology.
//!
//! Without this ordering, an `Isolate` delivered mid-slot could race
//! the beacon already in flight and leak one frame across a severed
//! link — observable as a flood value crossing a cut that was supposed
//! to be closed.

use selfstab::prelude::*;
use selfstab::sim::EventConfig;

/// Max-flood over `u32` beacons: any frame leaking across a cut is
/// permanently visible in the receiver's state.
struct MaxFlood;

impl Protocol for MaxFlood {
    type State = u32;
    type Beacon = u32;
    fn init(&self, node: NodeId, _rng: &mut rand::rngs::StdRng) -> u32 {
        node.value()
    }
    fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
    fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
        *state = (*state).max(*beacon);
    }
    fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut rand::rngs::StdRng) {
        *state = (*state).max(node.value());
    }
    fn activity(&self) -> selfstab::sim::Activity {
        selfstab::sim::Activity::Gated
    }
    fn beacon_changed(&self, old: &u32, new: &u32) -> bool {
        old != new
    }
}

impl Observable for MaxFlood {
    type Output = u32;
    fn output(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
}

impl Corruptible for MaxFlood {
    fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut rand::rngs::StdRng) {
        *state = 0;
    }
}

/// Frames slower than the beacon period: every first-period frame is
/// still in flight when the step-1 fault boundary arrives.
fn slow_frames() -> EventConfig {
    EventConfig {
        beacon_period: 1.0,
        jitter: 0.0,
        frame_time: 2.0,
        ..EventConfig::default()
    }
}

#[test]
fn event_driver_drops_in_flight_frames_across_a_severed_link() {
    // Two nodes, one link. With frame_time = 2 every period-0 beacon
    // arrives during (2, 3); the Isolate fires at the step-1 boundary
    // (t = 1), strictly before any of those arrivals. The frames were
    // genuinely sent — and must all be dead air.
    let mut plan = FaultPlan::new();
    plan.at(1, Fault::Isolate(NodeId::new(1)));
    let mut driver = Scenario::new(MaxFlood)
        .topology(builders::line(2))
        .seed(5)
        .faults(plan)
        .build_events(slow_frames())
        .expect("valid event scenario");
    driver.run_until_time(20.0);
    assert!(
        driver.messages_total() > 0,
        "beacons must actually have been sent before the cut"
    );
    assert_eq!(
        *driver.state(NodeId::new(0)),
        0,
        "an in-flight frame leaked across the severed link"
    );
    assert_eq!(*driver.state(NodeId::new(1)), 1);
}

#[test]
fn event_driver_without_the_fault_delivers_the_same_frames() {
    // The control group for the in-flight drop: identical scenario,
    // no fault — the slow frames arrive and the flood crosses.
    let mut driver = Scenario::new(MaxFlood)
        .topology(builders::line(2))
        .seed(5)
        .build_events(slow_frames())
        .expect("valid event scenario");
    driver.run_until_time(20.0);
    assert_eq!(
        *driver.state(NodeId::new(0)),
        1,
        "without the fault the very same frames must deliver"
    );
}

#[test]
fn equal_timestamp_faults_precede_sends_on_both_drivers() {
    // CorruptAll and Isolate(2) share timestamp 6, landing mid-run on
    // an already-stabilized line (everyone holds 4). The contract:
    // both faults apply before any period-6 beacon, so re-convergence
    // happens on the post-cut fragments {0,1} | {2} | {3,4} — the old
    // maximum must not leak out of a period-6 frame sent pre-fault.
    let fragments = |label: &str, states: &[u32]| {
        assert_eq!(states[0], 1, "{label}: left fragment");
        assert_eq!(states[1], 1, "{label}: left fragment");
        assert_eq!(states[2], 2, "{label}: isolated node");
        assert_eq!(states[3], 4, "{label}: right fragment");
        assert_eq!(states[4], 4, "{label}: right fragment");
    };
    let plan = || {
        let mut plan = FaultPlan::new();
        plan.at(6, Fault::CorruptAll)
            .at(6, Fault::Isolate(NodeId::new(2)));
        plan
    };

    // Round driver (the reference semantics the others must match).
    let mut net = Scenario::new(MaxFlood)
        .topology(builders::line(5))
        .seed(3)
        .faults(plan())
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(4).within(200))
        .expect_stable("round driver re-stabilizes");
    fragments("round", net.states());

    // Actor driver: faults fire before the period's slots are released.
    for threads in [1, 2, 4] {
        let mut actors = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(3)
            .faults(plan())
            .build_actors(threads)
            .expect("valid actor scenario");
        actors
            .run_to(&StopWhen::stable_for(4).within(200))
            .expect_stable("actor driver re-stabilizes");
        fragments("actors", actors.states());
    }

    // Event driver: fault priority at the step boundary plus the
    // in-flight link re-check give the same fragments.
    let mut driver = Scenario::new(MaxFlood)
        .topology(builders::line(5))
        .seed(3)
        .faults(plan())
        .build_events(EventConfig::default())
        .expect("valid event scenario");
    driver.run_until_time(60.0);
    fragments("events", driver.states());
}

#[test]
fn partition_heal_keeps_the_cut_closed_until_the_heal_on_all_drivers() {
    // CorruptAll and a {0,1}-cut land together at step 5 on a
    // stabilized line; the heal is scripted for step 15. The contract
    // under test: the cut applies before any step-5 beacon (no stale
    // maximum leaks into the left fragment), and the healed link is
    // only usable from step 15 on (the flood crosses exactly then).
    let plan = || {
        let mut plan = FaultPlan::new();
        plan.at(
            5,
            Fault::PartitionHeal {
                cut: vec![NodeId::new(0), NodeId::new(1)],
                heal_at: 15,
            },
        )
        .at(5, Fault::CorruptAll);
        plan
    };
    let pre_heal = |label: &str, states: &[u32]| {
        assert_eq!(
            &states[..2],
            &[1, 1],
            "{label}: left fragment re-floods alone"
        );
        assert_eq!(
            &states[2..],
            &[4, 4, 4],
            "{label}: right fragment re-floods alone"
        );
    };
    let healed = |label: &str, states: &[u32]| {
        assert_eq!(
            states,
            &[4, 4, 4, 4, 4],
            "{label}: the heal reconnects the flood"
        );
    };

    let mut net = Scenario::new(MaxFlood)
        .topology(builders::line(5))
        .seed(3)
        .faults(plan())
        .build()
        .expect("valid scenario");
    while net.now() < 14 {
        net.step();
    }
    pre_heal("round", net.states());
    net.run_to(&StopWhen::stable_for(4).within(200))
        .expect_stable("round driver re-stabilizes after the heal");
    healed("round", net.states());

    let mut driver = Scenario::new(MaxFlood)
        .topology(builders::line(5))
        .seed(3)
        .faults(plan())
        .build_events(EventConfig::default())
        .expect("valid event scenario");
    driver.run_until_time(14.0);
    pre_heal("events", driver.states());
    driver.run_until_time(60.0);
    healed("events", driver.states());

    for threads in [1, 4] {
        let mut actors = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(3)
            .faults(plan())
            .build_actors(threads)
            .expect("valid actor scenario");
        while actors.now() < 14 {
            actors.step();
        }
        pre_heal("actors", actors.states());
        actors
            .run_to(&StopWhen::stable_for(4).within(200))
            .expect_stable("actor driver re-stabilizes after the heal");
        healed("actors", actors.states());
    }
}

#[test]
fn crash_recover_resurrects_stale_pre_crash_state_on_all_drivers() {
    // Node 0 crashes at step 5 holding the stabilized maximum 4, then
    // CorruptAll zeroes every *live* state. The survivors re-flood to
    // 4 among themselves while the dark node sits at its corrupted 0 —
    // and at step 15 it must resurrect with the STALE pre-crash 4 and
    // its links restored, not with whatever its live state decayed to.
    let plan = || {
        let mut plan = FaultPlan::new();
        plan.at(
            5,
            Fault::CrashRecover {
                node: NodeId::new(0),
                dark_for: 10,
            },
        )
        .at(5, Fault::CorruptAll);
        plan
    };
    let dark = |label: &str, states: &[u32]| {
        assert_eq!(states[0], 0, "{label}: dark node keeps its corrupted state");
        assert_eq!(&states[1..], &[4, 4, 4, 4], "{label}: survivors re-flood");
    };
    let back = |label: &str, states: &[u32]| {
        assert_eq!(
            states,
            &[4, 4, 4, 4, 4],
            "{label}: resurrected and re-joined"
        );
    };

    let mut net = Scenario::new(MaxFlood)
        .topology(builders::line(5))
        .seed(3)
        .faults(plan())
        .build()
        .expect("valid scenario");
    while net.now() < 14 {
        net.step();
    }
    dark("round", net.states());
    net.run_to(&StopWhen::stable_for(4).within(200))
        .expect_stable("round driver re-stabilizes after resurrection");
    back("round", net.states());

    let mut driver = Scenario::new(MaxFlood)
        .topology(builders::line(5))
        .seed(3)
        .faults(plan())
        .build_events(EventConfig::default())
        .expect("valid event scenario");
    driver.run_until_time(14.0);
    dark("events", driver.states());
    driver.run_until_time(60.0);
    back("events", driver.states());

    for threads in [1, 4] {
        let mut actors = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(3)
            .faults(plan())
            .build_actors(threads)
            .expect("valid actor scenario");
        while actors.now() < 14 {
            actors.step();
        }
        dark("actors", actors.states());
        actors
            .run_to(&StopWhen::stable_for(4).within(200))
            .expect_stable("actor driver re-stabilizes after resurrection");
        back("actors", actors.states());
    }
}

#[test]
fn actor_isolation_applies_before_the_same_periods_frames() {
    // The actor-fabric version of the in-flight question: a fault and
    // a beacon slot land on the same period. If the beacon slot could
    // fire first, node 2's period-0 frame would leak its value across
    // the about-to-vanish links. The governor orders fault ≤ send, so
    // nothing ever crosses.
    for threads in [1, 4] {
        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)));
        let mut actors = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(9)
            .faults(plan)
            .build_actors(threads)
            .expect("valid actor scenario");
        actors
            .run_to(&StopWhen::stable_for(4).within(200))
            .expect_stable("fragments settle");
        assert_eq!(*actors.state(NodeId::new(0)), 1, "threads={threads}");
        assert_eq!(*actors.state(NodeId::new(1)), 1, "threads={threads}");
        assert_eq!(*actors.state(NodeId::new(2)), 2, "threads={threads}");
        assert_eq!(*actors.state(NodeId::new(4)), 4, "threads={threads}");
    }
}
