//! Self-stabilization integration tests: convergence from arbitrary
//! configurations and closure of legitimate ones, under every fault
//! scenario the drivers can express (total corruption, partial
//! corruption, repeated corruption mid-convergence, link failures,
//! corruption under a lossy medium).

use rand::SeedableRng;
use selfstab::prelude::*;

fn field(seed: u64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    builders::poisson(250.0, 0.12, &mut rng)
}

fn default_scenario(seed: u64) -> Scenario<DensityCluster> {
    Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(field(seed))
        .seed(seed)
}

#[test]
fn total_corruption_reconverges_to_the_same_fixpoint() {
    let mut net = default_scenario(1).build().expect("valid scenario");
    net.run(25);
    let fixpoint = extract_clustering(net.states()).expect("stabilized");
    let stop = StopWhen::stable_for(3).within(10_000);
    for round in 0..5 {
        net.corrupt_all();
        let report = net.run_to(&stop);
        assert!(report.is_stable(), "round {round}: no reconvergence");
        assert_eq!(
            extract_clustering(net.states()).expect("clean"),
            fixpoint,
            "round {round}"
        );
    }
}

#[test]
fn partial_corruption_reconverges() {
    let stop = StopWhen::stable_for(3).within(10_000);
    for fraction in [0.1, 0.5, 0.9] {
        let mut net = default_scenario(2).build().expect("valid scenario");
        net.run(25);
        let fixpoint = extract_clustering(net.states()).expect("stabilized");
        net.corrupt_fraction(fraction);
        net.run_to(&stop).expect_stable("reconverges");
        assert_eq!(extract_clustering(net.states()).expect("clean"), fixpoint);
    }
}

#[test]
fn corruption_during_convergence_is_harmless() {
    // Corrupt before the system ever stabilizes — the definition of
    // self-stabilization makes no assumption about when faults stop.
    // The scripted fault plan fires inside the driver itself.
    let mut plan = FaultPlan::new();
    for step in [1, 3, 6, 11] {
        plan.at(step, Fault::CorruptFraction(0.4));
    }
    let mut net = default_scenario(3)
        .faults(plan)
        .build()
        .expect("valid scenario");
    net.run(12); // all scripted faults have fired by now
    net.run_to(&StopWhen::stable_for(3).within(10_000))
        .expect_stable("still converges");
    check_legitimate(&net).expect("legitimate after turbulent start");
}

#[test]
fn closure_holds_for_thousands_of_steps() {
    let mut net = default_scenario(4).build().expect("valid scenario");
    net.run(30);
    let fixpoint = extract_clustering(net.states()).expect("stabilized");
    for _ in 0..20 {
        net.run(100);
        assert_eq!(
            extract_clustering(net.states()).expect("clean"),
            fixpoint,
            "output drifted without any fault"
        );
    }
}

#[test]
fn corruption_under_lossy_medium_reconverges() {
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig {
        cache_ttl: 30,
        ..ClusterConfig::default()
    }))
    .medium(BernoulliLoss::new(0.6))
    .topology(field(5))
    .seed(5)
    .build()
    .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(25).within(20_000))
        .expect_stable("initial convergence");
    let fixpoint = extract_clustering(net.states()).expect("stabilized");
    net.corrupt_all();
    net.run_to(&StopWhen::stable_for(25).within(40_000))
        .expect_stable("reconvergence under loss");
    assert_eq!(extract_clustering(net.states()).expect("clean"), fixpoint);
}

#[test]
fn dag_names_self_heal_with_the_full_protocol() {
    let topo = builders::grid(8, 8, 0.2);
    let gamma = NameSpace::delta_squared(topo.max_degree());
    let config = ClusterConfig {
        dag: Some(DagConfig {
            gamma,
            variant: DagVariant::Randomized,
        }),
        ..ClusterConfig::default()
    };
    let mut net = Scenario::new(DensityCluster::new(config))
        .topology(topo)
        .seed(6)
        .validate(move |t| config.validate_for(t))
        .build()
        .expect("valid scenario");
    let stop = StopWhen::stable_for(4).within(1000);
    net.run_to(&stop).expect_stable("stabilizes");
    net.corrupt_all();
    net.run_to(&stop).expect_stable("reconverges");
    check_legitimate(&net).expect("names and election both legitimate");
}

#[test]
fn link_failure_and_recovery_restabilizes() {
    let topo = field(7);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo.clone())
        .seed(7)
        .build()
        .expect("valid scenario");
    net.run(25);
    let before = extract_clustering(net.states()).expect("stabilized");

    // Kill the busiest node's radio.
    let busiest = topo
        .nodes()
        .max_by_key(|&p| topo.degree(p))
        .expect("non-empty");
    net.isolate(busiest);
    let stop = StopWhen::stable_for(5).within(5000);
    net.run_to(&stop)
        .expect_stable("restabilizes without the hub");
    let during = extract_clustering(net.states()).expect("clean");
    assert!(during.is_head(busiest), "an isolated node heads itself");

    // Radio comes back: the network returns to the original fixpoint.
    net.set_topology(topo).expect("same node count");
    net.run_to(&stop)
        .expect_stable("restabilizes after recovery");
    assert_eq!(extract_clustering(net.states()).expect("clean"), before);
}

#[test]
fn event_driver_corruption_reconverges() {
    let mut driver = Scenario::new(DensityCluster::new(ClusterConfig {
        cache_ttl: 25,
        ..ClusterConfig::default()
    }))
    .topology(field(8))
    .seed(8)
    .build_events(EventConfig::default())
    .expect("valid event scenario");
    // The quiet window must outlast the cache TTL (25 periods):
    // corrupted ghost entries influence the output *constantly* until
    // they expire, so a shorter window could report them as "stable".
    driver
        .run_until_output_stable(1.0, 30, 3000.0)
        .expect("initial convergence");
    let fixpoint = extract_clustering(driver.states()).expect("stabilized");
    driver.corrupt_all();
    driver
        .run_until_output_stable(1.0, 30, 6000.0)
        .expect("reconvergence");
    assert_eq!(
        extract_clustering(driver.states()).expect("clean"),
        fixpoint
    );
}
