//! End-to-end certification of the engine under adversary campaigns.
//!
//! One [`CampaignSpec`] drives all three execution drivers through the
//! full fault model — crash-recover, Byzantine beacons, partition/heal,
//! regional jam, plus the classic corruptions — and the certifier must
//! come back clean on every cell: closure holds over quiet intervals,
//! every injection restabilizes inside the horizon, and the forced-eager
//! liveness audit finds no gated-asleep node with stale state.
//!
//! The last test is the audit's own certification: a deliberately
//! broken wake rule (state corrupted *without* waking the dirty-set,
//! via the test-only backdoor) is invisible to plain convergence
//! checking and must be caught by the audit.

use selfstab::prelude::*;
use selfstab::sim::EventConfig;

/// Max-flood over `u32` beacons, gated: the canonical silent protocol.
/// Its legitimate configurations are per-component maxima, so every
/// healing fault leaves a recoverable fixpoint.
struct MaxFlood;

impl Protocol for MaxFlood {
    type State = u32;
    type Beacon = u32;
    fn init(&self, node: NodeId, _rng: &mut rand::rngs::StdRng) -> u32 {
        node.value()
    }
    fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
    fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
        *state = (*state).max(*beacon);
    }
    fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut rand::rngs::StdRng) {
        *state = (*state).max(node.value());
    }
    fn activity(&self) -> selfstab::sim::Activity {
        selfstab::sim::Activity::Gated
    }
    fn beacon_changed(&self, old: &u32, new: &u32) -> bool {
        old != new
    }
}

impl Observable for MaxFlood {
    type Output = u32;
    fn output(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
}

impl Corruptible for MaxFlood {
    fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut rand::rngs::StdRng) {
        *state = 0;
    }
}

fn deployment() -> Topology {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    builders::uniform(30, 0.3, &mut rng)
}

#[test]
fn one_campaign_certifies_clean_on_all_three_drivers() {
    let topo = deployment();
    let spec = CampaignSpec::smoke(7);
    let cfg = CertifyConfig::default();

    let mut net = Scenario::new(MaxFlood)
        .topology(topo.clone())
        .seed(5)
        .build()
        .expect("valid scenario");
    let round = certify(
        &mut net,
        "max-flood",
        "perfect",
        "round",
        &spec,
        &topo,
        &cfg,
    );
    assert!(round.is_clean(), "round cell dirty: {}", round.headline());

    let mut events = Scenario::new(MaxFlood)
        .topology(topo.clone())
        .seed(5)
        .build_events(EventConfig::default())
        .expect("valid event scenario");
    let event = certify(
        &mut events,
        "max-flood",
        "perfect",
        "events",
        &spec,
        &topo,
        &cfg,
    );
    assert!(event.is_clean(), "event cell dirty: {}", event.headline());

    let mut actors = Scenario::new(MaxFlood)
        .topology(topo.clone())
        .seed(5)
        .build_actors(2)
        .expect("valid actor scenario");
    let actor = certify(
        &mut actors,
        "max-flood",
        "perfect",
        "actors",
        &spec,
        &topo,
        &cfg,
    );
    assert!(actor.is_clean(), "actor cell dirty: {}", actor.headline());

    // All three cells saw the identical script.
    assert_eq!(round.injections, event.injections);
    assert_eq!(round.injections, actor.injections);
}

#[test]
fn round_driver_certificates_are_byte_deterministic() {
    let topo = deployment();
    let spec = CampaignSpec::smoke(13);
    let cfg = CertifyConfig::default();
    let run = || {
        let mut net = Scenario::new(MaxFlood)
            .topology(deployment())
            .seed(9)
            .build()
            .expect("valid scenario");
        certify(
            &mut net,
            "max-flood",
            "perfect",
            "round",
            &spec,
            &topo,
            &cfg,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same campaign, same certificate");
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn gated_csma_cell_certifies_clean() {
    // The statistically-gated contention path: the audit's soundness
    // argument (received beacons are state no-ops once legitimate)
    // carries the same campaign through slotted CSMA.
    let topo = deployment();
    let spec = CampaignSpec::smoke(3);
    let cfg = CertifyConfig::default();
    let mut net = Scenario::new(MaxFlood)
        .topology(topo.clone())
        .seed(11)
        .medium(SlottedCsma::new(8))
        .build()
        .expect("valid scenario");
    let cert = certify(&mut net, "max-flood", "csma-8", "round", &spec, &topo, &cfg);
    assert!(
        cert.is_clean(),
        "gated CSMA cell dirty: {}",
        cert.headline()
    );
}

#[test]
fn every_fault_kind_heals_on_every_medium() {
    // One certificate per (kind, medium) cell on the round driver —
    // including permanent Isolate, whose fragments still restabilize
    // and still owe a clean closure + audit.
    let topo = deployment();
    let cfg = CertifyConfig::default();
    for kind in FaultKind::all() {
        let spec = CampaignSpec {
            seed: 17,
            injections: 3,
            spacing: 10,
            max_window: 4,
            kinds: vec![kind],
        };
        for medium_ix in 0..3u8 {
            let cert = match medium_ix {
                0 => {
                    let mut net = Scenario::new(MaxFlood)
                        .topology(topo.clone())
                        .seed(23)
                        .build()
                        .expect("valid scenario");
                    certify(
                        &mut net,
                        "max-flood",
                        "perfect",
                        "round",
                        &spec,
                        &topo,
                        &cfg,
                    )
                }
                1 => {
                    let mut net = Scenario::new(MaxFlood)
                        .topology(topo.clone())
                        .seed(23)
                        .medium(BernoulliLoss::new(0.5))
                        .build()
                        .expect("valid scenario");
                    certify(
                        &mut net,
                        "max-flood",
                        "tau-0.5",
                        "round",
                        &spec,
                        &topo,
                        &cfg,
                    )
                }
                _ => {
                    let mut net = Scenario::new(MaxFlood)
                        .topology(topo.clone())
                        .seed(23)
                        .medium(SlottedCsma::new(8))
                        .build()
                        .expect("valid scenario");
                    certify(&mut net, "max-flood", "csma-8", "round", &spec, &topo, &cfg)
                }
            };
            assert!(
                cert.is_clean(),
                "{kind:?} on {} dirty: {}",
                cert.medium,
                cert.headline()
            );
        }
    }
}

#[test]
fn certificates_report_per_class_statistics() {
    let topo = deployment();
    let spec = CampaignSpec {
        seed: 5,
        injections: 8,
        spacing: 10,
        max_window: 3,
        kinds: FaultKind::healing(),
    };
    let mut net = Scenario::new(MaxFlood)
        .topology(topo.clone())
        .seed(2)
        .build()
        .expect("valid scenario");
    let cert = certify(
        &mut net,
        "max-flood",
        "perfect",
        "round",
        &spec,
        &topo,
        &CertifyConfig::default(),
    );
    assert!(cert.is_clean(), "{}", cert.headline());
    assert_eq!(
        cert.classes.iter().map(|c| c.injections).sum::<usize>(),
        cert.injections,
        "every injection lands in exactly one class"
    );
    for class in &cert.classes {
        assert!(class.p50 <= class.p95 && class.p95 <= class.worst);
        assert!(
            class.wilson_low <= 1.0 && class.wilson_high >= class.wilson_low,
            "Wilson interval is ordered"
        );
        assert!(class.worst <= cert.worst_restabilization);
    }
    let json = cert.to_json();
    assert!(json.contains("\"clean\":true"), "JSON carries the verdict");
}

#[test]
fn broken_wake_rule_is_caught_by_the_audit() {
    // A fault that mutates state WITHOUT waking the dirty-set is the
    // exact bug class the audit exists for: the gated run looks
    // perfectly stable — the victim is asleep on stale state — so no
    // convergence check can object. The forced-eager sweep must flush
    // it out.
    let mut net = Scenario::new(MaxFlood)
        .topology(builders::line(5))
        .seed(4)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(4).within(200))
        .expect_stable("stabilizes from cold start");
    assert_eq!(liveness_audit(&mut net, 3), 0, "clean engine audits clean");

    // The well-behaved path: a properly injected corruption wakes the
    // victim, the network restabilizes, and the audit stays clean.
    net.inject(&Fault::CorruptNode(NodeId::new(0)))
        .expect("node count unchanged");
    net.run_to(&StopWhen::stable_for(4).within(200))
        .expect_stable("restabilizes after an honest fault");
    assert_eq!(
        liveness_audit(&mut net, 3),
        0,
        "honest faults leave no residue"
    );

    // Drain the beacons the eager sweep re-queued, so the network is
    // genuinely quiescent before the silent corruption lands.
    net.run_to(&StopWhen::stable_for(6).within(200))
        .expect_stable("quiescent again after the audit");

    // The broken wake rule: corrupt node 0 silently. Gated steps leave
    // it asleep — stale state persists indefinitely…
    net.corrupt_silently(NodeId::new(0));
    let stale = *net.state(NodeId::new(0));
    assert_eq!(stale, 0, "the corruption landed");
    for _ in 0..20 {
        net.step();
    }
    assert_eq!(
        *net.state(NodeId::new(0)),
        0,
        "gated scheduling never notices the silent corruption"
    );
    // …until the audit pins eager and the node's output moves.
    let caught = liveness_audit(&mut net, 3);
    assert!(
        caught >= 1,
        "the liveness audit must flag the silently-corrupted node"
    );
    assert_eq!(
        *net.state(NodeId::new(0)),
        4,
        "the eager sweep heals what the audit flagged"
    );
}
