//! Retrospective traces of a run: per-step projections of the global
//! state, for studying convergence dynamics (how the head count or the
//! number of incorrect nodes evolves over time — the curves behind the
//! paper's stabilization-time numbers).

/// A time series of per-step global projections.
///
/// Unlike [`crate::StabilityTracker`] (which answers "has it been
/// quiet long enough?" online), a trace keeps the full history so an
/// experiment can measure *how* the system converged: last-change
/// step, number of changed nodes per step, or any derived series.
///
/// # Examples
///
/// ```
/// use mwn_sim::Trace;
///
/// let mut trace = Trace::new();
/// trace.record(0, vec![1, 1, 1]);
/// trace.record(1, vec![1, 2, 1]);
/// trace.record(2, vec![1, 2, 1]);
/// assert_eq!(trace.last_change(), Some(1));
/// assert_eq!(trace.changed_counts(), vec![1, 0]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace<K> {
    snapshots: Vec<(u64, Vec<K>)>,
}

impl<K: PartialEq + Clone> Trace<K> {
    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            snapshots: Vec::new(),
        }
    }

    /// Appends the projection observed at time `now`.
    pub fn record(&mut self, now: u64, projection: Vec<K>) {
        self.snapshots.push((now, projection));
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The recorded snapshots.
    pub fn snapshots(&self) -> &[(u64, Vec<K>)] {
        &self.snapshots
    }

    /// The time of the last snapshot that differed from its
    /// predecessor — the measured stabilization time. `None` if fewer
    /// than two snapshots or nothing ever changed.
    pub fn last_change(&self) -> Option<u64> {
        self.snapshots
            .windows(2)
            .rev()
            .find(|w| w[0].1 != w[1].1)
            .map(|w| w[1].0)
    }

    /// How many entries changed between consecutive snapshots (length
    /// = `len() - 1`). Projections of different lengths count as fully
    /// changed.
    pub fn changed_counts(&self) -> Vec<usize> {
        self.snapshots
            .windows(2)
            .map(|w| {
                if w[0].1.len() != w[1].1.len() {
                    w[1].1.len().max(w[0].1.len())
                } else {
                    w[0].1.iter().zip(&w[1].1).filter(|(a, b)| a != b).count()
                }
            })
            .collect()
    }

    /// `true` iff the final `quiet` consecutive snapshots are equal
    /// (and at least that many exist).
    pub fn is_stable_for(&self, quiet: usize) -> bool {
        if self.snapshots.len() < quiet.max(1) {
            return false;
        }
        let tail = &self.snapshots[self.snapshots.len() - quiet.max(1)..];
        tail.windows(2).all(|w| w[0].1 == w[1].1)
    }

    /// The final snapshot's projection, if any.
    pub fn last(&self) -> Option<&[K]> {
        self.snapshots.last().map(|(_, p)| p.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let trace: Trace<u32> = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.last_change(), None);
        assert!(trace.changed_counts().is_empty());
        assert!(!trace.is_stable_for(1));
        assert_eq!(trace.last(), None);
    }

    #[test]
    fn change_accounting() {
        let mut trace = Trace::new();
        trace.record(0, vec![0, 0, 0]);
        trace.record(1, vec![0, 1, 2]);
        trace.record(2, vec![0, 1, 2]);
        trace.record(3, vec![9, 1, 2]);
        trace.record(4, vec![9, 1, 2]);
        assert_eq!(trace.changed_counts(), vec![2, 0, 1, 0]);
        assert_eq!(trace.last_change(), Some(3));
        assert_eq!(trace.last(), Some(&[9, 1, 2][..]));
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn stability_window() {
        let mut trace = Trace::new();
        for t in 0..5 {
            trace.record(t, vec![t.min(2)]);
        }
        // values: 0,1,2,2,2 → stable for the last 3 samples.
        assert!(trace.is_stable_for(3));
        assert!(!trace.is_stable_for(4));
        assert!(trace.is_stable_for(1));
    }

    #[test]
    fn never_changing_trace_has_no_change_time() {
        let mut trace = Trace::new();
        trace.record(0, vec![7]);
        trace.record(1, vec![7]);
        assert_eq!(trace.last_change(), None);
        assert!(trace.is_stable_for(2));
    }

    #[test]
    fn length_mismatch_counts_as_full_change() {
        let mut trace = Trace::new();
        trace.record(0, vec![1, 2]);
        trace.record(1, vec![1, 2, 3]);
        assert_eq!(trace.changed_counts(), vec![3]);
    }
}
