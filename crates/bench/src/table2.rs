//! **Table 2**: the information schedule — what a node has learned
//! after each step (neighbors after 1, density after 2, father after
//! 3, cluster-head within tree-depth more steps). Measured on cold
//! starts over random deployments.

use mwn_cluster::{measure_info_schedule, ClusterConfig, DensityCluster};
use mwn_graph::builders;
use mwn_metrics::{RunningStats, Table};
use mwn_sim::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::ExperimentScale;

/// Mean first-step at which each knowledge level is reached.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table2Result {
    /// Step at which all neighbor tables are complete (paper: 1).
    pub neighbors: f64,
    /// Step at which all densities are correct (paper: 2).
    pub density: f64,
    /// Step at which all fathers are correct (paper: 3).
    pub parent: f64,
    /// Step at which all cluster-heads are correct (paper: bounded by
    /// the clusterization tree depth).
    pub head: f64,
}

/// Measures the schedule over `scale.runs` random deployments.
pub fn run(scale: ExperimentScale) -> Table2Result {
    let results = scale.sweep().map(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = builders::poisson(scale.lambda / 4.0, 0.1, &mut rng);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        let schedule = measure_info_schedule(&mut net, 200);
        (
            schedule.neighbors.unwrap_or(u64::MAX) as f64,
            schedule.density.unwrap_or(u64::MAX) as f64,
            schedule.parent.unwrap_or(u64::MAX) as f64,
            schedule.head.unwrap_or(u64::MAX) as f64,
        )
    });
    let collect = |f: fn(&(f64, f64, f64, f64)) -> f64| -> f64 {
        results.iter().map(f).collect::<RunningStats>().mean()
    };
    Table2Result {
        neighbors: collect(|r| r.0),
        density: collect(|r| r.1),
        parent: collect(|r| r.2),
        head: collect(|r| r.3),
    }
}

/// Formats the result in the paper's layout.
pub fn render(result: &Table2Result) -> Table {
    let mut table = Table::new("Table 2: information available after each step (measured)");
    table.set_headers(["knowledge", "mean first step (paper)"]);
    table.add_row(
        "neighborhood table",
        vec![format!("{:.2}  (1)", result.neighbors)],
    );
    table.add_row("its density", vec![format!("{:.2}  (2)", result.density)]);
    table.add_row("its father", vec![format!("{:.2}  (3)", result.parent)]);
    table.add_row(
        "its cluster-head",
        vec![format!("{:.2}  (3 + tree depth)", result.head)],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_1_2_3_on_perfect_medium() {
        let result = run(ExperimentScale::quick());
        assert_eq!(result.neighbors, 1.0);
        assert_eq!(result.density, 2.0);
        assert_eq!(result.parent, 3.0);
        assert!(result.head >= result.parent);
        assert!(result.head < 20.0, "heads converge shortly after fathers");
    }

    #[test]
    fn render_mentions_paper_values() {
        let table = render(&run(ExperimentScale::quick()));
        let s = table.to_string();
        assert!(s.contains("(1)"));
        assert!(s.contains("(3 + tree depth)"));
    }
}
