//! Baseline clustering algorithms the paper positions itself against.
//!
//! Section 2's state of the art groups prior clusterings by their
//! election criterion: identity-based (lowest identifier, Baker &
//! Ephremides \[2\], CBRP \[12\]), connectivity-based (highest degree,
//! Chen & Stojmenovic \[5\]) and the hybrid max-min d-cluster (Amis et
//! al. \[1\]). Reference \[16\] showed the density metric is more stable
//! under mobility than the degree and max-min metrics; the ablation
//! bench reproduces that comparison.
//!
//! The lowest-id and highest-degree baselines reuse the *same*
//! self-stabilizing machinery as the paper's protocol with a different
//! [`MetricKind`] — demonstrating the conclusion's claim that the
//! approach "could be applied to several clusterization metrics". The
//! max-min d-cluster heuristic has a genuinely different structure
//! (2d synchronous flooding rounds) and is implemented separately in
//! [`max_min_clustering`].
//!
//! # Examples
//!
//! ```
//! use mwn_baselines::{lowest_id_config, max_min_clustering};
//! use mwn_cluster::oracle;
//! use mwn_graph::builders;
//!
//! let topo = builders::line(5);
//! let lowest = oracle(&topo, &lowest_id_config());
//! assert_eq!(lowest.head_count(), 1); // node 0 captures the line
//! let mm = max_min_clustering(&topo, 2);
//! assert!(mm.head_count() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod max_min;

pub use max_min::max_min_clustering;

use mwn_cluster::{ClusterConfig, MetricKind, OracleConfig};

/// Oracle configuration for the lowest-identifier clustering (Baker &
/// Ephremides): a constant metric makes the smallest id win every
/// neighborhood.
pub fn lowest_id_config() -> OracleConfig {
    OracleConfig {
        metric: MetricKind::Unit,
        ..OracleConfig::default()
    }
}

/// Oracle configuration for highest-degree clustering (Chen &
/// Stojmenovic).
pub fn highest_degree_config() -> OracleConfig {
    OracleConfig {
        metric: MetricKind::Degree,
        ..OracleConfig::default()
    }
}

/// Distributed protocol configuration for the lowest-identifier
/// clustering — the paper's machinery with a constant metric.
pub fn lowest_id_protocol() -> ClusterConfig {
    ClusterConfig {
        metric: MetricKind::Unit,
        ..ClusterConfig::default()
    }
}

/// Distributed protocol configuration for highest-degree clustering.
pub fn highest_degree_protocol() -> ClusterConfig {
    ClusterConfig {
        metric: MetricKind::Degree,
        ..ClusterConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_cluster::{extract_clustering, oracle, DensityCluster};
    use mwn_graph::{builders, NodeId};
    use mwn_sim::{Scenario, StopWhen};

    #[test]
    fn lowest_id_elects_local_id_minima() {
        let topo = builders::ring(6);
        let c = oracle(&topo, &lowest_id_config());
        // On a 6-ring, nodes 0 and (its antipode region) win: the id
        // local minima are 0 and 2? Node 2's neighbors are 1 and 3 —
        // 1 < 2, so 2 is not a minimum. Minima: 0 only... and 3? 3's
        // neighbors are 2 and 4, both > 2? No: 2 < 3. So only node 0.
        assert!(c.is_head(NodeId::new(0)));
        for p in topo.nodes() {
            let is_min = topo.neighbors(p).iter().all(|&q| p < q);
            assert_eq!(c.is_head(p), is_min, "node {p}");
        }
    }

    #[test]
    fn highest_degree_elects_the_star_center() {
        let topo = builders::star(8);
        let c = oracle(&topo, &highest_degree_config());
        assert!(c.is_head(NodeId::new(0)));
        assert_eq!(c.head_count(), 1);
    }

    #[test]
    fn distributed_lowest_id_matches_its_oracle() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let topo = builders::uniform(60, 0.18, &mut rng);
        let mut net = Scenario::new(DensityCluster::new(lowest_id_protocol()))
            .topology(topo)
            .seed(21)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(3).within(300))
            .expect_stable("stabilizes");
        let got = extract_clustering(net.states()).unwrap();
        assert_eq!(got, oracle(net.topology(), &lowest_id_config()));
    }

    #[test]
    fn event_driven_lowest_id_matches_its_oracle_and_goes_silent() {
        // The baselines ride on the paper's machinery, so they inherit
        // the activity-driven engine: a stabilized lowest-id clustering
        // stops transmitting under event-driven freshness.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let topo = builders::uniform(60, 0.18, &mut rng);
        let mut net = Scenario::new(DensityCluster::new(lowest_id_protocol().event_driven()))
            .topology(topo)
            .seed(23)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(3).within(300))
            .expect_stable("stabilizes");
        let got = extract_clustering(net.states()).unwrap();
        assert_eq!(got, oracle(net.topology(), &lowest_id_config()));
        net.run(10);
        assert_eq!(net.last_activity().senders, 0, "baseline goes silent too");
    }

    #[test]
    fn distributed_degree_matches_its_oracle() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let topo = builders::uniform(60, 0.18, &mut rng);
        let mut net = Scenario::new(DensityCluster::new(highest_degree_protocol()))
            .topology(topo)
            .seed(22)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(3).within(300))
            .expect_stable("stabilizes");
        let got = extract_clustering(net.states()).unwrap();
        assert_eq!(got, oracle(net.topology(), &highest_degree_config()));
    }
}
