//! Offline shim of `serde`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so
//! they are ready for a real serialization backend, but the build
//! environment has no registry access. This shim provides the two
//! marker traits and re-exports no-op derive macros so those types
//! compile unchanged. No serialization is performed anywhere in the
//! workspace; swapping in real serde is a one-line manifest change.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
