//! Topology substrate for multihop wireless network simulation.
//!
//! This crate provides the graph model used throughout the
//! `selfstab-mwn` workspace, a reproduction of *"Self-stabilization in
//! self-organized Multihop Wireless Networks"* (Mitton, Fleury,
//! Guérin Lassous, Tixeuil — ICDCS 2005 / INRIA RR-5426).
//!
//! The paper's system model is a set `V` of nodes with unique
//! identifiers, where each node `p` communicates with a neighborhood
//! `N_p` determined by radio range, links are bidirectional, and the
//! node distribution is sparse (`|N_p| <= δ` for a known constant `δ`).
//! [`Topology`] captures exactly that model: an undirected graph with
//! optional 2-D positions, built either from an explicit edge list or as
//! a unit-disk graph over deployed points.
//!
//! # Examples
//!
//! Build the 1000-node random deployment of the paper's Section 5 and
//! inspect its structure:
//!
//! ```
//! use mwn_graph::{builders, NodeId};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! // Poisson intensity λ = 1000 over the unit square, radio range R = 0.1.
//! let topo = builders::poisson(1000.0, 0.1, &mut rng);
//! assert!(topo.len() > 800);
//! let p = NodeId::new(0);
//! for &q in topo.neighbors(p) {
//!     assert!(topo.neighbors(q).contains(&p)); // links are bidirectional
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
mod error;
mod node;
mod point;
pub mod stats;
mod topology;
pub mod traversal;

pub use error::GraphError;
pub use node::NodeId;
pub use point::Point2;
pub use topology::{Edges, Topology, TopologyDelta};
