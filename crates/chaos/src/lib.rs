//! Adversary campaigns and the stabilization certifier.
//!
//! The paper's fault model is the strongest possible — the adversary
//! may place the system in *any* configuration — and the engine's
//! incremental machinery (dirty-set wake rules, statistical slot
//! occupancy) is exactly the code most likely to break silently under
//! a fault shape it was never driven through: a gated node that never
//! wakes after a fault is a safety violation no convergence test can
//! see, because the run simply stabilizes to the wrong fixpoint.
//!
//! This crate turns "self-stabilizing" from a narrative claim into a
//! machine-checkable certificate:
//!
//! * [`ChaosHarness`] — one trait over all three execution drivers
//!   (round, event, actor), exposing exactly what the certifier needs:
//!   inject a fault, advance logical time, project outputs, pin eager
//!   scheduling.
//! * [`CampaignSpec`] — a compact, seed-deterministic description of a
//!   randomized adversary schedule over fault kinds × victims ×
//!   timing. The same spec replays the same campaign on any driver.
//! * [`certify`] — runs a campaign and emits a [`Certificate`] per
//!   (protocol, medium, driver) cell: **closure** (once legitimate,
//!   stays legitimate absent faults), **convergence**
//!   (restabilization-time distribution with Wilson bounds per fault
//!   class), and the hard **liveness audit** ([`liveness_audit`]).
//!
//! # The liveness audit
//!
//! A configuration of a *silent* protocol is legitimate exactly when
//! it is a fixpoint of eager re-execution: every guard re-run and
//! every beacon re-delivered must change nothing. So after a campaign
//! heals, the auditor pins the driver eager, sweeps a few periods, and
//! compares outputs: any node whose output moves was **gated-asleep
//! with stale state** — a wake-rule bug, not a protocol property. The
//! check is sound on every medium, including contention media whose
//! gating is only distributional: delivery randomness differs under
//! the eager pin, but received beacons are state no-ops by the silence
//! contract, so a clean engine's outputs cannot move.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod certify;
mod harness;

pub use campaign::{CampaignSpec, FaultKind};
pub use certify::{certify, liveness_audit, Certificate, CertifyConfig, ClassStats};
pub use harness::ChaosHarness;
