//! Quickstart: deploy a random field, run the self-stabilizing
//! density clustering, and inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rand::SeedableRng;
use selfstab::prelude::*;

fn main() {
    // The paper's Section 5 deployment: a Poisson field of intensity
    // λ = 1000 on the unit square (read as 1 km²), radio range 100 m.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2005);
    let topo = builders::poisson(1000.0, 0.1, &mut rng);
    println!(
        "deployed {} nodes, {} links, max degree δ = {}",
        topo.len(),
        topo.edge_count(),
        topo.max_degree()
    );

    // Describe the run as a scenario (perfect medium is the default)
    // and run until the election output is stable.
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo)
        .seed(7)
        .build()
        .expect("valid scenario");
    let report = net.run_to(&StopWhen::stable_for(3).within(1000));
    let stabilized = report.expect_stable("the protocol stabilizes (Lemma 2)");
    println!("stabilized after {stabilized} steps (Δ(τ) units)");

    // Extract and verify the clustering.
    let clustering = extract_clustering(net.states()).expect("stable states are clean");
    check_legitimate(&net).expect("configuration is legitimate");
    assert_eq!(
        clustering,
        oracle(net.topology(), &OracleConfig::default()),
        "distributed result equals the centralized fixpoint"
    );

    let stats = ClusteringStats::of(net.topology(), &clustering).expect("non-empty");
    println!(
        "clusters: {} | mean size: {:.1} | mean tree length: {:.2} | mean head eccentricity: {:.2}",
        stats.clusters,
        stats.mean_cluster_size,
        stats.mean_tree_length,
        stats.mean_head_eccentricity
    );

    // Show the three largest clusters.
    let mut clusters = clustering.clusters();
    clusters.sort_by_key(|(_, members)| std::cmp::Reverse(members.len()));
    for (head, members) in clusters.iter().take(3) {
        println!(
            "  head {head}: {} members, density {:.3}",
            members.len(),
            density_of(net.topology(), *head).as_f64()
        );
    }
}
