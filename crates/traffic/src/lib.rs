//! The traffic plane: data flows over the stabilized overlay.
//!
//! The paper's clustering machinery exists to *carry traffic*; this
//! crate asks the production question the control-plane benches
//! cannot: **how much data does the network lose while
//! re-stabilizing?** It injects heavy-tailed flow workloads
//! ([`DemandModel`]: Zipf sink popularity × Pareto flow sizes),
//! forwards packets hop-by-hop over routes answered by the stabilized
//! structure (any [`mwn_cluster::RoutingView`] — hierarchical
//! cluster routes or the flat BFS baseline), and accounts for every
//! packet in a [`TrafficReport`]: throughput, latency percentiles,
//! hop counts, and a three-way drop taxonomy that separates
//! congestion from control-plane unavailability.
//!
//! Mechanically it is a columnar batch engine in the workspace
//! house style: an SoA packet table with free-list recycling, bounded
//! per-node FIFO queues, and a forwarding pass that runs read-only
//! examination shards over [`mwn_sim::run_pooled`] followed by a
//! serial merge — so sharded and serial execution are byte-identical,
//! the same discipline the round driver's active pass follows. It
//! interoperates with both clocks via [`run_rounds`] (synchronous
//! rounds) and [`run_events`] (event-driver logical steps).
//!
//! # Example: loss under a scripted fault
//!
//! ```
//! use mwn_cluster::{extract_clustering, ClusterConfig, DensityCluster, HierarchicalRoutes};
//! use mwn_graph::builders;
//! use mwn_sim::{Scenario, StopWhen};
//! use mwn_traffic::{run_rounds, DemandModel, TrafficConfig, TrafficPlane};
//!
//! let topo = builders::grid(8, 8, 0.3);
//! let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
//!     .topology(topo.clone())
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! net.run_to(&StopWhen::stable_for(5).within(500));
//!
//! let mut plane = TrafficPlane::new(topo.len(), TrafficConfig::default());
//! plane.add_flows(&DemandModel { flows: 8, ..DemandModel::default() }.generate(topo.len(), 2));
//! let report = run_rounds(&mut net, &mut plane, 2_000, |topo, states| {
//!     extract_clustering(states).and_then(|c| HierarchicalRoutes::try_new(topo, c))
//! });
//! assert_eq!(report.delivered, report.injected); // quiet network: 100%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demand;
mod plane;
mod report;
mod run;

pub use demand::{hottest_sink, DemandModel, FlowSpec};
pub use plane::{TrafficConfig, TrafficPlane};
pub use report::TrafficReport;
pub use run::{run_events, run_rounds};
