//! Beacon frame serialization for the actor driver.
//!
//! The actor driver's nodes exchange **serialized frames**, not shared
//! references: a sender encodes its beacon into bytes once, and every
//! receiver decodes its own copy — exactly the boundary a real radio
//! stack imposes. The workspace's offline `serde` shim has no
//! serializer, so the codec is hand-rolled: little-endian fixed-width
//! integers and length-prefixed sequences, with a fallible decoder
//! (`None` on truncated or trailing bytes).
//!
//! The codec must be **lossless**: the cross-driver agreement suite
//! relies on `decode(encode(b))` behaving exactly like `b` under
//! [`crate::Protocol::receive`].

/// A beacon that can cross the actor driver's wire.
///
/// Implemented here for the primitive beacon types the test protocols
/// use; protocol crates implement it for their own beacon structs (see
/// `mwn_cluster`'s `ClusterBeacon`).
pub trait WireBeacon: Sized {
    /// Appends the serialized beacon to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one beacon from `bytes`, which must contain exactly one
    /// encoded beacon. Returns `None` on truncated, malformed, or
    /// trailing input.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Consumes a little-endian `u32` from the front of `bytes`.
pub fn take_u32(bytes: &mut &[u8]) -> Option<u32> {
    let (head, rest) = bytes.split_first_chunk::<4>()?;
    *bytes = rest;
    Some(u32::from_le_bytes(*head))
}

/// Consumes a little-endian `u64` from the front of `bytes`.
pub fn take_u64(bytes: &mut &[u8]) -> Option<u64> {
    let (head, rest) = bytes.split_first_chunk::<8>()?;
    *bytes = rest;
    Some(u64::from_le_bytes(*head))
}

impl WireBeacon for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut bytes = bytes;
        let v = take_u32(&mut bytes)?;
        bytes.is_empty().then_some(v)
    }
}

impl WireBeacon for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut bytes = bytes;
        let v = take_u64(&mut bytes)?;
        bytes.is_empty().then_some(v)
    }
}

impl WireBeacon for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u32, 1, 7, u32::MAX] {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(u32::decode(&buf), Some(v));
        }
        for v in [0u64, 42, u64::MAX] {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(u64::decode(&buf), Some(v));
        }
        let mut buf = Vec::new();
        ().encode(&mut buf);
        assert_eq!(<()>::decode(&buf), Some(()));
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        assert_eq!(u32::decode(&[1, 2, 3]), None);
        assert_eq!(u32::decode(&[1, 2, 3, 4, 5]), None);
        assert_eq!(u64::decode(&[0; 7]), None);
        assert_eq!(<()>::decode(&[0]), None);
    }
}
