use parking_lot::Mutex;

/// Runs `f(seed)` for `runs` derived seeds in parallel and returns the
/// results in seed order.
///
/// The paper averages every reported statistic "over 1000 simulations";
/// this helper spreads those independent runs over the available cores
/// with crossbeam's scoped threads. Seeds are derived deterministically
/// from `base_seed` (via SplitMix64), so results are reproducible
/// regardless of thread interleaving.
///
/// # Examples
///
/// ```
/// use mwn_metrics::run_seeds;
///
/// let a = run_seeds(16, 7, |seed| seed.wrapping_mul(3));
/// let b = run_seeds(16, 7, |seed| seed.wrapping_mul(3));
/// assert_eq!(a, b); // deterministic across invocations
/// assert_eq!(a.len(), 16);
/// ```
pub fn run_seeds<T, F>(runs: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let seeds: Vec<u64> = (0..runs as u64).map(|i| splitmix64(base_seed, i)).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(runs.max(1));
    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..runs).map(|_| None).collect::<Vec<_>>());
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= runs {
                    break;
                }
                let out = f(seeds[i]);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("seed-runner worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every seed index is filled exactly once"))
        .collect()
}

/// SplitMix64 seed derivation: decorrelates per-run seeds from a base.
fn splitmix64(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let out = run_seeds(100, 0, |seed| seed);
        let expected: Vec<u64> = (0..100).map(|i| splitmix64(0, i)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn zero_runs_is_empty() {
        let out: Vec<u64> = run_seeds(0, 1, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn seeds_differ_across_runs() {
        let out = run_seeds(50, 99, |seed| seed);
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len(), "derived seeds must be distinct");
    }

    #[test]
    fn different_base_seeds_give_different_sequences() {
        let a = run_seeds(10, 1, |s| s);
        let b = run_seeds(10, 2, |s| s);
        assert_ne!(a, b);
    }

    #[test]
    fn heavy_closure_parallelism_is_correct() {
        // Result must not depend on scheduling.
        let out = run_seeds(64, 5, |seed| {
            let mut acc = seed;
            for _ in 0..1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        });
        let seq: Vec<u64> = (0..64)
            .map(|i| {
                let mut acc = splitmix64(5, i);
                for _ in 0..1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
            .collect();
        assert_eq!(out, seq);
    }
}
