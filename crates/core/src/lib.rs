//! Self-stabilizing density-driven clustering for multihop wireless
//! networks — a faithful implementation of
//!
//! > N. Mitton, E. Fleury, I. Guérin Lassous, S. Tixeuil.
//! > *Self-stabilization in self-organized multihop wireless networks.*
//! > ICDCS 2005 / INRIA Research Report RR-5426.
//!
//! Large flat ad-hoc networks do not scale; the paper organizes them
//! into clusters by having each node compute a **density** value
//! (Definition 1 — the ratio of links to nodes in its 1-neighborhood),
//! join its strongest neighbor under a total order `≺`, and elect the
//! `≺`-maximal nodes as cluster-heads. The paper's contributions, all
//! implemented here:
//!
//! * a proof (reproduced as executable property tests) that the
//!   election is **self-stabilizing** under a lossy, collision-prone
//!   radio model in expected constant time ([`DensityCluster`],
//!   [`check_legitimate`]);
//! * a **constant-height DAG renaming** (algorithm N1) bounding
//!   stabilization time regardless of identifier distribution
//!   ([`DagProtocol`], [`NameSpace`], [`new_id`]);
//! * two **stability refinements**: incumbency tie-breaks
//!   ([`OrderKind::Stable`]) and 2-hop head fusion
//!   ([`HeadRule::Fusion`]).
//!
//! The [`oracle`] computes the unique stable clustering centrally so
//! distributed runs can be verified against it, and [`ClusteringStats`]
//! provides the evaluation metrics of the paper's Tables 4–5.
//!
//! # Examples
//!
//! End to end: deploy, cluster, verify, measure — through the
//! `mwn_sim::Scenario` builder, which every experiment in the
//! workspace goes through.
//!
//! ```
//! use mwn_cluster::{
//!     extract_clustering, oracle, ClusterConfig, ClusteringStats, DensityCluster,
//!     OracleConfig,
//! };
//! use mwn_graph::builders;
//! use mwn_sim::{Scenario, StopWhen};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let topo = builders::uniform(120, 0.15, &mut rng);
//! let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
//!     .topology(topo)
//!     .seed(7)
//!     .build()
//!     .expect("valid scenario");
//! net.run_to(&StopWhen::stable_for(3).within(500)).expect_stable("stabilizes");
//! let clustering = extract_clustering(net.states()).expect("clean output");
//! assert_eq!(clustering, oracle(net.topology(), &OracleConfig::default()));
//! let stats = ClusteringStats::of(net.topology(), &clustering).unwrap();
//! assert!(stats.clusters >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustering;
mod dag;
mod density;
mod energy;
mod gateways;
mod hierarchy;
mod metric;
mod metrics;
mod oracle;
mod order;
mod protocol;
mod routing;
mod smallmap;
mod stabilization;

pub use clustering::Clustering;
pub use dag::{
    is_locally_unique, name_dag_height, new_id, order_dag_height, DagProtocol, DagState,
    DagVariant, NameSpace,
};
pub use density::{density_from_rows, density_from_tables, density_of, Density};
pub use energy::{
    charge_round, energy_aware_clustering, simulate_rotation, EnergyModel, RotationOutcome,
};
pub use gateways::{gateway_report, GatewayReport};
pub use hierarchy::{build_hierarchy, head_overlay, Hierarchy, HierarchyLevel};
pub use metric::MetricKind;
pub use metrics::{head_persistence_series, ClusteringStats};
pub use oracle::{keys_of, locally_maximal, oracle, oracle_with_keys, HeadRule, OracleConfig};
pub use order::{max_key, Key, OrderKind};
pub use protocol::{
    extract_clustering, extract_dag_ids, ClusterBeacon, ClusterConfig, ClusterState, ClusterView,
    DagConfig, DensityCluster, FreshnessPolicy, NeighborEntry, PeerSummary,
};
pub use routing::{
    mean_stretch, mean_stretch_over, ClusterRouter, FlatRoutes, HierarchicalRoutes, RoutingView,
};
pub use smallmap::SmallMap;
pub use stabilization::{check_legitimate, measure_info_schedule, Illegitimacy, InfoSchedule};
