//! The distributed, self-stabilizing density-driven clustering
//! protocol — the composition of the paper's guarded assignments:
//!
//! * **N1** (Section 4.1): DAG renaming into the constant space γ;
//! * **R1** (Section 4.2): `d_p := density` from the cached 2-hop view;
//! * **R2** (Section 4.2/4.3): `H(p) := clusterHead` under the
//!   configured order (basic or incumbency-aware) and head rule (basic
//!   or 2-hop fusion).
//!
//! One beacon carries the node's shared variables *plus its cached
//! neighbor summaries*, which is exactly the information schedule of
//! the paper's Table 2: after one step a node knows its 1-neighbors,
//! after two it can compute its density, after three its parent, and
//! its cluster-head after a number of steps bounded by the tree depth.

use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mwn_sim::{put_u32, take_u32, Corruptible, Observable, Protocol, WireBeacon};

use crate::dag::new_id;
use crate::{
    Clustering, DagVariant, Density, HeadRule, Key, MetricKind, NameSpace, OrderKind, SmallMap,
};

/// DAG-renaming configuration (Section 4.1), when enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagConfig {
    /// The name space γ.
    pub gamma: NameSpace,
    /// Conflict-resolution variant of N1.
    pub variant: DagVariant,
}

/// How cached neighbor entries are kept fresh — and, dually, how the
/// engine may schedule the protocol.
///
/// The paper keeps caches alive through *periodic* beacons and expires
/// entries by timeout; that requires every node to broadcast every
/// step forever. The communication-efficiency literature on silent
/// protocols (Devismes–Masuzawa–Tixeuil) observes that once the
/// configuration is legitimate nothing needs to be sent at all — but
/// then freshness cannot come from timeouts. The two policies embody
/// that trade-off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FreshnessPolicy {
    /// Legacy timed discipline: every received beacon stamps its cache
    /// entry, and entries older than `cache_ttl` steps are swept on
    /// every update. Requires eager scheduling (periodic beacons are
    /// what keeps live entries alive), which the protocol declares via
    /// [`mwn_sim::Activity::Eager`].
    #[default]
    TtlSweep,
    /// Event-driven freshness: receiving a beacon identical to the
    /// cached copy is a no-op, entries never age out, and departed
    /// neighbors are evicted by the link-layer
    /// ([`mwn_sim::Protocol::link_down`]) instead of by timeout.
    /// Satisfies the silence contract — under **both clocks**: no
    /// guard here depends on wall-clock aging, so the protocol
    /// declares [`mwn_sim::Activity::Gated`] and the round driver
    /// skips stabilized regions while the continuous-time
    /// `EventDriver` stops scheduling their beacon slots entirely
    /// (arbitrarily long quiet intervals with zero `update` calls are
    /// safe).
    ///
    /// Known trade-off (inherent to silent communication-efficiency):
    /// a corrupted ghost entry whose forged timestamp lies in the past
    /// is only healed by update pressure from its owner's neighborhood,
    /// not by a wall-clock sweep; future-stamped forgeries are still
    /// purged immediately.
    EventDriven,
}

/// Full configuration of the clustering protocol.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{ClusterConfig, DagConfig, DagVariant, NameSpace};
///
/// // The paper's Section 5 configuration for the grid experiments:
/// // density metric, DAG enabled with γ = δ², basic order and rule.
/// let cfg = ClusterConfig {
///     dag: Some(DagConfig {
///         gamma: NameSpace::delta_squared(8),
///         variant: DagVariant::SmallestIdRedraws,
///     }),
///     ..ClusterConfig::default()
/// };
/// assert!(cfg.dag.is_some());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Election metric (the paper's density by default).
    pub metric: MetricKind,
    /// Tie-break order: basic, or the Section 4.3 incumbency variant.
    pub order: OrderKind,
    /// Head condition: basic, or the Section 4.3 fusion variant.
    pub rule: HeadRule,
    /// Constant-height DAG renaming; `None` ties break on unique ids.
    pub dag: Option<DagConfig>,
    /// Steps a cached neighbor entry survives without a fresh beacon.
    /// Must cover the expected beacon loss run-length (≥ 2 for lossy
    /// media; 2 suffices for the perfect medium). Only meaningful under
    /// [`FreshnessPolicy::TtlSweep`].
    pub cache_ttl: u64,
    /// Cache freshness discipline; [`FreshnessPolicy::EventDriven`]
    /// additionally unlocks activity-driven (gated) scheduling.
    pub freshness: FreshnessPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            metric: MetricKind::Density,
            order: OrderKind::Basic,
            rule: HeadRule::Basic,
            dag: None,
            cache_ttl: 4,
            freshness: FreshnessPolicy::TtlSweep,
        }
    }
}

impl ClusterConfig {
    /// This configuration with [`FreshnessPolicy::EventDriven`] — the
    /// silence-compatible variant the activity-driven engine can gate.
    pub fn event_driven(self) -> Self {
        ClusterConfig {
            freshness: FreshnessPolicy::EventDriven,
            ..self
        }
    }
}

impl ClusterConfig {
    /// Checks the configuration against a concrete topology: the name
    /// space must exceed the maximum degree, otherwise `γ \ Cids_p`
    /// can be empty and N1 cannot terminate.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate_for(&self, topo: &Topology) -> Result<(), String> {
        if let Some(dag) = &self.dag {
            let delta = topo.max_degree();
            if (dag.gamma.size() as usize) <= delta {
                return Err(format!(
                    "name space |γ| = {} must exceed the maximum degree δ = {delta}",
                    dag.gamma.size()
                ));
            }
        }
        if self.cache_ttl == 0 {
            return Err("cache TTL must be at least 1 step".to_string());
        }
        Ok(())
    }
}

/// What a node knows (and re-broadcasts) about one cached neighbor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeerSummary {
    /// The neighbor's unique identifier.
    pub id: NodeId,
    /// Its DAG identifier (shared variable `Id_q` of Section 4.1).
    pub dag_id: u32,
    /// Its density (shared variable `d_q`).
    pub density: Density,
    /// Its cluster-head claim (shared variable `H(q)`).
    pub head: NodeId,
}

/// A cached neighbor entry.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct NeighborEntry {
    /// Logical time the last beacon from this neighbor arrived.
    pub last_seen: u64,
    /// Cached copy of the neighbor's DAG identifier.
    pub dag_id: u32,
    /// Cached copy of the neighbor's density.
    pub density: Density,
    /// Cached copy of the neighbor's head claim.
    pub head: NodeId,
    /// The neighbor's own neighbor summaries — `p`'s window onto its
    /// 2-neighborhood (used for density and the fusion rule).
    pub view: Vec<PeerSummary>,
}

/// `clone_from` reuses the `view` buffer, so the engine's per-step
/// scratch-state clones stop allocating once the view capacities have
/// settled.
impl Clone for NeighborEntry {
    fn clone(&self) -> Self {
        NeighborEntry {
            last_seen: self.last_seen,
            dag_id: self.dag_id,
            density: self.density,
            head: self.head,
            view: self.view.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.last_seen = source.last_seen;
        self.dag_id = source.dag_id;
        self.density = source.density;
        self.head = source.head;
        self.view.clone_from(&source.view);
    }
}

/// Per-node state: shared variables plus the neighbor cache.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    /// DAG identifier (equals the unique id when the DAG is disabled).
    pub dag_id: u32,
    /// Current density value (shared variable `d_p`).
    pub density: Density,
    /// Current cluster-head choice (shared variable `H(p)`).
    pub head: NodeId,
    /// Current parent `F(p)`.
    pub parent: NodeId,
    /// Cached neighbor state, keyed by neighbor id. Sorted-vector
    /// backed ([`SmallMap`]): the converging phase clones and compares
    /// this map for every active node on every step, and a contiguous
    /// degree-sized vector makes both near-free.
    pub cache: SmallMap<NodeId, NeighborEntry>,
}

/// `clone_from` forwards to the cache's buffer-reusing `clone_from` —
/// the engine's scratch-state clone is allocation-free at steady
/// state.
impl Clone for ClusterState {
    fn clone(&self) -> Self {
        ClusterState {
            dag_id: self.dag_id,
            density: self.density,
            head: self.head,
            parent: self.parent,
            cache: self.cache.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.dag_id = source.dag_id;
        self.density = source.density;
        self.head = source.head;
        self.parent = source.parent;
        self.cache.clone_from(&source.cache);
    }
}

impl ClusterState {
    /// The node's election key as it would enter a comparison now.
    pub fn key(&self, me: NodeId) -> Key {
        Key::new(self.density, self.head == me, self.dag_id, me)
    }

    /// The (head, parent) pair — the protocol's observable output.
    pub fn output(&self) -> (NodeId, NodeId) {
        (self.head, self.parent)
    }
}

/// The beacon: the node's shared variables and its neighbor summaries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterBeacon {
    /// Sender's DAG identifier.
    pub dag_id: u32,
    /// Sender's density.
    pub density: Density,
    /// Sender's head claim.
    pub head: NodeId,
    /// Sender's cached neighbor summaries (its 1-hop view).
    pub view: Vec<PeerSummary>,
}

/// The actor driver's wire format for one beacon frame: the sender's
/// shared variables followed by its length-prefixed neighbor view, all
/// little-endian `u32`s. [`Density`] crosses the wire as its exact
/// `(links, degree)` pair, so `decode(encode(b)) == b` — the
/// losslessness the cross-driver agreement suite relies on.
impl WireBeacon for ClusterBeacon {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.dag_id);
        put_u32(out, self.density.links());
        put_u32(out, self.density.degree());
        put_u32(out, self.head.value());
        put_u32(out, self.view.len() as u32);
        for p in &self.view {
            put_u32(out, p.id.value());
            put_u32(out, p.dag_id);
            put_u32(out, p.density.links());
            put_u32(out, p.density.degree());
            put_u32(out, p.head.value());
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut bytes = bytes;
        let dag_id = take_u32(&mut bytes)?;
        let links = take_u32(&mut bytes)?;
        let degree = take_u32(&mut bytes)?;
        let head = NodeId::new(take_u32(&mut bytes)?);
        let len = take_u32(&mut bytes)? as usize;
        // A length prefix larger than the remaining frame is malformed;
        // checking first keeps a hostile prefix from reserving memory.
        if bytes.len() < len * 20 {
            return None;
        }
        let mut view = Vec::with_capacity(len);
        for _ in 0..len {
            let id = NodeId::new(take_u32(&mut bytes)?);
            let dag_id = take_u32(&mut bytes)?;
            let links = take_u32(&mut bytes)?;
            let degree = take_u32(&mut bytes)?;
            let head = NodeId::new(take_u32(&mut bytes)?);
            view.push(PeerSummary {
                id,
                dag_id,
                density: Density::ratio(links, degree),
                head,
            });
        }
        bytes.is_empty().then_some(ClusterBeacon {
            dag_id,
            density: Density::ratio(links, degree),
            head,
            view,
        })
    }
}

/// The self-stabilizing density-driven clustering protocol.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{extract_clustering, ClusterConfig, DensityCluster};
/// use mwn_graph::builders::fig1_example;
/// use mwn_graph::NodeId;
/// use mwn_sim::{Scenario, StopWhen};
///
/// let topo = fig1_example();
/// let protocol = DensityCluster::new(ClusterConfig::default());
/// let mut net = Scenario::new(protocol)
///     .topology(topo)
///     .seed(1)
///     .build()
///     .expect("valid scenario");
/// net.run_to(&StopWhen::stable_for(3).within(100)).expect_stable("stabilizes");
/// let clustering = extract_clustering(net.states()).expect("clean output");
/// // The paper's example: two clusters, headed by h (id 7) and j (id 5).
/// assert_eq!(clustering.heads(), vec![NodeId::new(5), NodeId::new(7)]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DensityCluster {
    config: ClusterConfig,
}

impl DensityCluster {
    /// Creates the protocol with `config`.
    pub fn new(config: ClusterConfig) -> Self {
        DensityCluster { config }
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    fn key_of_entry(q: NodeId, e: &NeighborEntry) -> Key {
        Key::new(e.density, e.head == q, e.dag_id, q)
    }

    fn key_of_summary(s: &PeerSummary) -> Key {
        Key::new(s.density, s.head == s.id, s.dag_id, s.id)
    }

    /// Collects the cluster-head claims visible in `p`'s 2-hop window:
    /// direct neighbors claiming headship plus claims relayed through
    /// neighbor views. Used by the fusion rule.
    fn two_hop_head_claims(me: NodeId, state: &ClusterState) -> Vec<Key> {
        let mut claims = Vec::new();
        for (&q, e) in &state.cache {
            if e.head == q {
                claims.push(Self::key_of_entry(q, e));
            }
            for s in &e.view {
                if s.id != me && s.head == s.id {
                    claims.push(Self::key_of_summary(s));
                }
            }
        }
        claims
    }
}

impl Protocol for DensityCluster {
    type State = ClusterState;
    type Beacon = ClusterBeacon;

    fn init(&self, node: NodeId, rng: &mut StdRng) -> ClusterState {
        let dag_id = match &self.config.dag {
            Some(dag) => rng.random_range(0..dag.gamma.size()),
            None => node.value(),
        };
        ClusterState {
            dag_id,
            density: Density::zero(),
            head: node,
            parent: node,
            cache: SmallMap::new(),
        }
    }

    fn beacon(&self, _node: NodeId, state: &ClusterState) -> ClusterBeacon {
        ClusterBeacon {
            dag_id: state.dag_id,
            density: state.density,
            head: state.head,
            view: state
                .cache
                .iter()
                .map(|(&q, e)| PeerSummary {
                    id: q,
                    dag_id: e.dag_id,
                    density: e.density,
                    head: e.head,
                })
                .collect(),
        }
    }

    fn beacon_into(&self, _node: NodeId, state: &ClusterState, out: &mut ClusterBeacon) {
        // Pooled rebuild: the engine hands back the same scratch beacon
        // every refresh, so the `view` vec's capacity is reused and the
        // per-beacon rebuild — the last protocol-side allocation on the
        // converging path — costs no heap traffic at steady state.
        out.dag_id = state.dag_id;
        out.density = state.density;
        out.head = state.head;
        out.view.clear();
        out.view
            .extend(state.cache.iter().map(|(&q, e)| PeerSummary {
                id: q,
                dag_id: e.dag_id,
                density: e.density,
                head: e.head,
            }));
    }

    fn receive(
        &self,
        node: NodeId,
        state: &mut ClusterState,
        from: NodeId,
        beacon: &ClusterBeacon,
        now: u64,
    ) {
        if from == node {
            return; // a radio echo of ourselves carries no information
        }
        let event_driven = self.config.freshness == FreshnessPolicy::EventDriven;
        if let Some(e) = state.cache.get_mut(&from) {
            // Silence contract: an already-incorporated beacon must be
            // a state no-op — not even a timestamp refresh.
            if event_driven
                && e.dag_id == beacon.dag_id
                && e.density == beacon.density
                && e.head == beacon.head
                && e.view == beacon.view
            {
                return;
            }
            // Overwrite in place: the entry's view buffer is reused,
            // so a refresh from a known neighbor never allocates once
            // the view capacity has settled.
            e.last_seen = now;
            e.dag_id = beacon.dag_id;
            e.density = beacon.density;
            e.head = beacon.head;
            e.view.clone_from(&beacon.view);
        } else {
            state.cache.insert(
                from,
                NeighborEntry {
                    last_seen: now,
                    dag_id: beacon.dag_id,
                    density: beacon.density,
                    head: beacon.head,
                    view: beacon.view.clone(),
                },
            );
        }
    }

    fn update(&self, node: NodeId, state: &mut ClusterState, now: u64, rng: &mut StdRng) {
        // Cache hygiene. TtlSweep: drop entries that are stale or carry
        // a timestamp from the future (corrupted state must die out).
        // EventDriven: only future-stamped forgeries are swept — live
        // entries must survive arbitrarily long silence, and departed
        // neighbors are evicted by `link_down` instead.
        let ttl = self.config.cache_ttl;
        match self.config.freshness {
            FreshnessPolicy::TtlSweep => state
                .cache
                .retain(|_, e| e.last_seen <= now && now - e.last_seen < ttl),
            FreshnessPolicy::EventDriven => state.cache.retain(|_, e| e.last_seen <= now),
        }

        // --- N1: DAG renaming (Section 4.1) --------------------------
        match &self.config.dag {
            Some(dag) => {
                let conflicted = !dag.gamma.contains(state.dag_id)
                    || state.cache.values().any(|e| e.dag_id == state.dag_id);
                if conflicted {
                    let must_redraw = match dag.variant {
                        DagVariant::Randomized => true,
                        DagVariant::SmallestIdRedraws => {
                            !dag.gamma.contains(state.dag_id)
                                || state
                                    .cache
                                    .iter()
                                    .any(|(&q, e)| e.dag_id == state.dag_id && node < q)
                        }
                    };
                    if must_redraw {
                        // The used-name list is only materialized on an
                        // actual redraw — conflict-free steps (the
                        // overwhelming majority) stay allocation-free.
                        let used: Vec<u32> = state.cache.values().map(|e| e.dag_id).collect();
                        state.dag_id = new_id(state.dag_id, &used, dag.gamma, rng);
                    }
                }
            }
            None => {
                // Without the DAG the tie-break id *is* the unique id;
                // re-asserting it heals corrupted state.
                state.dag_id = node.value();
            }
        }

        // --- R1: density (Section 4.2) --------------------------------
        // Streamed straight off the cache: the rows are already sorted
        // by neighbor id and membership is a binary search, so no
        // id-tables are materialized per node per step.
        state.density = self.config.metric.value_from_rows(
            node,
            state.cache.len() as u32,
            state
                .cache
                .iter()
                .map(|(&q, e)| (q, e.view.iter().map(|s| s.id))),
            |r| state.cache.contains_key(&r),
        );

        // --- R2: cluster-head choice (Sections 4.2 / 4.3) -------------
        let my_key = state.key(node);
        let order = self.config.order;
        let strongest_neighbor = state
            .cache
            .iter()
            .map(|(&q, e)| (q, Self::key_of_entry(q, e)))
            .max_by(|(_, a), (_, b)| a.cmp_under(b, order));
        let locally_max = match &strongest_neighbor {
            None => true,
            Some((_, k)) => k.precedes(&my_key, order),
        };
        match self.config.rule {
            HeadRule::Basic => {
                if locally_max {
                    state.head = node;
                    state.parent = node;
                } else {
                    let (q, _) = strongest_neighbor.expect("non-maximal ⇒ has neighbors");
                    state.parent = q;
                    state.head = state.cache[&q].head;
                }
            }
            HeadRule::Fusion => {
                if locally_max {
                    let claims = Self::two_hop_head_claims(node, state);
                    let blocking = claims
                        .iter()
                        .filter(|c| my_key.precedes(c, order))
                        .max_by(|a, b| a.cmp_under(b, order));
                    match blocking {
                        None => {
                            state.head = node;
                            state.parent = node;
                        }
                        Some(absorber) => {
                            // Abdicate: merge into the strongest head
                            // within two hops (logical 2-hop parent).
                            state.head = absorber.id;
                            state.parent = absorber.id;
                        }
                    }
                } else {
                    let (q, _) = strongest_neighbor.expect("non-maximal ⇒ has neighbors");
                    state.parent = q;
                    state.head = state.cache[&q].head;
                }
            }
        }
    }

    fn activity(&self) -> mwn_sim::Activity {
        match self.config.freshness {
            FreshnessPolicy::TtlSweep => mwn_sim::Activity::Eager,
            FreshnessPolicy::EventDriven => mwn_sim::Activity::Gated,
        }
    }

    fn beacon_changed(&self, old: &ClusterBeacon, new: &ClusterBeacon) -> bool {
        old != new
    }

    fn link_down(&self, _node: NodeId, state: &mut ClusterState, peer: NodeId) {
        // The link layer knows the neighbor is gone: evict immediately
        // instead of waiting out a TTL (and instead of never noticing,
        // under the event-driven policy).
        state.cache.remove(&peer);
    }
}

impl Observable for DensityCluster {
    /// The full shared-variable fixpoint `(Id_p, H(p), F(p))`: the DAG
    /// name, the cluster-head and the parent. With the DAG disabled
    /// the name is the (re-asserted, constant) unique id, so the
    /// projection degenerates to the election output `(H(p), F(p))` —
    /// one canonical projection serves every configuration, replacing
    /// the per-call-site closures the experiments used to carry.
    type Output = (u32, NodeId, NodeId);

    fn output(&self, _node: NodeId, state: &ClusterState) -> (u32, NodeId, NodeId) {
        (state.dag_id, state.head, state.parent)
    }
}

impl Corruptible for DensityCluster {
    fn corrupt(&self, _node: NodeId, state: &mut ClusterState, rng: &mut StdRng) {
        state.dag_id = rng.random_range(0..u32::MAX);
        state.density = Density::ratio(rng.random_range(0..100), rng.random_range(0..16));
        state.head = NodeId::new(rng.random_range(0..10_000));
        state.parent = NodeId::new(rng.random_range(0..10_000));
        state.cache.clear();
        for _ in 0..rng.random_range(0..5) {
            let ghost = NodeId::new(rng.random_range(0..10_000));
            let view = (0..rng.random_range(0..4))
                .map(|_| PeerSummary {
                    id: NodeId::new(rng.random_range(0..10_000)),
                    dag_id: rng.random_range(0..u32::MAX),
                    density: Density::ratio(rng.random_range(0..50), rng.random_range(0..8)),
                    head: NodeId::new(rng.random_range(0..10_000)),
                })
                .collect();
            state.cache.insert(
                ghost,
                NeighborEntry {
                    last_seen: rng.random_range(0..u64::MAX),
                    dag_id: rng.random_range(0..u32::MAX),
                    density: Density::ratio(rng.random_range(0..50), rng.random_range(0..8)),
                    head: NodeId::new(rng.random_range(0..10_000)),
                    view,
                },
            );
        }
    }
}

/// Anything that exposes a node's cluster-head and parent claim:
/// full [`ClusterState`]s and the protocol's
/// [`mwn_sim::Observable`] outputs both qualify, so
/// [`extract_clustering`] works off either.
pub trait ClusterView {
    /// The claimed cluster-head `H(p)`.
    fn head_claim(&self) -> NodeId;
    /// The claimed parent `F(p)`.
    fn parent_claim(&self) -> NodeId;
}

impl ClusterView for ClusterState {
    fn head_claim(&self) -> NodeId {
        self.head
    }
    fn parent_claim(&self) -> NodeId {
        self.parent
    }
}

/// The [`mwn_sim::Observable`] output of [`DensityCluster`]:
/// `(Id_p, H(p), F(p))`.
impl ClusterView for (u32, NodeId, NodeId) {
    fn head_claim(&self) -> NodeId {
        self.1
    }
    fn parent_claim(&self) -> NodeId {
        self.2
    }
}

/// Extracts the clustering from stabilized protocol states or
/// observable outputs (anything implementing [`ClusterView`]).
///
/// Returns `None` if any head or parent pointer references a node
/// outside the network — possible only in non-stabilized snapshots
/// (e.g. right after a corruption), never in a legitimate
/// configuration.
pub fn extract_clustering<V: ClusterView>(views: &[V]) -> Option<Clustering> {
    let n = views.len();
    let mut parent = Vec::with_capacity(n);
    let mut head = Vec::with_capacity(n);
    for v in views {
        if v.parent_claim().index() >= n || v.head_claim().index() >= n {
            return None;
        }
        parent.push(v.parent_claim());
        head.push(v.head_claim());
    }
    Some(Clustering::new(parent, head))
}

/// The stabilized DAG identifiers, for feeding the oracle's tiebreak.
pub fn extract_dag_ids(states: &[ClusterState]) -> Vec<u32> {
    states.iter().map(|s| s.dag_id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use mwn_radio::{BernoulliLoss, PerfectMedium, SlottedCsma};
    use mwn_sim::{Network, Scenario, StopWhen};

    use crate::{oracle, OracleConfig};

    fn stabilize<M: mwn_radio::Medium>(
        config: ClusterConfig,
        medium: M,
        topo: mwn_graph::Topology,
        seed: u64,
        max_steps: u64,
    ) -> Network<DensityCluster, M> {
        let mut net = Scenario::new(DensityCluster::new(config))
            .medium(medium)
            .topology(topo)
            .seed(seed)
            .validate(move |t| config.validate_for(t))
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(5).within(max_steps))
            .expect_stable("protocol stabilizes");
        net
    }

    #[test]
    fn fig1_reaches_the_paper_clustering() {
        let net = stabilize(
            ClusterConfig::default(),
            PerfectMedium,
            builders::fig1_example(),
            3,
            100,
        );
        let c = extract_clustering(net.states()).unwrap();
        assert_eq!(c.heads(), vec![NodeId::new(5), NodeId::new(7)]); // j and h
    }

    #[test]
    fn distributed_fixpoint_matches_oracle_basic() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(10);
        for seed in 0..5 {
            let topo = builders::uniform(80, 0.15, &mut rng);
            let net = stabilize(ClusterConfig::default(), PerfectMedium, topo, seed, 300);
            let c = extract_clustering(net.states()).unwrap();
            let want = oracle(net.topology(), &OracleConfig::default());
            assert_eq!(c, want, "seed {seed}");
        }
    }

    #[test]
    fn distributed_fixpoint_matches_oracle_fusion() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let config = ClusterConfig {
            rule: HeadRule::Fusion,
            ..ClusterConfig::default()
        };
        for seed in 0..5 {
            let topo = builders::uniform(80, 0.15, &mut rng);
            let net = stabilize(config, PerfectMedium, topo, seed, 500);
            let c = extract_clustering(net.states()).unwrap();
            let want = oracle(
                net.topology(),
                &OracleConfig {
                    rule: HeadRule::Fusion,
                    ..OracleConfig::default()
                },
            );
            assert_eq!(c.heads(), want.heads(), "seed {seed}");
        }
    }

    #[test]
    fn information_schedule_matches_table2() {
        // Paper Table 2: neighbors after step 1, density after step 2,
        // father after step 3.
        let topo = builders::fig1_example();
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo.clone())
            .seed(5)
            .build()
            .expect("valid scenario");
        // Step 1: neighbor tables complete.
        net.step();
        for p in topo.nodes() {
            let cached: Vec<NodeId> = net.state(p).cache.keys().copied().collect();
            assert_eq!(cached.as_slice(), topo.neighbors(p), "step 1 neighbors");
        }
        // Step 2: densities correct.
        net.step();
        for p in topo.nodes() {
            assert_eq!(
                net.state(p).density,
                crate::density_of(&topo, p),
                "step 2 density of {p}"
            );
        }
        // Step 3: parents correct.
        net.step();
        let want = oracle(&topo, &OracleConfig::default());
        for p in topo.nodes() {
            assert_eq!(net.state(p).parent, want.parent(p), "step 3 parent of {p}");
        }
    }

    #[test]
    fn self_stabilizes_from_arbitrary_corruption() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        let topo = builders::uniform(60, 0.18, &mut rng);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(6)
            .build()
            .expect("valid scenario");
        net.run(20);
        let before = extract_clustering(net.states()).unwrap();
        net.corrupt_all();
        net.run_to(&StopWhen::stable_for(5).within(500))
            .expect_stable("reconverges after corruption");
        let after = extract_clustering(net.states()).unwrap();
        assert_eq!(before, after, "convergence must restore the fixpoint");
    }

    #[test]
    fn closure_fixpoint_does_not_drift() {
        let topo = builders::fig1_example();
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(7)
            .build()
            .expect("valid scenario");
        net.run(20);
        let fixed = extract_clustering(net.states()).unwrap();
        net.run(50);
        assert_eq!(extract_clustering(net.states()).unwrap(), fixed);
    }

    #[test]
    fn stabilizes_over_lossy_medium() {
        let config = ClusterConfig {
            cache_ttl: 10,
            ..ClusterConfig::default()
        };
        let net = stabilize(
            config,
            BernoulliLoss::new(0.5),
            builders::fig1_example(),
            8,
            3000,
        );
        let c = extract_clustering(net.states()).unwrap();
        assert_eq!(c.heads(), vec![NodeId::new(5), NodeId::new(7)]);
    }

    #[test]
    fn stabilizes_over_csma_medium() {
        let config = ClusterConfig {
            cache_ttl: 12,
            ..ClusterConfig::default()
        };
        let net = stabilize(
            config,
            SlottedCsma::new(16),
            builders::fig1_example(),
            9,
            3000,
        );
        let c = extract_clustering(net.states()).unwrap();
        assert_eq!(c.heads(), vec![NodeId::new(5), NodeId::new(7)]);
    }

    #[test]
    fn dag_mode_produces_locally_unique_tiebreaks() {
        let topo = builders::grid(8, 8, 0.2);
        let gamma = NameSpace::delta_squared(topo.max_degree());
        let config = ClusterConfig {
            dag: Some(DagConfig {
                gamma,
                variant: DagVariant::SmallestIdRedraws,
            }),
            ..ClusterConfig::default()
        };
        let net = stabilize(config, PerfectMedium, topo, 10, 500);
        let ids = extract_dag_ids(net.states());
        assert!(crate::is_locally_unique(net.topology(), &ids));
        // And the clustering matches the oracle under those very ids.
        let c = extract_clustering(net.states()).unwrap();
        let want = oracle(
            net.topology(),
            &OracleConfig {
                tiebreak: Some(ids),
                ..OracleConfig::default()
            },
        );
        assert_eq!(c, want);
    }

    #[test]
    fn incumbency_order_stabilizes() {
        let config = ClusterConfig {
            order: OrderKind::Stable,
            ..ClusterConfig::default()
        };
        let net = stabilize(config, PerfectMedium, builders::fig1_example(), 11, 300);
        let c = extract_clustering(net.states()).unwrap();
        // Densities are distinct enough here that incumbency does not
        // change the winners.
        assert_eq!(c.heads(), vec![NodeId::new(5), NodeId::new(7)]);
    }

    #[test]
    fn isolated_node_is_its_own_head() {
        let topo = mwn_graph::Topology::empty(1);
        let net = stabilize(ClusterConfig::default(), PerfectMedium, topo, 12, 50);
        let c = extract_clustering(net.states()).unwrap();
        assert!(c.is_head(NodeId::new(0)));
    }

    #[test]
    fn ghost_cache_entries_expire() {
        let topo = builders::line(3);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(13)
            .build()
            .expect("valid scenario");
        net.run(5);
        // Plant a ghost neighbor with a *future* timestamp.
        net.state_mut(NodeId::new(0)).cache.insert(
            NodeId::new(999),
            NeighborEntry {
                last_seen: u64::MAX,
                dag_id: 0,
                density: Density::integer(99),
                head: NodeId::new(999),
                view: Vec::new(),
            },
        );
        net.run(2);
        assert!(
            !net.state(NodeId::new(0))
                .cache
                .contains_key(&NodeId::new(999)),
            "future-stamped ghost must be expired"
        );
    }

    #[test]
    fn event_driven_freshness_matches_ttl_sweep_fixpoint() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(14);
        for seed in 0..3 {
            let topo = builders::uniform(70, 0.16, &mut rng);
            let legacy = stabilize(
                ClusterConfig::default(),
                PerfectMedium,
                topo.clone(),
                seed,
                400,
            );
            let silent = stabilize(
                ClusterConfig::default().event_driven(),
                PerfectMedium,
                topo,
                seed,
                400,
            );
            assert_eq!(
                extract_clustering(legacy.states()).unwrap(),
                extract_clustering(silent.states()).unwrap(),
                "seed {seed}: both freshness policies reach the oracle fixpoint"
            );
        }
    }

    #[test]
    fn event_driven_cluster_goes_silent() {
        let mut net = stabilize(
            ClusterConfig::default().event_driven(),
            PerfectMedium,
            builders::fig1_example(),
            15,
            200,
        );
        assert!(net.is_gated(), "EventDriven unlocks gated scheduling");
        let frozen = net.messages_total();
        net.run(30);
        assert_eq!(net.last_activity().senders, 0, "stable clusters are silent");
        assert_eq!(net.last_activity().updates, 0);
        assert_eq!(net.messages_total(), frozen);
        // And the output is still the paper's clustering.
        let c = extract_clustering(net.states()).unwrap();
        assert_eq!(c.heads(), vec![NodeId::new(5), NodeId::new(7)]);
    }

    #[test]
    fn event_driven_cluster_self_stabilizes_after_corruption() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(16);
        let topo = builders::uniform(60, 0.18, &mut rng);
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
            .topology(topo)
            .seed(17)
            .build()
            .expect("valid scenario");
        net.run(25);
        let before = extract_clustering(net.states()).unwrap();
        net.corrupt_all();
        net.run_to(&StopWhen::stable_for(5).within(1000))
            .expect_stable("reconverges after corruption");
        let after = extract_clustering(net.states()).unwrap();
        assert_eq!(before, after, "convergence must restore the fixpoint");
        net.run(10);
        assert_eq!(net.last_activity().senders, 0, "silent again after healing");
    }

    #[test]
    fn event_driven_survives_isolation_via_link_down() {
        // Under EventDriven freshness there is no TTL: the link-down
        // notification is what evicts a severed neighbor.
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
            .topology(builders::line(5))
            .seed(18)
            .build()
            .expect("valid scenario");
        net.run(15);
        net.isolate(NodeId::new(2));
        assert!(
            net.state(NodeId::new(1)).cache.is_empty()
                || !net
                    .state(NodeId::new(1))
                    .cache
                    .contains_key(&NodeId::new(2)),
            "link_down evicts the severed neighbor immediately"
        );
        net.run_to(&StopWhen::stable_for(4).within(200))
            .expect_stable("re-stabilizes on the cut topology");
        let c = extract_clustering(net.states()).unwrap();
        assert!(c.is_head(NodeId::new(2)), "an isolated node heads itself");
    }

    #[test]
    fn config_validation_catches_small_gamma() {
        let topo = builders::star(10); // δ = 9
        let config = ClusterConfig {
            dag: Some(DagConfig {
                gamma: NameSpace::of_size(4),
                variant: DagVariant::Randomized,
            }),
            ..ClusterConfig::default()
        };
        assert!(config.validate_for(&topo).is_err());
    }

    #[test]
    fn extract_rejects_out_of_range_claims() {
        let state = ClusterState {
            dag_id: 0,
            density: Density::zero(),
            head: NodeId::new(42),
            parent: NodeId::new(0),
            cache: SmallMap::new(),
        };
        assert!(extract_clustering(&[state]).is_none());
    }
}
