//! Execution substrate for self-stabilizing wireless protocols.
//!
//! The paper describes its algorithms as **guarded assignments** over
//! **shared variables** (Section 4): each node infinitely re-evaluates
//! guards `G → S`; shared variables are propagated to neighbors by
//! periodic local broadcast with randomized timing (the discipline of
//! Herman & Tixeuil \[11\]); neighbors keep *cached copies* of each
//! other's shared variables.
//!
//! This crate turns that model into two runnable drivers:
//!
//! * [`Network`] — the synchronous **round driver**. One round is the
//!   paper's Δ(τ) "step" (Section 5): every node broadcasts its beacon
//!   once, the [`mwn_radio::Medium`] decides which copies arrive,
//!   receivers update their caches, then every node executes all its
//!   enabled guarded assignments. Step counts measured here are
//!   directly comparable to the paper's Tables 2, 3 and 5.
//! * [`EventDriver`] — the **continuous-time driver**. Nodes broadcast
//!   at randomized intervals; frames have a duration and collide when
//!   they overlap at a receiver (hidden terminals included). This is
//!   the execution model under which the paper's "expected constant
//!   time" statements (Theorem 1, Lemmas 1–2) are phrased.
//!
//! Self-stabilization is exercised through [`Corruptible`]: a protocol
//! that can have its state arbitrarily corrupted, after which the
//! drivers verify re-convergence (convergence) and that legitimate
//! configurations persist (closure).
//!
//! # Examples
//!
//! A tiny flooding protocol that stabilizes to the maximum node id:
//!
//! ```
//! use mwn_graph::{builders, NodeId};
//! use mwn_radio::PerfectMedium;
//! use mwn_sim::{Network, Protocol};
//! use rand::rngs::StdRng;
//!
//! struct MaxFlood;
//! impl Protocol for MaxFlood {
//!     type State = u32;
//!     type Beacon = u32;
//!     fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 { node.value() }
//!     fn beacon(&self, _node: NodeId, state: &u32) -> u32 { *state }
//!     fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
//!         *state = (*state).max(*beacon);
//!     }
//!     fn update(&self, _node: NodeId, _state: &mut u32, _now: u64, _rng: &mut StdRng) {}
//! }
//!
//! let topo = builders::line(5);
//! let mut net = Network::new(MaxFlood, PerfectMedium, topo, 7);
//! net.run(5);
//! assert!(net.states().iter().all(|&s| s == 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convergence;
mod events;
mod faults;
mod network;
mod protocol;
mod rng;
mod trace;

pub use convergence::StabilityTracker;
pub use events::{EventConfig, EventDriver};
pub use faults::{Fault, FaultPlan};
pub use network::Network;
pub use protocol::{Corruptible, Protocol};
pub use rng::{derive_seed, node_streams};
pub use trace::Trace;
